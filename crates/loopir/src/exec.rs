//! Abstract execution semantics and the sequential oracle.
//!
//! Statements in the IR carry no concrete arithmetic. Instead, executing a
//! statement instance computes a deterministic 64-bit value by mixing the
//! statement id, the iteration indices, and the values read by its read
//! references, and stores that value through its write references. The mix
//! is order-sensitive, so *any* execution (simulator, real threads) that
//! reproduces the sequential [`run_sequential`] result has necessarily
//! respected every data dependence.

use crate::ir::{ArrayId, LoopNest, Stmt};
use crate::space::IterSpace;
use std::collections::HashMap;

/// SplitMix64 finalizer; the basic mixing step of the execution semantics.
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two words.
pub fn mix2(a: u64, b: u64) -> u64 {
    mix(a ^ mix(b))
}

/// The value an array element holds before any write.
pub fn init_value(array: ArrayId, element: &[i64]) -> u64 {
    let mut h = mix2(0x696e_6974, array.0 as u64);
    for &e in element {
        h = mix2(h, e as u64);
    }
    h
}

/// The value produced by statement `stmt` at iteration `indices` after
/// reading `read_values` (in textual reference order).
pub fn stmt_value(stmt: &Stmt, indices: &[i64], read_values: &[u64]) -> u64 {
    let mut h = mix2(0x7374_6d74, stmt.id.0 as u64);
    for &i in indices {
        h = mix2(h, i as u64);
    }
    for &v in read_values {
        h = mix2(h, v);
    }
    h
}

/// A store for the abstract values of every array element touched by a nest.
///
/// Elements are addressed by `(array, element-index-vector)`; unwritten
/// elements read as [`init_value`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrayStore {
    cells: HashMap<(ArrayId, Vec<i64>), u64>,
}

impl ArrayStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads an element (init value if never written).
    pub fn read(&self, array: ArrayId, element: &[i64]) -> u64 {
        match self.cells.get(&(array, element.to_vec())) {
            Some(&v) => v,
            None => init_value(array, element),
        }
    }

    /// Writes an element.
    pub fn write(&mut self, array: ArrayId, element: Vec<i64>, value: u64) {
        self.cells.insert((array, element), value);
    }

    /// Number of elements ever written.
    pub fn written_len(&self) -> usize {
        self.cells.len()
    }

    /// A canonical fingerprint of the whole store (order-independent).
    pub fn fingerprint(&self) -> u64 {
        // XOR of per-cell hashes is commutative, so iteration order of the
        // HashMap does not matter.
        let mut acc = 0u64;
        for ((array, element), value) in &self.cells {
            let mut h = mix2(0x6670, array.0 as u64);
            for &e in element {
                h = mix2(h, e as u64);
            }
            acc ^= mix2(h, *value);
        }
        acc
    }
}

/// Executes one statement instance against a store.
pub fn execute_stmt(stmt: &Stmt, indices: &[i64], store: &mut ArrayStore) -> u64 {
    let reads: Vec<u64> = stmt.reads().map(|r| store.read(r.array, &r.element(indices))).collect();
    let v = stmt_value(stmt, indices, &reads);
    for w in stmt.writes() {
        store.write(w.array, w.element(indices), v);
    }
    v
}

/// Runs the nest sequentially (the semantics oracle) and returns the store.
///
/// # Examples
///
/// ```
/// use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
/// use datasync_loopir::exec::run_sequential;
///
/// let a = ArrayId(0);
/// let nest = LoopNestBuilder::new(1, 8)
///     .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
///     .stmt("S2", 1, vec![ArrayRef::simple(a, AccessKind::Read, -1)])
///     .build();
/// let store = run_sequential(&nest);
/// assert_eq!(store.written_len(), 8);
/// ```
pub fn run_sequential(nest: &LoopNest) -> ArrayStore {
    let space = IterSpace::of(nest);
    let mut store = ArrayStore::new();
    for pid in 0..space.count() {
        let indices = space.indices(pid);
        for stmt in nest.executed_stmts(pid) {
            execute_stmt(stmt, &indices, &mut store);
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessKind, ArrayRef, LoopNestBuilder};

    fn chain_nest(n: i64) -> LoopNest {
        let a = ArrayId(0);
        LoopNestBuilder::new(1, n)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .stmt(
                "S2",
                1,
                vec![
                    ArrayRef::simple(a, AccessKind::Read, -1),
                    ArrayRef::simple(ArrayId(1), AccessKind::Write, 0),
                ],
            )
            .build()
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        assert_ne!(mix2(1, 2), mix2(2, 1), "mixing must be order-sensitive");
    }

    #[test]
    fn store_reads_init_until_written() {
        let mut s = ArrayStore::new();
        let a = ArrayId(3);
        let e = vec![5, -2];
        assert_eq!(s.read(a, &e), init_value(a, &e));
        s.write(a, e.clone(), 77);
        assert_eq!(s.read(a, &e), 77);
        assert_eq!(s.written_len(), 1);
    }

    #[test]
    fn fingerprint_is_order_independent_but_value_sensitive() {
        let a = ArrayId(0);
        let mut s1 = ArrayStore::new();
        let mut s2 = ArrayStore::new();
        s1.write(a, vec![1], 10);
        s1.write(a, vec![2], 20);
        s2.write(a, vec![2], 20);
        s2.write(a, vec![1], 10);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        s2.write(a, vec![1], 11);
        assert_ne!(s1.fingerprint(), s2.fingerprint());
    }

    #[test]
    fn sequential_chain_depends_on_previous_iteration() {
        let nest = chain_nest(6);
        let store = run_sequential(&nest);
        // S2 at i reads A[i-1], which S1 wrote in the previous iteration:
        // recompute by hand for i=3.
        let a = ArrayId(0);
        let s1 = nest.stmt(crate::ir::StmtId(0));
        let s2 = nest.stmt(crate::ir::StmtId(1));
        let v_s1_at_2 = stmt_value(s1, &[2], &[]);
        assert_eq!(store.read(a, &[2]), v_s1_at_2);
        let expect_s2_at_3 = stmt_value(s2, &[3], &[v_s1_at_2]);
        assert_eq!(store.read(ArrayId(1), &[3]), expect_s2_at_3);
    }

    #[test]
    fn sequential_is_reproducible() {
        let nest = chain_nest(32);
        assert_eq!(run_sequential(&nest).fingerprint(), run_sequential(&nest).fingerprint());
    }

    #[test]
    fn branch_semantics_deterministic() {
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 40)
            .branch(vec![
                vec![("Sb", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])],
                vec![("Sc", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])],
            ])
            .build();
        assert_eq!(run_sequential(&nest).fingerprint(), run_sequential(&nest).fingerprint());
        assert_eq!(run_sequential(&nest).written_len(), 40);
    }
}

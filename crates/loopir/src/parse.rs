//! A parser for the Fortran-like loop language that [`crate::render`]
//! prints — so loops can be written in a text file, analyzed, and
//! transformed without touching the builder API.
//!
//! # Grammar (line oriented)
//!
//! ```text
//! DO I = 1, 100            -- one line per nesting level, outermost first
//!   S1: A[I+3] = B[2*I-1] + A[I]   @4      -- label: writes = reads @cost
//!   IF (...) THEN
//!     S2: C[I] = A[I-1]
//!   ELSE
//!     S3: C[I] = B[I]
//!   END IF
//! END DO                   -- one per level (extras are tolerated)
//! ```
//!
//! * the left-hand side lists **write** references (comma separated);
//!   the right-hand side **read** references (`+` separated); either side
//!   may be `...` for none;
//! * subscripts are affine in the loop indices: `I`, `-J`, `3*I+2`,
//!   `I-1`, constants; multi-dimensional arrays use commas: `A[I, J-1]`;
//! * `@N` sets the statement cost in cycles (default 4);
//! * array and index names are case-insensitive identifiers; arrays get
//!   ids in order of first appearance (names of the form `A<number>`
//!   keep that number, so [`crate::render::render_loop`] output parses
//!   back to the same ids).

use crate::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNest, LoopNestBuilder};
use std::collections::HashMap;

/// A parse failure with its (1-based) line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was found on.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

#[derive(Debug)]
struct Ctx {
    indices: Vec<String>,
    arrays: HashMap<String, ArrayId>,
    next_array: usize,
}

impl Ctx {
    fn array_id(&mut self, name: &str) -> ArrayId {
        if let Some(&id) = self.arrays.get(name) {
            return id;
        }
        // `A7` style names keep their number for render round-trips.
        let id = name
            .strip_prefix('a')
            .and_then(|rest| rest.parse::<usize>().ok())
            .map(ArrayId)
            .unwrap_or_else(|| {
                let mut candidate = self.next_array;
                while self.arrays.values().any(|a| a.0 == candidate) {
                    candidate += 1;
                }
                ArrayId(candidate)
            });
        self.next_array = id.0 + 1;
        self.arrays.insert(name.to_string(), id);
        id
    }

    /// Parses one affine subscript expression, e.g. `2*i + 3 - j`.
    fn lin_expr(&self, text: &str, line: usize) -> Result<LinExpr, ParseError> {
        let mut coefs = vec![0i64; self.indices.len()];
        let mut offset = 0i64;
        // Tokenize into signed terms.
        let cleaned = text.replace(' ', "");
        if cleaned.is_empty() {
            return err(line, "empty subscript expression");
        }
        let mut terms: Vec<String> = Vec::new();
        let mut cur = String::new();
        for (i, ch) in cleaned.chars().enumerate() {
            if (ch == '+' || ch == '-') && i > 0 {
                terms.push(cur.clone());
                cur.clear();
            }
            if !(ch == '+' && i > 0) {
                cur.push(ch);
            }
        }
        terms.push(cur);
        for term in terms.iter().filter(|t| !t.is_empty() && *t != "+") {
            let (sign, body) = match term.strip_prefix('-') {
                Some(rest) => (-1i64, rest),
                None => (1i64, term.strip_prefix('+').unwrap_or(term)),
            };
            if body.is_empty() {
                return err(line, format!("dangling sign in subscript '{text}'"));
            }
            let (coef, var) = match body.split_once('*') {
                Some((c, v)) => {
                    let c: i64 = c.parse().map_err(|_| ParseError {
                        line,
                        message: format!("bad coefficient '{c}'"),
                    })?;
                    (c, v.to_string())
                }
                None if body.chars().all(|c| c.is_ascii_digit()) => {
                    offset += sign
                        * body.parse::<i64>().map_err(|_| ParseError {
                            line,
                            message: format!("bad constant '{body}'"),
                        })?;
                    continue;
                }
                None => (1, body.to_string()),
            };
            match self.indices.iter().position(|n| *n == var) {
                Some(k) => coefs[k] += sign * coef,
                None => return err(line, format!("unknown index variable '{var}'")),
            }
        }
        Ok(LinExpr::new(coefs, offset))
    }

    /// Parses `name[expr, expr]` into a reference.
    fn array_ref(
        &mut self,
        text: &str,
        kind: AccessKind,
        line: usize,
    ) -> Result<ArrayRef, ParseError> {
        let text = text.trim();
        let Some(open) = text.find('[') else {
            return err(line, format!("expected 'name[subscripts]', got '{text}'"));
        };
        if !text.ends_with(']') {
            return err(line, format!("missing ']' in '{text}'"));
        }
        let name = text[..open].trim().to_lowercase();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return err(line, format!("bad array name '{name}'"));
        }
        let inner = &text[open + 1..text.len() - 1];
        let subscript = inner
            .split(',')
            .map(|e| self.lin_expr(e, line))
            .collect::<Result<Vec<_>, _>>()?;
        if subscript.is_empty() {
            return err(line, "array reference needs at least one subscript");
        }
        let array = self.array_id(&name);
        Ok(ArrayRef::new(array, kind, subscript))
    }
}

/// Splits on `sep` at bracket depth zero only (so `A[i, j]` survives a
/// comma split and `A[i+1]` survives a plus split).
fn split_top(text: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            '[' => depth += 1,
            ']' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(ch);
    }
    out.push(cur);
    out
}

/// Parses a statement line `label: writes = reads [@cost]`.
fn parse_stmt(
    ctx: &mut Ctx,
    text: &str,
    line: usize,
) -> Result<(String, u32, Vec<ArrayRef>), ParseError> {
    let Some((label, rest)) = text.split_once(':') else {
        return err(line, format!("expected 'label: ...', got '{text}'"));
    };
    let label = label.trim().to_string();
    let rest = rest.to_lowercase();
    let (body, cost) = match rest.rsplit_once('@') {
        Some((b, c)) => {
            let cost: u32 = c
                .trim()
                .parse()
                .map_err(|_| ParseError { line, message: format!("bad cost '@{}'", c.trim()) })?;
            (b, cost)
        }
        None => (rest.as_str(), 4),
    };
    let Some((lhs, rhs)) = body.split_once('=') else {
        return err(line, format!("statement needs 'writes = reads', got '{body}'"));
    };
    let mut refs = Vec::new();
    for r in split_top(rhs, '+') {
        let r = r.trim();
        if !r.is_empty() && r != "..." {
            refs.push(ctx.array_ref(r, AccessKind::Read, line)?);
        }
    }
    for w in split_top(lhs, ',') {
        let w = w.trim();
        if !w.is_empty() && w != "..." {
            refs.push(ctx.array_ref(w, AccessKind::Write, line)?);
        }
    }
    Ok((label, cost, refs))
}

/// Parses the loop language into a [`LoopNest`].
///
/// # Errors
///
/// Returns the first syntax problem with its line number.
pub fn parse_loop(source: &str) -> Result<LoopNest, ParseError> {
    let mut ctx = Ctx { indices: Vec::new(), arrays: HashMap::new(), next_array: 0 };
    let mut dims: Vec<(i64, i64)> = Vec::new();
    #[allow(clippy::type_complexity)]
    let mut stmts: Vec<(String, u32, Vec<ArrayRef>)> = Vec::new();
    // Branch under construction: arms of statements.
    #[allow(clippy::type_complexity)]
    let mut branch: Option<Vec<Vec<(String, u32, Vec<ArrayRef>)>>> = None;
    #[allow(clippy::type_complexity)]
    let mut items: Vec<Item> = Vec::new();

    #[allow(clippy::type_complexity)]
    enum Item {
        Stmt(String, u32, Vec<ArrayRef>),
        Branch(Vec<Vec<(String, u32, Vec<ArrayRef>)>>),
    }

    for (ix, raw) in source.lines().enumerate() {
        let line_no = ix + 1;
        let line = raw.split("--").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lower = line.to_lowercase();
        if let Some(rest) = lower.strip_prefix("do ") {
            if !items.is_empty() || branch.is_some() {
                return err(line_no, "all DO lines must precede the body (perfect nesting)");
            }
            let Some((var, bounds)) = rest.split_once('=') else {
                return err(line_no, "expected 'DO var = lo, hi'");
            };
            let var = var.trim().to_string();
            if ctx.indices.contains(&var) {
                return err(line_no, format!("duplicate index '{var}'"));
            }
            let Some((lo, hi)) = bounds.split_once(',') else {
                return err(line_no, "expected 'DO var = lo, hi'");
            };
            let lo: i64 = lo.trim().parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("bad lower bound '{}'", lo.trim()),
            })?;
            let hi: i64 = hi.trim().parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("bad upper bound '{}'", hi.trim()),
            })?;
            ctx.indices.push(var);
            dims.push((lo, hi));
        } else if lower.starts_with("if") && lower.ends_with("then") {
            if branch.is_some() {
                return err(line_no, "nested branches are not supported");
            }
            flush_stmts(&mut stmts, &mut items);
            branch = Some(vec![Vec::new()]);
        } else if lower == "else" {
            match branch.as_mut() {
                Some(arms) => arms.push(Vec::new()),
                None => return err(line_no, "ELSE outside a branch"),
            }
        } else if lower == "end if" || lower == "endif" {
            match branch.take() {
                Some(arms) => items.push(Item::Branch(arms)),
                None => return err(line_no, "END IF outside a branch"),
            }
        } else if lower == "end do" || lower == "end" || lower == "enddo" {
            // tolerated; nesting is tracked by the DO headers
        } else {
            if dims.is_empty() {
                return err(line_no, "statements must appear inside a DO loop");
            }
            let stmt = parse_stmt(&mut ctx, line, line_no)?;
            match branch.as_mut() {
                Some(arms) => arms.last_mut().expect("arm open").push(stmt),
                None => stmts.push(stmt),
            }
        }
    }
    if branch.is_some() {
        return err(source.lines().count(), "unterminated IF (missing END IF)");
    }
    flush_stmts(&mut stmts, &mut items);
    if dims.is_empty() {
        return err(1, "no DO loop found");
    }
    if items.is_empty() {
        return err(source.lines().count(), "loop body is empty");
    }

    let mut b = LoopNestBuilder::new(dims[0].0, dims[0].1);
    for &(lo, hi) in &dims[1..] {
        b = b.inner(lo, hi);
    }
    for item in items {
        match item {
            Item::Stmt(label, cost, refs) => b = b.stmt(&label, cost, refs),
            Item::Branch(arms) => {
                let arms_view: Vec<Vec<(&str, u32, Vec<ArrayRef>)>> = arms
                    .iter()
                    .map(|arm| arm.iter().map(|(l, c, r)| (l.as_str(), *c, r.clone())).collect())
                    .collect();
                b = b.branch(arms_view);
            }
        }
    }
    return Ok(b.build());

    fn flush_stmts(stmts: &mut Vec<(String, u32, Vec<ArrayRef>)>, items: &mut Vec<Item>) {
        for (l, c, r) in stmts.drain(..) {
            items.push(Item::Stmt(l, c, r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::render::render_loop;
    use crate::workpatterns::fig21_loop;

    #[test]
    fn parses_fig21_style_source() {
        let src = "
            DO I = 1, 100
              S1: A[I+3] = ...          @4
              S2: R2[I]  = A[I+1]       @4
              S3: R3[I]  = A[I+2]       @4
              S4: A[I]   = ...          @4
              S5: R5[I]  = A[I-1]       @4
            END DO
        ";
        let nest = parse_loop(src).unwrap();
        assert_eq!(nest.n_stmts(), 5);
        assert_eq!(nest.iter_count(), 100);
        let g = analyze(&nest);
        // Same shape as Fig 2.1: S1->S2 flow 2 etc.
        assert!(g
            .deps()
            .iter()
            .any(|d| d.src.0 == 0 && d.dst.0 == 1 && d.linear_distance(&nest) == 2));
    }

    #[test]
    fn round_trips_the_renderer() {
        let nest = fig21_loop(42);
        let text = render_loop(&nest);
        let parsed = parse_loop(&text).unwrap();
        assert_eq!(parsed.n_stmts(), nest.n_stmts());
        assert_eq!(parsed.iter_count(), nest.iter_count());
        // Dependence graphs must match exactly (array ids preserved via
        // the A<number> convention).
        assert_eq!(analyze(&parsed), analyze(&nest));
    }

    #[test]
    fn nested_loops_and_coefficients() {
        let src = "
            do i = 1, 8
            do j = 2, 9
              S1: A[i, j] = A[i-1, j] + A[i, j-1] @7
              S2: B[2*j] = A[i, j]
            end do
            end do
        ";
        let nest = parse_loop(src).unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.iter_count(), 64);
        let s2 = nest.stmt(crate::ir::StmtId(1));
        let w = s2.writes().next().unwrap();
        assert_eq!(w.subscript[0].coef(1), 2);
        assert_eq!(nest.stmt(crate::ir::StmtId(0)).cost, 7);
    }

    #[test]
    fn branches_parse() {
        let src = "
            DO I = 1, 20
              Sa: A[I+1] = ...
              IF (...) THEN
                Sb: R[I] = A[I-1]
              ELSE
                Sc: R[I] = ...
                Sd: B[I+2] = ...
              END IF
              Se: Q[I] = B[I]
            END DO
        ";
        let nest = parse_loop(src).unwrap();
        assert_eq!(nest.n_stmts(), 5);
        assert!(matches!(nest.body[1], crate::ir::BodyItem::Branch(_)));
        let b = match &nest.body[1] {
            crate::ir::BodyItem::Branch(b) => b,
            _ => unreachable!(),
        };
        assert_eq!(b.arms.len(), 2);
        assert_eq!(b.arms[1].len(), 2);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let bad = "DO I = 1, 10\n  S1: A[K] = ...\nEND DO";
        let e = parse_loop(bad).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown index"));

        assert!(parse_loop("S1: A[I] = ...").unwrap_err().message.contains("inside a DO"));
        assert!(parse_loop("DO I = 1, 10\nEND DO").unwrap_err().message.contains("empty"));
        assert!(parse_loop("DO I = 1, x\n S: A[I]=...\nEND DO")
            .unwrap_err()
            .message
            .contains("bad upper bound"));
        let unterminated = "DO I = 1, 4\nIF (...) THEN\n S: A[I] = ...\nEND DO";
        assert!(parse_loop(unterminated).unwrap_err().message.contains("unterminated IF"));
    }

    #[test]
    fn subscript_arithmetic_forms() {
        let src = "do i = 1, 4\n do j = 1, 4\n  S: A[3*i - 2*j + 5, j] = A[-i + 1, 2] @1\nend";
        let nest = parse_loop(src).unwrap();
        let s = nest.stmt(crate::ir::StmtId(0));
        let w = s.writes().next().unwrap();
        assert_eq!(w.subscript[0], LinExpr::new(vec![3, -2], 5));
        let r = s.reads().next().unwrap();
        assert_eq!(r.subscript[0], LinExpr::new(vec![-1, 0], 1));
        assert_eq!(r.subscript[1], LinExpr::new(vec![0, 0], 2));
    }

    #[test]
    fn comments_and_case_insensitivity() {
        let src = "Do I = 1, 5  -- outer\n  s1: a[i] = A[I-1]  -- chain\nEnD dO";
        let nest = parse_loop(src).unwrap();
        assert_eq!(nest.n_stmts(), 1);
        let g = analyze(&nest);
        assert_eq!(g.carried().count(), 1);
    }
}

//! Data-dependence analysis for affine loop nests.
//!
//! Implements the constant-distance dependence testing the paper assumes a
//! parallelizing compiler provides (Section 2): for every pair of
//! references to the same array (at least one a write) we solve the affine
//! conflict equation and classify the result:
//!
//! * a **unique** integer distance vector — the common case in numerical
//!   programs, emitted as [`Distance::Vector`];
//! * a **family** of solutions (free index components, unequal
//!   coefficients, scalar accesses) — conservatively emitted as
//!   [`Distance::SerialChain`], which totally orders all instances of the
//!   two statements via a linear distance-1 chain (sound for *any*
//!   conflict pattern);
//! * **no** solution (including GCD non-divisibility) — no dependence.
//!
//! Dependences are classified flow / anti / output by which access
//! executes first (Section 2.1).

use crate::graph::{Dep, DepGraph, DepKind, Distance};
use crate::ir::{AccessKind, ArrayRef, LoopNest, StmtId};

/// Outcome of solving the conflict equation for a reference pair.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Solve {
    /// No iteration pair conflicts.
    NoConflict,
    /// Exactly one distance vector `delta = y - x` (sink iter − source iter).
    Unique(Vec<i64>),
    /// Conflicts exist at more than one distance (or could not be pinned
    /// down); requires conservative serialization.
    Family,
}

/// Solves `C · delta = rhs` for the distance vector when both references
/// share coefficient vectors, or falls back to a GCD feasibility test.
fn solve_pair(depth: usize, a: &ArrayRef, b: &ArrayRef) -> Solve {
    if a.array != b.array || a.subscript.len() != b.subscript.len() {
        return Solve::NoConflict;
    }
    let same_coefs = a
        .subscript
        .iter()
        .zip(&b.subscript)
        .all(|(ea, eb)| ea.coefs_at_depth(depth) == eb.coefs_at_depth(depth));
    if !same_coefs {
        // Unequal coefficients: distances are not constant. GCD test per
        // dimension can still prove absence of any conflict.
        for (ea, eb) in a.subscript.iter().zip(&b.subscript) {
            let mut g: i64 = 0;
            for k in 0..depth {
                g = gcd(g, ea.coef(k));
                g = gcd(g, eb.coef(k));
            }
            let rhs = eb.offset - ea.offset;
            if g == 0 {
                if rhs != 0 {
                    return Solve::NoConflict;
                }
            } else if rhs % g != 0 {
                return Solve::NoConflict;
            }
        }
        return Solve::Family;
    }

    // Equal coefficients: per array dimension m, c_m · delta = a.offset_m − b.offset_m
    // (element of `a` at iter x equals element of `b` at iter y = x + delta).
    let rows: Vec<(Vec<i64>, i64)> = a
        .subscript
        .iter()
        .zip(&b.subscript)
        .map(|(ea, eb)| (ea.coefs_at_depth(depth), ea.offset - eb.offset))
        .collect();
    solve_system(depth, rows)
}

/// Greatest common divisor (non-negative; `gcd(0, x) = |x|`).
fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Fraction-free Gaussian elimination over the integers.
///
/// Returns `Unique` only when every variable is pinned to an integer;
/// `Family` when at least one variable is free; `NoConflict` on an
/// inconsistent or non-integral system.
fn solve_system(depth: usize, rows: Vec<(Vec<i64>, i64)>) -> Solve {
    let mut m: Vec<(Vec<i128>, i128)> = rows
        .into_iter()
        .map(|(c, r)| (c.into_iter().map(i128::from).collect(), i128::from(r)))
        .collect();
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; depth];
    let mut pivot_rows: Vec<usize> = Vec::new();
    for (col, pivot_slot) in pivot_of_col.iter_mut().enumerate() {
        let Some(pr) = (0..m.len()).find(|&r| !pivot_rows.contains(&r) && m[r].0[col] != 0) else {
            continue;
        };
        *pivot_slot = Some(pr);
        pivot_rows.push(pr);
        let (pc, _) = (m[pr].0[col], m[pr].1);
        for r in 0..m.len() {
            if r == pr || m[r].0[col] == 0 {
                continue;
            }
            let f = m[r].0[col];
            for k in 0..depth {
                m[r].0[k] = m[r].0[k] * pc - m[pr].0[k] * f;
            }
            m[r].1 = m[r].1 * pc - m[pr].1 * f;
        }
    }
    // Inconsistent zero rows => no solution.
    for (c, rhs) in &m {
        if c.iter().all(|&x| x == 0) && *rhs != 0 {
            return Solve::NoConflict;
        }
    }
    if pivot_of_col.iter().any(Option::is_none) {
        return Solve::Family;
    }
    let mut delta = vec![0i64; depth];
    for col in 0..depth {
        let pr = pivot_of_col[col].expect("checked above");
        // After full elimination the pivot row has a single non-zero coef.
        let pc = m[pr].0[col];
        let rhs = m[pr].1;
        if rhs % pc != 0 {
            return Solve::NoConflict;
        }
        let v = rhs / pc;
        if v > i128::from(i64::MAX) || v < i128::from(i64::MIN) {
            return Solve::NoConflict;
        }
        delta[col] = v as i64;
    }
    Solve::Unique(delta)
}

/// Sign of a distance vector under lexicographic order.
fn lex_sign(d: &[i64]) -> std::cmp::Ordering {
    for &x in d {
        match x.cmp(&0) {
            std::cmp::Ordering::Equal => continue,
            o => return o,
        }
    }
    std::cmp::Ordering::Equal
}

/// Dependence kind given the kinds of the first- and second-executed access.
fn kind_of(first: AccessKind, second: AccessKind) -> Option<DepKind> {
    match (first, second) {
        (AccessKind::Write, AccessKind::Read) => Some(DepKind::Flow),
        (AccessKind::Read, AccessKind::Write) => Some(DepKind::Anti),
        (AccessKind::Write, AccessKind::Write) => Some(DepKind::Output),
        (AccessKind::Read, AccessKind::Read) => None,
    }
}

/// Runs dependence analysis over a nest and returns its dependence graph.
///
/// # Examples
///
/// Reproduces Fig 2.1.b of the paper:
///
/// ```
/// use datasync_loopir::analysis::analyze;
/// use datasync_loopir::graph::DepKind;
/// use datasync_loopir::workpatterns::fig21_loop;
///
/// let nest = fig21_loop(100);
/// let g = analyze(&nest);
/// // S1 -> S2 flow with distance 2.
/// assert!(g.carried().any(|d| d.src.0 == 0 && d.dst.0 == 1
///     && d.kind == DepKind::Flow && d.linear_distance(&nest) == 2));
/// ```
pub fn analyze(nest: &LoopNest) -> DepGraph {
    let depth = nest.depth();
    // Flatten (stmt, ref) instances in textual order.
    let insts: Vec<(StmtId, &ArrayRef)> =
        nest.stmts().flat_map(|s| s.refs.iter().map(move |r| (s.id, r))).collect();

    let mut deps: Vec<Dep> = Vec::new();
    let mut push = |d: Dep| {
        if !deps.contains(&d) {
            deps.push(d);
        }
    };

    for i in 0..insts.len() {
        for j in i..insts.len() {
            let (sa, ra) = insts[i];
            let (sb, rb) = insts[j];
            if !ra.kind.is_write() && !rb.kind.is_write() {
                continue;
            }
            if i == j {
                // Self-conflict of one reference across iterations: only
                // possible when the element does not vary with any index.
                if ra.kind.is_write() {
                    if let Solve::Family = solve_pair(depth, ra, ra) {
                        push(Dep {
                            src: sa,
                            dst: sa,
                            kind: DepKind::Output,
                            distance: Distance::SerialChain,
                        });
                    }
                }
                continue;
            }
            match solve_pair(depth, ra, rb) {
                Solve::NoConflict => {}
                Solve::Family => {
                    // Conservative total order of both statements' instances.
                    if sa == sb {
                        push(Dep {
                            src: sa,
                            dst: sa,
                            kind: kind_of(ra.kind, rb.kind)
                                .or_else(|| kind_of(rb.kind, ra.kind))
                                .expect("at least one write"),
                            distance: Distance::SerialChain,
                        });
                    } else {
                        // sa is textually earlier (i < j over textual order).
                        let k01 = kind_of(ra.kind, rb.kind);
                        let k10 = kind_of(rb.kind, ra.kind);
                        if nest.coexecutable(sa, sb) {
                            if let Some(k) = k01 {
                                push(Dep {
                                    src: sa,
                                    dst: sb,
                                    kind: k,
                                    distance: Distance::Vector(vec![0; depth]),
                                });
                            }
                        }
                        push(Dep {
                            src: sb,
                            dst: sa,
                            kind: k10.or(k01).expect("at least one write"),
                            distance: Distance::SerialChain,
                        });
                    }
                }
                Solve::Unique(delta) => {
                    use std::cmp::Ordering::*;
                    match lex_sign(&delta) {
                        Greater => {
                            // `ra` at x executes before `rb` at x + delta.
                            if let Some(k) = kind_of(ra.kind, rb.kind) {
                                push(Dep {
                                    src: sa,
                                    dst: sb,
                                    kind: k,
                                    distance: Distance::Vector(delta),
                                });
                            }
                        }
                        Less => {
                            let neg: Vec<i64> = delta.iter().map(|&x| -x).collect();
                            if let Some(k) = kind_of(rb.kind, ra.kind) {
                                push(Dep {
                                    src: sb,
                                    dst: sa,
                                    kind: k,
                                    distance: Distance::Vector(neg),
                                });
                            }
                        }
                        Equal => {
                            if sa == sb || !nest.coexecutable(sa, sb) {
                                continue;
                            }
                            // Same iteration: textual order decides.
                            // `sa` is textually earlier because i < j walks
                            // statements in order.
                            if let Some(k) = kind_of(ra.kind, rb.kind) {
                                push(Dep {
                                    src: sa,
                                    dst: sb,
                                    kind: k,
                                    distance: Distance::Vector(delta),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    DepGraph::new(nest.n_stmts(), deps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ArrayId, ArrayRef, LinExpr, LoopNestBuilder};
    use crate::workpatterns::fig21_loop;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(0, 0), 0);
    }

    #[test]
    fn fig21_dependence_graph_matches_paper() {
        let nest = fig21_loop(50);
        let g = analyze(&nest);
        let find = |s: usize, t: usize| -> Vec<(DepKind, i64)> {
            g.deps()
                .iter()
                .filter(|d| d.src.0 == s && d.dst.0 == t)
                .map(|d| (d.kind, d.linear_distance(&nest)))
                .collect()
        };
        // Fig 2.1.b: S1->S2 flow 2; S1->S3 flow 1; S4->S5 flow 1;
        // S2->S4 anti 1; S3->S4 anti 2; S1->S4 output 3.
        assert_eq!(find(0, 1), vec![(DepKind::Flow, 2)]);
        assert_eq!(find(0, 2), vec![(DepKind::Flow, 1)]);
        assert_eq!(find(3, 4), vec![(DepKind::Flow, 1)]);
        assert_eq!(find(1, 3), vec![(DepKind::Anti, 1)]);
        assert_eq!(find(2, 3), vec![(DepKind::Anti, 2)]);
        assert_eq!(find(0, 3), vec![(DepKind::Output, 3)]);
        // Pairwise testing additionally finds S1->S5 (flow, 4), which the
        // paper omits because it is covered by S1->S4 + S4->S5; the
        // covering pass removes it.
        assert_eq!(find(0, 4), vec![(DepKind::Flow, 4)]);
        assert_eq!(g.deps().len(), 7);
    }

    #[test]
    fn no_dependence_between_disjoint_offsets_with_stride() {
        // A[2I] vs A[2I+1]: parity proves no conflict.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 100)
            .stmt(
                "S1",
                1,
                vec![ArrayRef::new(a, AccessKind::Write, vec![LinExpr::new(vec![2], 0)])],
            )
            .stmt("S2", 1, vec![ArrayRef::new(a, AccessKind::Read, vec![LinExpr::new(vec![2], 1)])])
            .build();
        assert!(analyze(&nest).deps().is_empty());
    }

    #[test]
    fn scalar_write_becomes_serial_chain() {
        // S1: X = ... every iteration writes the same scalar.
        let x = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 10)
            .stmt("S1", 1, vec![ArrayRef::new(x, AccessKind::Write, vec![LinExpr::constant(0)])])
            .build();
        let g = analyze(&nest);
        assert_eq!(g.deps().len(), 1);
        assert_eq!(g.deps()[0].distance, Distance::SerialChain);
        assert_eq!(g.deps()[0].kind, DepKind::Output);
    }

    #[test]
    fn unequal_coefficients_are_conservative() {
        // A[2I] vs A[I]: conflicts at varying distances -> SerialChain arcs.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 100)
            .stmt(
                "S1",
                1,
                vec![ArrayRef::new(a, AccessKind::Write, vec![LinExpr::new(vec![2], 0)])],
            )
            .stmt("S2", 1, vec![ArrayRef::new(a, AccessKind::Read, vec![LinExpr::new(vec![1], 0)])])
            .build();
        let g = analyze(&nest);
        assert!(g.deps().iter().any(|d| d.distance == Distance::SerialChain));
    }

    #[test]
    fn two_dim_nest_distance_vectors() {
        // Example 2: S1 writes A[I,J]; S2 reads A[I,J-1] -> flow (0,1).
        //            S2 writes B[I,J]; S3 reads B[I-1,J-1] -> flow (1,1).
        let (a, b) = (ArrayId(0), ArrayId(1));
        let nest = LoopNestBuilder::new(1, 4)
            .inner(1, 5)
            .stmt(
                "S1",
                1,
                vec![ArrayRef::new(
                    a,
                    AccessKind::Write,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                )],
            )
            .stmt(
                "S2",
                1,
                vec![
                    ArrayRef::new(
                        b,
                        AccessKind::Write,
                        vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                    ),
                    ArrayRef::new(
                        a,
                        AccessKind::Read,
                        vec![LinExpr::index(0, 0), LinExpr::index(1, -1)],
                    ),
                ],
            )
            .stmt(
                "S3",
                1,
                vec![ArrayRef::new(
                    b,
                    AccessKind::Read,
                    vec![LinExpr::index(0, -1), LinExpr::index(1, -1)],
                )],
            )
            .build();
        let g = analyze(&nest);
        let v = |s: usize, t: usize| {
            g.deps()
                .iter()
                .find(|d| d.src.0 == s && d.dst.0 == t)
                .map(|d| d.distance.clone())
        };
        assert_eq!(v(0, 1), Some(Distance::Vector(vec![0, 1])));
        assert_eq!(v(1, 2), Some(Distance::Vector(vec![1, 1])));
        assert_eq!(g.deps().len(), 2);
    }

    #[test]
    fn anti_dependence_direction_flip() {
        // S1 reads A[I+1]; S2 writes A[I]. Write at iter j touches the
        // element read at iter j-1: read first -> anti S1->S2 distance 1.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 50)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Read, 1)])
            .stmt("S2", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .build();
        let g = analyze(&nest);
        assert_eq!(g.deps().len(), 1);
        let d = &g.deps()[0];
        assert_eq!((d.src.0, d.dst.0, d.kind), (0, 1, DepKind::Anti));
        assert_eq!(d.distance, Distance::Vector(vec![1]));
    }

    #[test]
    fn loop_independent_dep_same_iteration() {
        // S1 writes A[I]; S2 reads A[I]: flow with distance 0.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 10)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .stmt("S2", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])
            .build();
        let g = analyze(&nest);
        assert_eq!(g.deps().len(), 1);
        assert_eq!(g.deps()[0].distance, Distance::Vector(vec![0]));
        assert!(g.carried().next().is_none());
        assert_eq!(g.independent().count(), 1);
    }

    #[test]
    fn different_arms_have_no_intra_iteration_dep() {
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 10)
            .branch(vec![
                vec![("Sb", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])],
                vec![("Sc", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])],
            ])
            .build();
        let g = analyze(&nest);
        // Distance-0 conflicts across mutually exclusive arms are impossible.
        assert!(g.independent().next().is_none());
    }

    #[test]
    fn read_read_is_not_a_dependence() {
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 10)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])
            .stmt("S2", 1, vec![ArrayRef::simple(a, AccessKind::Read, 1)])
            .build();
        assert!(analyze(&nest).deps().is_empty());
    }

    #[test]
    fn solver_rejects_non_integral_solutions() {
        // A[2I] vs A[2I+1] handled by parity; also check 2*delta = 1 path.
        let s = solve_system(1, vec![(vec![2], 1)]);
        assert_eq!(s, Solve::NoConflict);
        assert_eq!(solve_system(1, vec![(vec![2], 4)]), Solve::Unique(vec![2]));
        assert_eq!(solve_system(2, vec![(vec![1, 0], 3)]), Solve::Family);
        assert_eq!(
            solve_system(2, vec![(vec![1, 0], 3), (vec![0, 1], -1)]),
            Solve::Unique(vec![3, -1])
        );
        assert_eq!(solve_system(1, vec![(vec![0], 5)]), Solve::NoConflict);
    }
}

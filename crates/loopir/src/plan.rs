//! Synchronization placement for the process-oriented scheme.
//!
//! Given a loop nest and its (linearized) dependence graph, [`SyncPlan`]
//! decides, exactly as the paper's Fig 4.2.b / Fig 4.3 transformation:
//!
//! * a **step number** for every carried-dependence source, in textual
//!   order (1-based);
//! * **waits** `wait_PC(dist, step)` placed before every sink;
//! * **`mark_PC(step)`** after every source except the last, and
//!   **`transfer_PC`** after the last source;
//! * the **branch rules** of Example 3: every arm of a branch containing
//!   sources must bring the PC to the branch's maximum step (arms without
//!   sources mark at entry), and if the loop's final source sits inside a
//!   branch, every arm ends by transferring.
//!
//! [`SyncPlan::iteration_ops`] lowers one iteration to a linear op list,
//! the common input for both the simulator codegen and the real-thread
//! executor — guaranteeing all executors agree on placement.

use crate::graph::DepGraph;
use crate::ir::{BodyItem, LoopNest, StmtId};

/// One `wait_PC(dist, step)` obligation of a sink statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitSpec {
    /// Source statement the wait corresponds to (diagnostic only).
    pub src: StmtId,
    /// Process-id distance (`> 0`).
    pub dist: i64,
    /// Step the source will have marked (or exceeded).
    pub step: u32,
}

/// A PC-updating operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcOp {
    /// `mark_PC(step)`.
    Mark(u32),
    /// `transfer_PC()` — completes the last source and hands the PC on.
    Transfer,
}

/// One element of a lowered iteration (see [`SyncPlan::iteration_ops`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterOp {
    /// Spin until the source process has reached the step.
    Wait(WaitSpec),
    /// Execute the statement body.
    Exec(StmtId),
    /// Update this process's PC.
    Pc(PcOp),
}

/// A complete synchronization placement for one Doacross loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncPlan {
    n_stmts: usize,
    /// Step number per statement (sources only).
    steps: Vec<Option<u32>>,
    /// Waits to perform immediately before each statement.
    pre_waits: Vec<Vec<WaitSpec>>,
    /// PC ops to perform immediately after each statement.
    post_ops: Vec<Vec<PcOp>>,
    /// PC ops at entry of `(branch_index_in_body, arm)` (compensating
    /// marks/transfers for arms without sources).
    arm_entry_ops: Vec<Vec<Vec<PcOp>>>,
    n_steps: u32,
}

impl SyncPlan {
    /// Builds the placement from a nest and its **linearized** dependence
    /// graph (see [`DepGraph::linearized`]; for singly-nested loops the
    /// analysis output is already linear).
    ///
    /// Call [`crate::covering::reduce`] first to avoid synchronizing
    /// covered dependences.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not match the nest or contains
    /// non-linear distances.
    pub fn build(nest: &LoopNest, graph: &DepGraph) -> Self {
        assert_eq!(nest.n_stmts(), graph.n_stmts(), "graph does not match nest");
        let n = nest.n_stmts();

        // 1. Step numbering of carried sources, textual order.
        let sources = graph.carried_sources();
        let mut steps: Vec<Option<u32>> = vec![None; n];
        for (k, &s) in sources.iter().enumerate() {
            steps[s.0] = Some(k as u32 + 1);
        }
        let n_steps = sources.len() as u32;
        let last_source = sources.last().copied();

        // 2. Waits before sinks.
        let mut pre_waits: Vec<Vec<WaitSpec>> = vec![Vec::new(); n];
        for d in graph.carried() {
            let dist = d.linear();
            debug_assert!(dist > 0, "carried dependence with non-positive linear distance");
            let step = steps[d.src.0].expect("carried source must be numbered");
            let w = WaitSpec { src: d.src, dist, step };
            let waits = &mut pre_waits[d.dst.0];
            // Dedup: an existing wait with the same distance and a >= step
            // already implies this one.
            if let Some(existing) = waits.iter_mut().find(|x| x.dist == w.dist) {
                if w.step > existing.step {
                    *existing = w;
                }
            } else {
                waits.push(w);
            }
        }

        // 3. Marks/transfers after sources, with the Example 3 branch rules.
        let mut post_ops: Vec<Vec<PcOp>> = vec![Vec::new(); n];
        let mut arm_entry_ops: Vec<Vec<Vec<PcOp>>> = Vec::new();

        for item in &nest.body {
            match item {
                BodyItem::Stmt(s) => {
                    if let Some(step) = steps[s.id.0] {
                        post_ops[s.id.0].push(if Some(s.id) == last_source {
                            PcOp::Transfer
                        } else {
                            PcOp::Mark(step)
                        });
                    }
                }
                BodyItem::Branch(b) => {
                    let branch_sources: Vec<StmtId> =
                        b.stmts().filter(|s| steps[s.id.0].is_some()).map(|s| s.id).collect();
                    let mut entry = vec![Vec::new(); b.arms.len()];
                    if !branch_sources.is_empty() {
                        let m_max = branch_sources
                            .iter()
                            .map(|s| steps[s.0].expect("source"))
                            .max()
                            .expect("non-empty");
                        let transfers =
                            last_source.map(|ls| branch_sources.contains(&ls)).unwrap_or(false);
                        let closing = if transfers { PcOp::Transfer } else { PcOp::Mark(m_max) };
                        for (arm_ix, arm) in b.arms.iter().enumerate() {
                            let arm_sources: Vec<StmtId> = arm
                                .iter()
                                .filter(|s| steps[s.id.0].is_some())
                                .map(|s| s.id)
                                .collect();
                            match arm_sources.split_last() {
                                Some((&last_in_arm, earlier)) => {
                                    // Earlier sources mark their own step
                                    // (early signaling); the arm's last
                                    // source closes with the escalated op.
                                    for &s in earlier {
                                        post_ops[s.0].push(PcOp::Mark(steps[s.0].expect("source")));
                                    }
                                    post_ops[last_in_arm.0].push(closing);
                                }
                                None => {
                                    // "mark_PC(3), though not required, is
                                    // added as the first statement in
                                    // branch B."
                                    entry[arm_ix].push(closing);
                                }
                            }
                        }
                    }
                    arm_entry_ops.push(entry);
                }
            }
        }

        Self { n_stmts: n, steps, pre_waits, post_ops, arm_entry_ops, n_steps }
    }

    /// Number of statements covered by the plan.
    pub fn n_stmts(&self) -> usize {
        self.n_stmts
    }

    /// Total number of source steps in one iteration.
    pub fn n_steps(&self) -> u32 {
        self.n_steps
    }

    /// `true` if the loop needs any synchronization (otherwise it is a
    /// Doall loop).
    pub fn has_sync(&self) -> bool {
        self.n_steps > 0
    }

    /// Step number of a statement, if it is a carried source.
    pub fn step_of(&self, s: StmtId) -> Option<u32> {
        self.steps[s.0]
    }

    /// Waits placed before a statement.
    pub fn waits_before(&self, s: StmtId) -> &[WaitSpec] {
        &self.pre_waits[s.0]
    }

    /// PC ops placed after a statement.
    pub fn ops_after(&self, s: StmtId) -> &[PcOp] {
        &self.post_ops[s.0]
    }

    /// Compensating PC ops at entry of the `arm`-th arm of the
    /// `branch_ix`-th branch in the body (Example 3).
    pub fn arm_entry(&self, branch_ix: usize, arm: usize) -> &[PcOp] {
        &self.arm_entry_ops[branch_ix][arm]
    }

    /// Lowers iteration `pid` of the nest to a linear op sequence,
    /// resolving branch arms and dropping waits that would reach before
    /// the first iteration (loop-boundary rule).
    pub fn iteration_ops(&self, nest: &LoopNest, pid: u64) -> Vec<IterOp> {
        let mut out = Vec::new();
        let mut branch_ix = 0usize;
        for item in &nest.body {
            match item {
                BodyItem::Stmt(s) => self.lower_stmt(s.id, pid, &mut out),
                BodyItem::Branch(b) => {
                    let arm = b.arm_taken(pid);
                    for op in &self.arm_entry_ops[branch_ix][arm] {
                        out.push(IterOp::Pc(*op));
                    }
                    for s in &b.arms[arm] {
                        self.lower_stmt(s.id, pid, &mut out);
                    }
                    branch_ix += 1;
                }
            }
        }
        out
    }

    fn lower_stmt(&self, s: StmtId, pid: u64, out: &mut Vec<IterOp>) {
        for w in &self.pre_waits[s.0] {
            // Boundary rule: no source iteration exists before the first.
            if (w.dist as u64) <= pid {
                out.push(IterOp::Wait(*w));
            }
        }
        out.push(IterOp::Exec(s));
        for op in &self.post_ops[s.0] {
            out.push(IterOp::Pc(*op));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::covering::reduce;
    use crate::workpatterns::{example3_branches, fig21_loop};

    use crate::space::IterSpace;

    fn fig21_plan(n: i64) -> (crate::ir::LoopNest, SyncPlan) {
        let nest = fig21_loop(n);
        let g = reduce(&nest, &analyze(&nest));
        let space = IterSpace::of(&nest);
        let plan = SyncPlan::build(&nest, &g.linearized(&space));
        (nest, plan)
    }

    #[test]
    fn fig21_plan_matches_fig42b() {
        let (_, plan) = fig21_plan(50);
        // Sources: S1 (step 1), S2 (2), S3 (3), S4 (4, last -> transfer).
        assert_eq!(plan.n_steps(), 4);
        assert_eq!(plan.step_of(StmtId(0)), Some(1));
        assert_eq!(plan.step_of(StmtId(1)), Some(2));
        assert_eq!(plan.step_of(StmtId(2)), Some(3));
        assert_eq!(plan.step_of(StmtId(3)), Some(4));
        assert_eq!(plan.step_of(StmtId(4)), None);
        // Fig 4.2.b: wait_PC(2,1) before S2; wait_PC(1,1) before S3;
        // wait_PC(1,2) and wait_PC(2,3) before S4; wait_PC(1,4) before S5.
        assert_eq!(plan.waits_before(StmtId(1)), &[WaitSpec { src: StmtId(0), dist: 2, step: 1 }]);
        assert_eq!(plan.waits_before(StmtId(2)), &[WaitSpec { src: StmtId(0), dist: 1, step: 1 }]);
        let s4_waits = plan.waits_before(StmtId(3));
        assert_eq!(s4_waits.len(), 2);
        assert!(s4_waits.contains(&WaitSpec { src: StmtId(1), dist: 1, step: 2 }));
        assert!(s4_waits.contains(&WaitSpec { src: StmtId(2), dist: 2, step: 3 }));
        assert_eq!(plan.waits_before(StmtId(4)), &[WaitSpec { src: StmtId(3), dist: 1, step: 4 }]);
        // Marks after S1..S3, transfer after S4.
        assert_eq!(plan.ops_after(StmtId(0)), &[PcOp::Mark(1)]);
        assert_eq!(plan.ops_after(StmtId(1)), &[PcOp::Mark(2)]);
        assert_eq!(plan.ops_after(StmtId(2)), &[PcOp::Mark(3)]);
        assert_eq!(plan.ops_after(StmtId(3)), &[PcOp::Transfer]);
        assert_eq!(plan.ops_after(StmtId(4)), &[]);
    }

    #[test]
    fn boundary_waits_dropped_in_early_iterations() {
        let (nest, plan) = fig21_plan(50);
        let ops0 = plan.iteration_ops(&nest, 0);
        assert!(ops0.iter().all(|op| !matches!(op, IterOp::Wait(_))));
        let ops1 = plan.iteration_ops(&nest, 1);
        let waits1 = ops1.iter().filter(|o| matches!(o, IterOp::Wait(_))).count();
        // Only the dist-1 waits survive at pid 1 (before S3, S4, S5).
        assert_eq!(waits1, 3);
        let ops2 = plan.iteration_ops(&nest, 2);
        let waits2 = ops2.iter().filter(|o| matches!(o, IterOp::Wait(_))).count();
        assert_eq!(waits2, 5);
    }

    #[test]
    fn iteration_ops_sequence_shape() {
        let (nest, plan) = fig21_plan(50);
        let ops = plan.iteration_ops(&nest, 10);
        // S1; mark(1); wait(2,1); S2; mark(2); wait(1,1); S3; mark(3);
        // wait(1,2); wait(2,3); S4; transfer; wait(1,4); S5.
        use IterOp::*;
        use PcOp::*;
        let expect = vec![
            Exec(StmtId(0)),
            Pc(Mark(1)),
            Wait(WaitSpec { src: StmtId(0), dist: 2, step: 1 }),
            Exec(StmtId(1)),
            Pc(Mark(2)),
            Wait(WaitSpec { src: StmtId(0), dist: 1, step: 1 }),
            Exec(StmtId(2)),
            Pc(Mark(3)),
            Wait(WaitSpec { src: StmtId(1), dist: 1, step: 2 }),
            Wait(WaitSpec { src: StmtId(2), dist: 2, step: 3 }),
            Exec(StmtId(3)),
            Pc(Transfer),
            Wait(WaitSpec { src: StmtId(3), dist: 1, step: 4 }),
            Exec(StmtId(4)),
        ];
        assert_eq!(ops, expect);
    }

    #[test]
    fn doall_loop_has_no_sync() {
        use crate::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
        let nest = LoopNestBuilder::new(1, 10)
            .stmt("S1", 1, vec![ArrayRef::simple(ArrayId(0), AccessKind::Write, 0)])
            .build();
        let g = analyze(&nest);
        let plan = SyncPlan::build(&nest, &g);
        assert!(!plan.has_sync());
        assert_eq!(plan.iteration_ops(&nest, 3), vec![IterOp::Exec(StmtId(0))]);
    }

    #[test]
    fn branch_arms_compensate_marks() {
        let nest = example3_branches(40, 2);
        let g = reduce(&nest, &analyze(&nest));
        let space = IterSpace::of(&nest);
        let plan = SyncPlan::build(&nest, &g.linearized(&space));
        // Sources: Sa (S1, step 1) and Sd (S4, step 2, last -> transfer).
        assert_eq!(plan.step_of(StmtId(0)), Some(1));
        assert_eq!(plan.step_of(StmtId(3)), Some(2));
        // Arm 0 (no sources) must transfer at entry (last source lives in
        // the branch); arm 1 closes with transfer after Sd.
        for pid in 0..40u64 {
            let ops = plan.iteration_ops(&nest, pid);
            let transfers = ops.iter().filter(|o| matches!(o, IterOp::Pc(PcOp::Transfer))).count();
            assert_eq!(transfers, 1, "exactly one transfer on every path (pid {pid})");
        }
    }

    #[test]
    #[should_panic(expected = "graph does not match nest")]
    fn mismatched_graph_panics() {
        let nest = fig21_loop(10);
        let g = DepGraph::new(2, vec![]);
        let _ = SyncPlan::build(&nest, &g);
    }
}

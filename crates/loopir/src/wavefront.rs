//! The wavefront method (loop index transformation).
//!
//! Fig 5.1.c of the paper runs the relaxation loop by anti-diagonals:
//! "the well known wavefront method which requires loop index
//! transformation. A barrier synchronization is needed between two
//! consecutive wavefronts." This module derives that transformation for
//! any depth-2 nest: it searches for a schedule vector `λ` with
//! `λ · d >= 1` for every carried dependence distance `d`, so all
//! iterations on one hyperplane `λ · (i, j) = w` are independent.

use crate::graph::{DepGraph, Distance};
use crate::space::IterSpace;

/// A legal wavefront schedule for a depth-2 iteration space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WavefrontSchedule {
    /// The schedule (skewing) vector.
    pub lambda: (i64, i64),
    /// Iterations (linear pids) of each wavefront, in execution order.
    pub waves: Vec<Vec<u64>>,
}

impl WavefrontSchedule {
    /// Number of parallel steps (wavefronts).
    pub fn parallel_steps(&self) -> usize {
        self.waves.len()
    }

    /// Width of the widest wavefront (peak parallelism).
    pub fn max_width(&self) -> usize {
        self.waves.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total iterations scheduled.
    pub fn total(&self) -> usize {
        self.waves.iter().map(Vec::len).sum()
    }
}

/// Derives a wavefront schedule, or `None` when no legal `λ` exists
/// within the search bound (e.g. the graph has a serial chain).
///
/// The search minimizes `λ1 + λ2` (fewer, wider waves first).
///
/// # Panics
///
/// Panics if the space is not two-dimensional or distances are not
/// 2-vectors.
pub fn wavefront_schedule(graph: &DepGraph, space: &IterSpace) -> Option<WavefrontSchedule> {
    assert_eq!(space.depth(), 2, "wavefront transformation expects a depth-2 nest");
    let mut dists: Vec<(i64, i64)> = Vec::new();
    for d in graph.carried() {
        match &d.distance {
            Distance::Vector(v) => {
                assert_eq!(v.len(), 2, "distance must be a 2-vector");
                dists.push((v[0], v[1]));
            }
            Distance::SerialChain => return None,
        }
    }

    let bound = dists.iter().map(|(a, b)| a.abs().max(b.abs())).max().unwrap_or(0).max(1)
        * (dists.len() as i64 + 1);
    let legal = |l1: i64, l2: i64| dists.iter().all(|&(d1, d2)| l1 * d1 + l2 * d2 >= 1);

    let mut lambda = None;
    'outer: for sum in 1..=2 * bound {
        for l1 in 0..=sum {
            let l2 = sum - l1;
            // At least one positive component and legality.
            if (l1 > 0 || l2 > 0) && legal(l1, l2) {
                lambda = Some((l1, l2));
                break 'outer;
            }
        }
    }
    let lambda = lambda?;

    // Bucket iterations by hyperplane value.
    let mut buckets: std::collections::BTreeMap<i64, Vec<u64>> = std::collections::BTreeMap::new();
    for pid in 0..space.count() {
        let ix = space.indices(pid);
        let w = lambda.0 * ix[0] + lambda.1 * ix[1];
        buckets.entry(w).or_default().push(pid);
    }
    Some(WavefrontSchedule { lambda, waves: buckets.into_values().collect() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::workpatterns::example1_relaxation;

    #[test]
    fn relaxation_skews_to_anti_diagonals() {
        let n = 10;
        let nest = example1_relaxation(n, 1);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let ws = wavefront_schedule(&graph, &space).expect("relaxation must be schedulable");
        assert_eq!(ws.lambda, (1, 1));
        // i + j ranges over 4..=2n: 2n - 3 wavefronts.
        assert_eq!(ws.parallel_steps(), (2 * n - 3) as usize);
        assert_eq!(ws.total() as u64, space.count());
        assert_eq!(ws.max_width(), (n - 1) as usize);
    }

    #[test]
    fn waves_are_independent() {
        // Brute force: no two iterations in the same wave may conflict
        // through any carried dependence.
        let nest = example1_relaxation(6, 1);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let ws = wavefront_schedule(&graph, &space).unwrap();
        let dists: Vec<(i64, i64)> = graph
            .carried()
            .map(|d| match &d.distance {
                Distance::Vector(v) => (v[0], v[1]),
                _ => unreachable!(),
            })
            .collect();
        for wave in &ws.waves {
            for &a in wave {
                for &b in wave {
                    let (ia, ib) = (space.indices(a), space.indices(b));
                    for &(d1, d2) in &dists {
                        assert!(
                            !(ib[0] - ia[0] == d1 && ib[1] - ia[1] == d2),
                            "iterations {ia:?} and {ib:?} in one wave conflict"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn row_only_dependence_schedules_by_rows() {
        use crate::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNestBuilder};
        // A[I, J] = A[I-1, J+1]: distance (1, -1) -> λ = (1, 0) works.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 6)
            .inner(1, 6)
            .stmt(
                "S",
                1,
                vec![
                    ArrayRef::new(
                        a,
                        AccessKind::Write,
                        vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                    ),
                    ArrayRef::new(
                        a,
                        AccessKind::Read,
                        vec![LinExpr::index(0, -1), LinExpr::index(1, 1)],
                    ),
                ],
            )
            .build();
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let ws = wavefront_schedule(&graph, &space).unwrap();
        assert_eq!(ws.lambda, (1, 0));
        assert_eq!(ws.parallel_steps(), 6);
        assert_eq!(ws.max_width(), 6);
    }

    #[test]
    fn doall_nest_gets_single_wave() {
        use crate::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNestBuilder};
        let nest = LoopNestBuilder::new(1, 4)
            .inner(1, 4)
            .stmt(
                "S",
                1,
                vec![ArrayRef::new(
                    ArrayId(0),
                    AccessKind::Write,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                )],
            )
            .build();
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let ws = wavefront_schedule(&graph, &space).unwrap();
        // No constraints: λ = (0, 1) or (1, 0) picked at sum 1; waves
        // follow one index.
        assert_eq!(ws.lambda.0 + ws.lambda.1, 1);
        assert_eq!(ws.parallel_steps(), 4);
    }

    #[test]
    fn serial_chain_refuses_schedule() {
        use crate::graph::{Dep, DepKind};
        use crate::ir::StmtId;
        let g = DepGraph::new(
            1,
            vec![Dep {
                src: StmtId(0),
                dst: StmtId(0),
                kind: DepKind::Output,
                distance: Distance::SerialChain,
            }],
        );
        let space =
            IterSpace::new(vec![crate::ir::LoopDim::new(1, 3), crate::ir::LoopDim::new(1, 3)]);
        assert!(wavefront_schedule(&g, &space).is_none());
    }
}

//! Redundant (covered) dependence elimination.
//!
//! A dependence arc `u -> v` with distance `d` is *covered* when the graph
//! contains a path from `u` to `v` whose distance vectors sum to exactly
//! `d` (Section 2.1: "by enforcing S1->S3 and S3->S4, the dependence
//! S1->S4 can be covered"). Enforcing the path arcs transitively enforces
//! the covered arc, so it needs no synchronization of its own.
//!
//! # Why exact sums?
//!
//! A path with a *smaller* distance sum `d' < d` would order `v(i+d)`
//! after `u(i + (d - d'))` — a *later* instance of `u`. Under Doacross
//! execution, instances of the same statement across iterations are not
//! ordered unless a dependence orders them, so completion of `u(i+k)` does
//! not imply completion of `u(i)`. Only exact-sum paths are sound.
//!
//! [`Distance::SerialChain`] arcs never participate: their distance is not
//! a single vector.
//!
//! # Branches
//!
//! A covering path is only as strong as its weakest instance: if an
//! intermediate statement sits inside a branch arm, the iteration the
//! path routes through may take the other arm and the chain breaks.
//! Paths therefore only pass through **unconditional** intermediate
//! statements; the covered arc's endpoints may be conditional (the
//! obligation is itself conditional on those instances executing).

use crate::graph::{Dep, DepGraph, Distance};
use crate::ir::{LoopNest, StmtId};
use std::collections::HashSet;

/// Limits on the covering-path search (keeps the search total on cyclic
/// graphs; hitting a limit only means an arc is conservatively kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverLimits {
    /// Maximum number of arcs in a covering path.
    pub max_path_len: usize,
    /// Maximum number of DFS node expansions per candidate arc.
    pub max_expansions: usize,
}

impl Default for CoverLimits {
    fn default() -> Self {
        Self { max_path_len: 16, max_expansions: 50_000 }
    }
}

/// Removes covered carried arcs and returns the reduced graph.
///
/// Arcs are considered in decreasing linear-magnitude order, and each
/// candidate is tested against the *current* remaining graph, so removals
/// compose soundly (every removed arc stays implied by arcs that remain).
///
/// # Examples
///
/// ```
/// use datasync_loopir::{analysis::analyze, covering::reduce, workpatterns::fig21_loop};
///
/// let nest = fig21_loop(50);
/// let g = analyze(&nest);
/// let reduced = reduce(&nest, &g);
/// // S1->S4 (output, 3) is covered by S1->S3 (1) + S3->S4 (2);
/// // S1->S5 (flow, 4) is covered by S1->S4's cover + S4->S5.
/// assert_eq!(g.deps().len() - reduced.deps().len(), 2);
/// ```
pub fn reduce(nest: &LoopNest, graph: &DepGraph) -> DepGraph {
    reduce_with(nest, graph, CoverLimits::default())
}

/// [`reduce`] with explicit search limits.
pub fn reduce_with(nest: &LoopNest, graph: &DepGraph, limits: CoverLimits) -> DepGraph {
    assert_eq!(nest.n_stmts(), graph.n_stmts(), "graph does not match nest");
    // A statement inside a branch arm may not execute every iteration.
    let conditional: Vec<bool> =
        (0..graph.n_stmts()).map(|i| nest.branch_of(StmtId(i)).is_some()).collect();
    let remaining: Vec<Dep> = graph.deps().to_vec();

    // Candidates: carried vector arcs, largest distances first (the larger
    // an arc, the more likely a multi-arc path covers it).
    let mut order: Vec<usize> = (0..remaining.len())
        .filter(|&i| {
            remaining[i].is_carried() && matches!(remaining[i].distance, Distance::Vector(_))
        })
        .collect();
    order.sort_by_key(|&i| {
        std::cmp::Reverse(match &remaining[i].distance {
            Distance::Vector(v) => v.iter().map(|x| x.abs()).sum::<i64>(),
            Distance::SerialChain => 0,
        })
    });

    let mut removed: HashSet<usize> = HashSet::new();
    for &cand in &order {
        let arcs: Vec<&Dep> = remaining
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != cand && !removed.contains(&i))
            .map(|(_, d)| d)
            .collect();
        if is_covered(&remaining[cand], &arcs, &conditional, limits) {
            removed.insert(cand);
        }
    }

    let deps = remaining
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !removed.contains(i))
        .map(|(_, d)| d)
        .collect();
    DepGraph::new(graph.n_stmts(), deps)
}

/// Tests whether `target` is covered by a path over `arcs` whose
/// intermediate statements all execute unconditionally.
fn is_covered(target: &Dep, arcs: &[&Dep], conditional: &[bool], limits: CoverLimits) -> bool {
    let Distance::Vector(goal) = &target.distance else { return false };
    let depth = goal.len();
    let budget: i64 = goal.iter().map(|x| x.abs()).sum::<i64>()
        + arcs
            .iter()
            .filter_map(|d| match &d.distance {
                Distance::Vector(v) => Some(v.iter().map(|x| x.abs()).sum::<i64>()),
                Distance::SerialChain => None,
            })
            .sum::<i64>();

    // DFS over (stmt, accumulated distance); only count paths of >= 2 arcs
    // unless a distinct parallel arc matches exactly.
    let mut stack: Vec<(StmtId, Vec<i64>, usize)> = vec![(target.src, vec![0; depth], 0)];
    let mut seen: HashSet<(StmtId, Vec<i64>)> = HashSet::new();
    let mut expansions = 0usize;

    while let Some((at, acc, len)) = stack.pop() {
        expansions += 1;
        if expansions > limits.max_expansions || len >= limits.max_path_len {
            continue;
        }
        for arc in arcs {
            if arc.src != at {
                continue;
            }
            let Distance::Vector(v) = &arc.distance else { continue };
            let next: Vec<i64> = acc.iter().zip(v).map(|(a, b)| a + b).collect();
            let l1: i64 = next.iter().map(|x| x.abs()).sum();
            if l1 > budget {
                continue;
            }
            if arc.dst == target.dst && next == *goal {
                return true;
            }
            // Only unconditional statements may serve as intermediates.
            if conditional[arc.dst.0] {
                continue;
            }
            let key = (arc.dst, next.clone());
            if seen.insert(key) {
                stack.push((arc.dst, next, len + 1));
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::graph::DepKind;
    use crate::workpatterns::fig21_loop;

    fn dep(s: usize, t: usize, kind: DepKind, v: Vec<i64>) -> Dep {
        Dep { src: StmtId(s), dst: StmtId(t), kind, distance: Distance::Vector(v) }
    }

    /// A nest of `n` unconditional empty statements (structure only).
    fn flat_nest(n: usize) -> LoopNest {
        let mut b = crate::ir::LoopNestBuilder::new(1, 4);
        for i in 0..n {
            b = b.stmt(&format!("S{i}"), 1, vec![]);
        }
        b.build()
    }

    #[test]
    fn fig21_covering_matches_paper() {
        let nest = fig21_loop(50);
        let g = analyze(&nest);
        let r = reduce(&nest, &g);
        let has = |s: usize, t: usize| r.deps().iter().any(|d| d.src.0 == s && d.dst.0 == t);
        // Removed: S1->S4 (covered by S1->S3 + S3->S4) and S1->S5
        // (covered by remaining arcs + S4->S5).
        assert!(!has(0, 3), "S1->S4 should be covered");
        assert!(!has(0, 4), "S1->S5 should be covered");
        // Kept: the five arcs the paper synchronizes.
        assert!(has(0, 1) && has(0, 2) && has(1, 3) && has(2, 3) && has(3, 4));
        assert_eq!(r.deps().len(), 5);
    }

    #[test]
    fn exact_sum_required() {
        // u->v (3) and a path u->w->v summing to 2: NOT covering.
        let g = DepGraph::new(
            3,
            vec![
                dep(0, 2, DepKind::Flow, vec![3]),
                dep(0, 1, DepKind::Flow, vec![1]),
                dep(1, 2, DepKind::Flow, vec![1]),
            ],
        );
        let r = reduce(&flat_nest(3), &g);
        assert_eq!(r.deps().len(), 3, "smaller-sum path must not cover");
    }

    #[test]
    fn zero_distance_arcs_can_participate() {
        // u->v (2) covered by u->w (0) + w->v (2).
        let g = DepGraph::new(
            3,
            vec![
                dep(0, 2, DepKind::Flow, vec![2]),
                dep(0, 1, DepKind::Flow, vec![0]),
                dep(1, 2, DepKind::Flow, vec![2]),
            ],
        );
        let r = reduce(&flat_nest(3), &g);
        assert_eq!(r.deps().len(), 2);
        assert!(!r.deps().iter().any(|d| d.src.0 == 0 && d.dst.0 == 2));
    }

    #[test]
    fn serial_chains_are_preserved() {
        let g = DepGraph::new(
            2,
            vec![
                Dep {
                    src: StmtId(0),
                    dst: StmtId(1),
                    kind: DepKind::Output,
                    distance: Distance::SerialChain,
                },
                dep(0, 1, DepKind::Flow, vec![1]),
            ],
        );
        let r = reduce(&flat_nest(2), &g);
        assert_eq!(r.deps().len(), 2);
    }

    #[test]
    fn vector_distances_cover_componentwise() {
        // (1,1) covered by (1,0) + (0,1).
        let g = DepGraph::new(
            3,
            vec![
                dep(0, 2, DepKind::Flow, vec![1, 1]),
                dep(0, 1, DepKind::Flow, vec![1, 0]),
                dep(1, 2, DepKind::Flow, vec![0, 1]),
            ],
        );
        let r = reduce(&flat_nest(3), &g);
        assert_eq!(r.deps().len(), 2);
    }

    #[test]
    fn self_cycle_does_not_loop_forever() {
        // A cycle u->u (1) with a candidate u->v (5): terminates within caps.
        let g = DepGraph::new(
            2,
            vec![dep(0, 0, DepKind::Output, vec![1]), dep(0, 1, DepKind::Flow, vec![5])],
        );
        let r =
            reduce_with(&flat_nest(2), &g, CoverLimits { max_path_len: 8, max_expansions: 1000 });
        // No path u->...->v other than the arc itself: both kept.
        assert_eq!(r.deps().len(), 2);
    }

    #[test]
    fn chain_of_selfloops_covers_long_arc() {
        // u->u (1) and u->v (1): u->v (3) is covered by u->u,u->u,u->v.
        let g = DepGraph::new(
            2,
            vec![
                dep(0, 0, DepKind::Output, vec![1]),
                dep(0, 1, DepKind::Flow, vec![1]),
                dep(0, 1, DepKind::Flow, vec![3]),
            ],
        );
        let r = reduce(&flat_nest(2), &g);
        assert!(!r
            .deps()
            .iter()
            .any(|d| d.src.0 == 0 && d.dst.0 == 1 && d.distance == Distance::Vector(vec![3])));
    }

    #[test]
    fn conditional_intermediates_do_not_cover() {
        // u (top level) -> c (in a branch arm) -> v: the path through c
        // must NOT cover u -> v, because c may not execute in the middle
        // iteration.
        use crate::ir::LoopNestBuilder;
        let nest = LoopNestBuilder::new(1, 8)
            .stmt("u", 1, vec![])
            .branch(vec![vec![("c", 1, vec![])], vec![("c2", 1, vec![])]])
            .stmt("v", 1, vec![])
            .build();
        // u = S0, c = S1, c2 = S2, v = S3.
        let g = DepGraph::new(
            4,
            vec![
                dep(0, 3, DepKind::Flow, vec![2]),
                dep(0, 1, DepKind::Flow, vec![1]),
                dep(1, 3, DepKind::Flow, vec![1]),
            ],
        );
        let r = reduce(&nest, &g);
        assert_eq!(r.deps().len(), 3, "path through conditional c must not cover");
        // Same shape with all statements unconditional: covered.
        let r2 = reduce(&flat_nest(4), &g);
        assert_eq!(r2.deps().len(), 2);
    }
}

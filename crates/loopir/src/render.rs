//! Human-readable listings of loops and their Doacross transformations —
//! the textual shape of the paper's Fig 2.1.a and Fig 4.2.b.

use crate::ir::{AccessKind, ArrayRef, BodyItem, LoopNest, Stmt};
use crate::plan::{PcOp, SyncPlan};
use std::fmt::Write as _;

fn subscript(r: &ArrayRef, names: &[&str]) -> String {
    let dims: Vec<String> = r
        .subscript
        .iter()
        .map(|e| {
            let mut parts: Vec<String> = Vec::new();
            for (k, &c) in e.coefs.iter().enumerate() {
                let var = names.get(k).copied().unwrap_or("?");
                match c {
                    0 => {}
                    1 => parts.push(var.to_string()),
                    -1 => parts.push(format!("-{var}")),
                    c => parts.push(format!("{c}*{var}")),
                }
            }
            match (parts.is_empty(), e.offset) {
                (true, off) => off.to_string(),
                (false, 0) => parts.join("+"),
                (false, off) if off > 0 => format!("{}+{off}", parts.join("+")),
                (false, off) => format!("{}{off}", parts.join("+")),
            }
        })
        .collect();
    format!("A{}[{}]", r.array.0, dims.join(","))
}

fn stmt_line(s: &Stmt, names: &[&str]) -> String {
    let writes: Vec<String> = s
        .refs
        .iter()
        .filter(|r| r.kind == AccessKind::Write)
        .map(|r| subscript(r, names))
        .collect();
    let reads: Vec<String> = s
        .refs
        .iter()
        .filter(|r| r.kind == AccessKind::Read)
        .map(|r| subscript(r, names))
        .collect();
    let lhs = if writes.is_empty() { "...".to_string() } else { writes.join(", ") };
    let rhs = if reads.is_empty() { "...".to_string() } else { reads.join(" + ") };
    format!("{}: {lhs} = {rhs}  @{}", s.label, s.cost)
}

/// Index-variable names for up to three nesting levels.
const INDEX_NAMES: [&str; 3] = ["I", "J", "K"];

/// Renders the original loop in a Fortran-like listing (Fig 2.1.a).
pub fn render_loop(nest: &LoopNest) -> String {
    let names = &INDEX_NAMES[..nest.depth().min(3)];
    let mut out = String::new();
    for (k, d) in nest.dims.iter().enumerate() {
        let _ = writeln!(out, "{}DO {} = {}, {}", "  ".repeat(k), names[k], d.lower, d.upper);
    }
    let pad = "  ".repeat(nest.depth());
    for item in &nest.body {
        match item {
            BodyItem::Stmt(s) => {
                let _ = writeln!(out, "{pad}{}", stmt_line(s, names));
            }
            BodyItem::Branch(b) => {
                for (i, arm) in b.arms.iter().enumerate() {
                    let kw = if i == 0 { "IF (...) THEN" } else { "ELSE" };
                    let _ = writeln!(out, "{pad}{kw}");
                    for s in arm {
                        let _ = writeln!(out, "{pad}  {}", stmt_line(s, names));
                    }
                }
                let _ = writeln!(out, "{pad}END IF");
            }
        }
    }
    for k in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{}END DO", "  ".repeat(k));
    }
    out
}

fn pc_op_line(op: &PcOp) -> String {
    match op {
        PcOp::Mark(step) => format!("mark_PC({step});"),
        PcOp::Transfer => "transfer_PC();".to_string(),
    }
}

/// Renders the Doacross transformation of the loop under a
/// process-oriented placement — the paper's Fig 4.2.b listing (with the
/// improved primitives of Fig 4.3 and the Example 3 branch rules).
///
/// # Panics
///
/// Panics if the plan does not match the nest.
pub fn render_doacross(nest: &LoopNest, plan: &SyncPlan) -> String {
    assert_eq!(plan.n_stmts(), nest.n_stmts(), "plan does not match nest");
    let names = &INDEX_NAMES[..nest.depth().min(3)];
    let mut out = String::new();
    let total = nest.iter_count();
    let _ = writeln!(out, "doacross lpid = 0, {}", total.saturating_sub(1));
    let _ = writeln!(out, "  load_index(lpid);");
    let pad = "  ";

    let emit_stmt = |out: &mut String, s: &Stmt, extra_pad: &str| {
        for w in plan.waits_before(s.id) {
            let _ = writeln!(out, "{pad}{extra_pad}wait_PC({}, {});", w.dist, w.step);
        }
        let args = names.join(",");
        let _ = writeln!(out, "{pad}{extra_pad}{}({args});", s.label);
        for op in plan.ops_after(s.id) {
            let _ = writeln!(out, "{pad}{extra_pad}{}", pc_op_line(op));
        }
    };

    let mut branch_ix = 0usize;
    for item in &nest.body {
        match item {
            BodyItem::Stmt(s) => emit_stmt(&mut out, s, ""),
            BodyItem::Branch(b) => {
                for (i, arm) in b.arms.iter().enumerate() {
                    let kw = if i == 0 { "if (...) {" } else { "} else {" };
                    let _ = writeln!(out, "{pad}{kw}");
                    for op in plan.arm_entry(branch_ix, i) {
                        let _ = writeln!(out, "{pad}  {}", pc_op_line(op));
                    }
                    for s in arm {
                        emit_stmt(&mut out, s, "  ");
                    }
                }
                let _ = writeln!(out, "{pad}}}");
                branch_ix += 1;
            }
        }
    }
    out.push_str("end doacross\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::covering::reduce;
    use crate::space::IterSpace;
    use crate::workpatterns::{example3_branches, fig21_loop};

    #[test]
    fn fig21_source_listing() {
        let nest = fig21_loop(100);
        let text = render_loop(&nest);
        assert!(text.starts_with("DO I = 1, 100"));
        assert!(text.contains("S1: A0[I+3] = ...  @4"));
        assert!(text.contains("S5: A12[I] = A0[I-1]  @4"));
        assert!(text.trim_end().ends_with("END DO"));
    }

    #[test]
    fn fig21_doacross_matches_fig42b() {
        let nest = fig21_loop(100);
        let space = IterSpace::of(&nest);
        let graph = reduce(&nest, &analyze(&nest)).linearized(&space);
        let plan = SyncPlan::build(&nest, &graph);
        let text = render_doacross(&nest, &plan);
        // The op sequence of Fig 4.2.b (0-based pids, improved primitives).
        let expect = [
            "doacross lpid = 0, 99",
            "load_index(lpid);",
            "S1(I);",
            "mark_PC(1);",
            "wait_PC(2, 1);",
            "S2(I);",
            "mark_PC(2);",
            "wait_PC(1, 1);",
            "S3(I);",
            "mark_PC(3);",
            "wait_PC(1, 2);",
            "wait_PC(2, 3);",
            "S4(I);",
            "transfer_PC();",
            "wait_PC(1, 4);",
            "S5(I);",
            "end doacross",
        ];
        let lines: Vec<&str> = text.lines().map(str::trim).collect();
        assert_eq!(lines, expect);
    }

    #[test]
    fn branch_listing_shows_compensating_ops() {
        let nest = example3_branches(50, 2);
        let space = IterSpace::of(&nest);
        let graph = reduce(&nest, &analyze(&nest)).linearized(&space);
        let plan = SyncPlan::build(&nest, &graph);
        let text = render_doacross(&nest, &plan);
        assert!(text.contains("if (...) {"));
        assert!(text.contains("} else {"));
        // The sourceless arm gets the compensating transfer at entry.
        let arm0 = text.split("if (...) {").nth(1).unwrap().split("} else {").next().unwrap();
        assert!(arm0.contains("transfer_PC();"), "arm 0 must compensate:\n{text}");
    }

    #[test]
    fn nested_loop_renders_two_levels() {
        let nest = crate::workpatterns::example2_nested(4, 6, 1);
        let text = render_loop(&nest);
        assert!(text.contains("DO I = 1, 4"));
        assert!(text.contains("DO J = 1, 6"));
        assert!(text.contains("A0[I,J]"));
        assert!(text.contains("A1[I-1,J-1]"));
    }
}

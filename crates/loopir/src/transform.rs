//! Loop transformations that trade synchronization for granularity.
//!
//! The paper reduces synchronization by *grouping* `G` inner iterations
//! between `wait_PC`/`mark_PC` pairs (Fig 5.1.b: "the amount of
//! synchronization can be reduced significantly due to the increase of
//! granularity"). The compiler-side equivalent is **loop unrolling**:
//! replicate the body `u` times, re-analyze, and synchronize the unrolled
//! loop — distances shrink by roughly `1/u`, and each `wait`/`mark` pair
//! now covers `u` original iterations.

use crate::ir::{ArrayRef, BodyItem, LinExpr, LoopDim, LoopNest, Stmt, StmtId};

/// Unrolls a **singly-nested, branch-free** loop by `factor`.
///
/// Iteration `i'` of the result executes original iterations
/// `lower + (i' - lower)*factor + k` for `k = 0..factor`; subscripts are
/// rewritten accordingly (`a*I + b` becomes `a*factor*I' + b + a*k +
/// a*(1-factor)*lower`). Statement ids are renumbered in copy order, with
/// labels suffixed `@k`.
///
/// # Panics
///
/// Panics if `factor == 0`, the nest is deeper than one level, contains
/// branches, or its iteration count is not divisible by `factor` (an
/// epilogue loop is out of scope for this IR).
pub fn unroll(nest: &LoopNest, factor: u32) -> LoopNest {
    assert!(factor >= 1, "unroll factor must be positive");
    assert_eq!(nest.depth(), 1, "unroll expects a singly-nested loop");
    assert!(
        nest.body.iter().all(|i| matches!(i, BodyItem::Stmt(_))),
        "unroll expects a branch-free body"
    );
    let dim = nest.dims[0];
    let count = dim.count();
    assert!(
        count.is_multiple_of(u64::from(factor)),
        "iteration count {count} not divisible by unroll factor {factor}"
    );
    if factor == 1 {
        return nest.clone();
    }

    let f = i64::from(factor);
    let new_upper = dim.lower + (count / u64::from(factor)) as i64 - 1;
    let mut body = Vec::new();
    let mut next_id = 0usize;
    for k in 0..f {
        for item in &nest.body {
            let BodyItem::Stmt(s) = item else { unreachable!("checked branch-free") };
            let refs = s
                .refs
                .iter()
                .map(|r| ArrayRef {
                    array: r.array,
                    kind: r.kind,
                    subscript: r
                        .subscript
                        .iter()
                        .map(|e| {
                            let a = e.coef(0);
                            LinExpr::new(vec![a * f], e.offset + a * k + a * (1 - f) * dim.lower)
                        })
                        .collect(),
                })
                .collect();
            body.push(BodyItem::Stmt(Stmt {
                id: StmtId(next_id),
                label: format!("{}@{k}", s.label),
                cost: s.cost,
                refs,
            }));
            next_id += 1;
        }
    }
    LoopNest { dims: vec![LoopDim::new(dim.lower, new_upper)], body }
}

/// Convenience: `true` when the nest can be unrolled by `factor` (the
/// preconditions of [`unroll`] hold).
pub fn can_unroll(nest: &LoopNest, factor: u32) -> bool {
    factor >= 1
        && nest.depth() == 1
        && nest.body.iter().all(|i| matches!(i, BodyItem::Stmt(_)))
        && nest.iter_count().is_multiple_of(u64::from(factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::covering::reduce;
    use crate::exec::run_sequential;
    use crate::plan::SyncPlan;
    use crate::space::IterSpace;
    use crate::workpatterns::fig21_loop;

    #[test]
    fn unroll_preserves_semantics() {
        // The oracle result of the unrolled loop must equal the original
        // (same statement values requires matching (stmt, iter) hashing —
        // instead compare per-element values of the SHARED array which
        // depend only on access order... they do depend on stmt ids, so
        // compare structurally: same elements written).
        let nest = fig21_loop(24);
        for factor in [1u32, 2, 3, 4, 6] {
            let un = unroll(&nest, factor);
            assert_eq!(un.iter_count(), 24 / u64::from(factor));
            assert_eq!(un.n_stmts(), 5 * factor as usize);
            // Same set of elements is touched.
            let touched = |n: &LoopNest| {
                let mut v: Vec<(usize, Vec<i64>)> = Vec::new();
                let space = IterSpace::of(n);
                for pid in 0..space.count() {
                    let ix = space.indices(pid);
                    for s in n.executed_stmts(pid) {
                        for r in &s.refs {
                            v.push((r.array.0, r.element(&ix)));
                        }
                    }
                }
                v.sort();
                v.dedup();
                v
            };
            assert_eq!(touched(&un), touched(&nest), "factor {factor}");
        }
    }

    #[test]
    fn unroll_accesses_in_original_order_per_element() {
        // The unrolled loop's sequential execution must perform the same
        // per-element access sequence (kinds in order) as the original.
        let nest = fig21_loop(12);
        let un = unroll(&nest, 3);
        let seq = |n: &LoopNest| {
            let mut m: std::collections::HashMap<(usize, Vec<i64>), Vec<bool>> =
                std::collections::HashMap::new();
            let space = IterSpace::of(n);
            for pid in 0..space.count() {
                let ix = space.indices(pid);
                for s in n.executed_stmts(pid) {
                    for r in s.reads().chain(s.writes()) {
                        m.entry((r.array.0, r.element(&ix))).or_default().push(r.kind.is_write());
                    }
                }
            }
            m
        };
        assert_eq!(seq(&nest), seq(&un));
    }

    #[test]
    fn unrolling_cuts_sync_steps_per_original_iteration() {
        let nest = fig21_loop(48);
        let space = IterSpace::of(&nest);
        let plan1 = SyncPlan::build(&nest, &reduce(&nest, &analyze(&nest)).linearized(&space));
        let un = unroll(&nest, 4);
        let space_u = IterSpace::of(&un);
        let plan4 = SyncPlan::build(&un, &reduce(&un, &analyze(&un)).linearized(&space_u));
        // Total PC updates across the whole loop: steps * iterations.
        let ops1 = u64::from(plan1.n_steps()) * space.count();
        let ops4 = u64::from(plan4.n_steps()) * space_u.count();
        assert!(ops4 < ops1, "unrolling must cut total sync ops: {ops1} -> {ops4}");
    }

    #[test]
    fn unrolled_loop_still_runs_correctly() {
        let nest = fig21_loop(24);
        let un = unroll(&nest, 4);
        // The oracle runs the unrolled loop fine (values differ from the
        // original because statement identities differ, but the unrolled
        // loop is self-consistent: parallel == sequential is checked in
        // the cross-crate tests; here assert the store is populated).
        let store = run_sequential(&un);
        assert!(store.written_len() > 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_factor_rejected() {
        let _ = unroll(&fig21_loop(10), 3);
    }

    #[test]
    #[should_panic(expected = "singly-nested")]
    fn nested_rejected() {
        let _ = unroll(&crate::workpatterns::example2_nested(4, 4, 1), 2);
    }

    #[test]
    fn can_unroll_predicate() {
        assert!(can_unroll(&fig21_loop(12), 3));
        assert!(!can_unroll(&fig21_loop(10), 3));
        assert!(!can_unroll(&crate::workpatterns::example2_nested(4, 4, 1), 2));
    }
}

//! The loop intermediate representation.
//!
//! A [`LoopNest`] models a (possibly nested) Fortran-style `DO` loop whose
//! body is a sequence of statements and (single-level) conditional branches.
//! Each statement carries a set of [`ArrayRef`]s with subscripts that are
//! affine in the loop indices — the program model assumed throughout
//! Su & Yew (ISCA 1989).
//!
//! The IR deliberately has no concrete arithmetic: a statement's "value" is
//! defined by the deterministic mixing semantics in [`crate::exec`], which
//! is order-sensitive and therefore a perfect oracle for checking that a
//! parallel execution preserved sequential semantics.

use std::fmt;

/// Identifies an array within one [`LoopNest`].
///
/// Plain index newtype; arrays are declared implicitly by being referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Identifies a statement by its flattened textual position in the body.
///
/// Statements inside branch arms are numbered in arm order, so `StmtId`
/// ordering is consistent with textual ordering of the source program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub usize);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// Identifies a branch (an `IF`/`ELSE` region) within one [`LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub usize);

/// Whether an [`ArrayRef`] reads or writes its element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The statement fetches the element.
    Read,
    /// The statement stores to the element.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// An affine expression `coefs · indices + offset` over the loop indices.
///
/// `coefs[k]` multiplies the index of loop dimension `k` (outermost first).
/// Dimensions beyond `coefs.len()` have coefficient zero.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Per-dimension coefficients, outermost loop first.
    pub coefs: Vec<i64>,
    /// Constant offset.
    pub offset: i64,
}

impl LinExpr {
    /// Creates `coefs · indices + offset`.
    pub fn new(coefs: Vec<i64>, offset: i64) -> Self {
        Self { coefs, offset }
    }

    /// The expression `i_dim + offset` (unit coefficient on one dimension).
    pub fn index(dim: usize, offset: i64) -> Self {
        let mut coefs = vec![0; dim + 1];
        coefs[dim] = 1;
        Self { coefs, offset }
    }

    /// A constant subscript.
    pub fn constant(offset: i64) -> Self {
        Self { coefs: Vec::new(), offset }
    }

    /// Coefficient of dimension `dim` (zero if absent).
    pub fn coef(&self, dim: usize) -> i64 {
        self.coefs.get(dim).copied().unwrap_or(0)
    }

    /// Evaluates the expression at a concrete index vector.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is shorter than the number of non-zero
    /// coefficient positions used by this expression.
    pub fn eval(&self, indices: &[i64]) -> i64 {
        let mut v = self.offset;
        for (k, &c) in self.coefs.iter().enumerate() {
            if c != 0 {
                v += c * indices[k];
            }
        }
        v
    }

    /// Returns coefficients padded/truncated to exactly `depth` entries.
    pub fn coefs_at_depth(&self, depth: usize) -> Vec<i64> {
        (0..depth).map(|k| self.coef(k)).collect()
    }
}

/// One array access `kind A[subscript...]` inside a statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayRef {
    /// The accessed array.
    pub array: ArrayId,
    /// Read or write.
    pub kind: AccessKind,
    /// One affine expression per array dimension.
    pub subscript: Vec<LinExpr>,
}

impl ArrayRef {
    /// Creates a reference with the given subscripts.
    pub fn new(array: ArrayId, kind: AccessKind, subscript: Vec<LinExpr>) -> Self {
        Self { array, kind, subscript }
    }

    /// Convenience: 1-D reference `A[i_0 + offset]` on loop dimension 0.
    pub fn simple(array: ArrayId, kind: AccessKind, offset: i64) -> Self {
        Self::new(array, kind, vec![LinExpr::index(0, offset)])
    }

    /// Evaluates all subscripts at a concrete index vector.
    pub fn element(&self, indices: &[i64]) -> Vec<i64> {
        self.subscript.iter().map(|e| e.eval(indices)).collect()
    }
}

/// An executable statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Flattened textual position (assigned by [`LoopNestBuilder`]).
    pub id: StmtId,
    /// Human-readable label, e.g. `"S1"`.
    pub label: String,
    /// Abstract execution cost in machine cycles (simulator compute time).
    pub cost: u32,
    /// Array accesses performed by the statement.
    pub refs: Vec<ArrayRef>,
}

impl Stmt {
    /// Iterates over write references.
    pub fn writes(&self) -> impl Iterator<Item = &ArrayRef> {
        self.refs.iter().filter(|r| r.kind.is_write())
    }

    /// Iterates over read references.
    pub fn reads(&self) -> impl Iterator<Item = &ArrayRef> {
        self.refs.iter().filter(|r| !r.kind.is_write())
    }
}

/// A single-level conditional region: exactly one arm executes per iteration.
///
/// The arm taken is a deterministic pseudo-random function of the branch id
/// and the iteration index (see [`Branch::arm_taken`]), so every executor
/// (sequential oracle, simulator, real threads) agrees on control flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// Branch identity within the nest.
    pub id: BranchId,
    /// The alternative arms; each arm is a statement sequence.
    pub arms: Vec<Vec<Stmt>>,
}

impl Branch {
    /// The arm executed at linear iteration `pid` (deterministic hash).
    pub fn arm_taken(&self, pid: u64) -> usize {
        debug_assert!(!self.arms.is_empty());
        (crate::exec::mix2(0x6272_616e_6368_0000 ^ self.id.0 as u64, pid) % self.arms.len() as u64)
            as usize
    }

    /// All statements of all arms, in textual order.
    pub fn stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.arms.iter().flatten()
    }
}

/// One element of a loop body: a plain statement or a branch region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyItem {
    /// An unconditional statement.
    Stmt(Stmt),
    /// A conditional region.
    Branch(Branch),
}

impl BodyItem {
    /// All statements contained in this item.
    pub fn stmts(&self) -> Box<dyn Iterator<Item = &Stmt> + '_> {
        match self {
            BodyItem::Stmt(s) => Box::new(std::iter::once(s)),
            BodyItem::Branch(b) => Box::new(b.stmts()),
        }
    }
}

/// Inclusive bounds of one loop dimension, `DO i = lower, upper`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopDim {
    /// First index value.
    pub lower: i64,
    /// Last index value (inclusive, Fortran style).
    pub upper: i64,
}

impl LoopDim {
    /// Creates a dimension; `upper < lower` yields an empty dimension.
    pub fn new(lower: i64, upper: i64) -> Self {
        Self { lower, upper }
    }

    /// Number of iterations of this dimension.
    pub fn count(&self) -> u64 {
        if self.upper < self.lower {
            0
        } else {
            (self.upper - self.lower + 1) as u64
        }
    }
}

/// A (possibly nested) loop with an attached body.
///
/// `dims[0]` is the outermost loop. All statements live in the innermost
/// body (perfect nesting), matching the loops studied in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    /// Loop dimensions, outermost first. Never empty.
    pub dims: Vec<LoopDim>,
    /// The loop body.
    pub body: Vec<BodyItem>,
}

impl LoopNest {
    /// Nesting depth.
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// Total number of iterations (product of dimension counts).
    pub fn iter_count(&self) -> u64 {
        self.dims.iter().map(LoopDim::count).product()
    }

    /// All statements in textual order.
    pub fn stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.body.iter().flat_map(|item| item.stmts())
    }

    /// Number of statements (including those inside branch arms).
    pub fn n_stmts(&self) -> usize {
        self.stmts().count()
    }

    /// Looks up a statement by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn stmt(&self, id: StmtId) -> &Stmt {
        self.stmts().find(|s| s.id == id).expect("statement id out of range")
    }

    /// The branch containing `id`, if any, with the arm index.
    pub fn branch_of(&self, id: StmtId) -> Option<(&Branch, usize)> {
        for item in &self.body {
            if let BodyItem::Branch(b) = item {
                for (arm_ix, arm) in b.arms.iter().enumerate() {
                    if arm.iter().any(|s| s.id == id) {
                        return Some((b, arm_ix));
                    }
                }
            }
        }
        None
    }

    /// `true` if two statements can execute in the same iteration
    /// (i.e. they are not in different arms of the same branch).
    pub fn coexecutable(&self, a: StmtId, b: StmtId) -> bool {
        match (self.branch_of(a), self.branch_of(b)) {
            (Some((ba, arm_a)), Some((bb, arm_b))) if ba.id == bb.id => arm_a == arm_b,
            _ => true,
        }
    }

    /// Statements executed at linear iteration `pid`, in textual order
    /// (resolves branch arms).
    pub fn executed_stmts(&self, pid: u64) -> Vec<&Stmt> {
        let mut out = Vec::new();
        for item in &self.body {
            match item {
                BodyItem::Stmt(s) => out.push(s),
                BodyItem::Branch(b) => out.extend(b.arms[b.arm_taken(pid)].iter()),
            }
        }
        out
    }

    /// Distinct arrays referenced by the nest, ascending.
    pub fn arrays(&self) -> Vec<ArrayId> {
        let mut ids: Vec<ArrayId> =
            self.stmts().flat_map(|s| s.refs.iter().map(|r| r.array)).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

/// Builder for [`LoopNest`] that assigns statement and branch ids.
///
/// # Examples
///
/// ```
/// use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
///
/// let a = ArrayId(0);
/// let nest = LoopNestBuilder::new(1, 100)
///     .stmt("S1", 4, vec![ArrayRef::simple(a, AccessKind::Write, 3)])
///     .stmt("S2", 4, vec![ArrayRef::simple(a, AccessKind::Read, 1)])
///     .build();
/// assert_eq!(nest.n_stmts(), 2);
/// assert_eq!(nest.iter_count(), 100);
/// ```
#[derive(Debug)]
pub struct LoopNestBuilder {
    dims: Vec<LoopDim>,
    body: Vec<BodyItem>,
    next_stmt: usize,
    next_branch: usize,
}

impl LoopNestBuilder {
    /// Starts a single loop `DO i = lower, upper`.
    pub fn new(lower: i64, upper: i64) -> Self {
        Self {
            dims: vec![LoopDim::new(lower, upper)],
            body: Vec::new(),
            next_stmt: 0,
            next_branch: 0,
        }
    }

    /// Adds an inner loop dimension (call once per extra nesting level,
    /// outermost to innermost).
    pub fn inner(mut self, lower: i64, upper: i64) -> Self {
        self.dims.push(LoopDim::new(lower, upper));
        self
    }

    /// Appends a statement with the given label, cost and references.
    pub fn stmt(mut self, label: &str, cost: u32, refs: Vec<ArrayRef>) -> Self {
        let id = StmtId(self.next_stmt);
        self.next_stmt += 1;
        self.body
            .push(BodyItem::Stmt(Stmt { id, label: label.to_string(), cost, refs }));
        self
    }

    /// Appends a branch region. Each arm is a list of `(label, cost, refs)`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[allow(clippy::type_complexity)]
    pub fn branch(mut self, arms: Vec<Vec<(&str, u32, Vec<ArrayRef>)>>) -> Self {
        assert!(!arms.is_empty(), "a branch needs at least one arm");
        let id = BranchId(self.next_branch);
        self.next_branch += 1;
        let arms = arms
            .into_iter()
            .map(|arm| {
                arm.into_iter()
                    .map(|(label, cost, refs)| {
                        let sid = StmtId(self.next_stmt);
                        self.next_stmt += 1;
                        Stmt { id: sid, label: label.to_string(), cost, refs }
                    })
                    .collect()
            })
            .collect();
        self.body.push(BodyItem::Branch(Branch { id, arms }));
        self
    }

    /// Finalizes the nest.
    ///
    /// # Panics
    ///
    /// Panics if the body is empty.
    pub fn build(self) -> LoopNest {
        assert!(!self.body.is_empty(), "loop body must not be empty");
        LoopNest { dims: self.dims, body: self.body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stmt_nest() -> LoopNest {
        let a = ArrayId(0);
        LoopNestBuilder::new(1, 10)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .stmt("S2", 1, vec![ArrayRef::simple(a, AccessKind::Read, -1)])
            .build()
    }

    #[test]
    fn lin_expr_eval() {
        let e = LinExpr::new(vec![2, -1], 5);
        assert_eq!(e.eval(&[3, 4]), 2 * 3 - 4 + 5);
        assert_eq!(LinExpr::constant(7).eval(&[100]), 7);
        assert_eq!(LinExpr::index(1, -2).eval(&[9, 6]), 4);
    }

    #[test]
    fn lin_expr_coef_padding() {
        let e = LinExpr::index(0, 3);
        assert_eq!(e.coef(0), 1);
        assert_eq!(e.coef(5), 0);
        assert_eq!(e.coefs_at_depth(3), vec![1, 0, 0]);
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let nest = two_stmt_nest();
        let ids: Vec<usize> = nest.stmts().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(nest.stmt(StmtId(1)).label, "S2");
    }

    #[test]
    fn builder_branch_ids_flattened() {
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 4)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .branch(vec![
                vec![("Sb", 1, vec![ArrayRef::simple(a, AccessKind::Read, -1)])],
                vec![("Sc", 1, vec![]), ("Sd", 1, vec![])],
            ])
            .stmt("S5", 1, vec![])
            .build();
        let ids: Vec<usize> = nest.stmts().map(|s| s.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(nest.branch_of(StmtId(1)).is_some());
        assert!(nest.branch_of(StmtId(0)).is_none());
        assert_eq!(nest.branch_of(StmtId(2)).unwrap().1, 1);
    }

    #[test]
    fn coexecutable_rules() {
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 4)
            .stmt("S1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .branch(vec![vec![("Sb", 1, vec![])], vec![("Sc", 1, vec![])]])
            .build();
        // top-level vs arm: coexecutable
        assert!(nest.coexecutable(StmtId(0), StmtId(1)));
        // different arms of the same branch: never in the same iteration
        assert!(!nest.coexecutable(StmtId(1), StmtId(2)));
        // a statement with itself
        assert!(nest.coexecutable(StmtId(1), StmtId(1)));
    }

    #[test]
    fn executed_stmts_resolves_arms() {
        let nest = LoopNestBuilder::new(1, 4)
            .branch(vec![vec![("Sb", 1, vec![])], vec![("Sc", 1, vec![])]])
            .build();
        for pid in 0..16 {
            let ex = nest.executed_stmts(pid);
            assert_eq!(ex.len(), 1);
            assert!(ex[0].label == "Sb" || ex[0].label == "Sc");
        }
        // deterministic
        let b = match &nest.body[0] {
            BodyItem::Branch(b) => b,
            _ => unreachable!(),
        };
        assert_eq!(b.arm_taken(3), b.arm_taken(3));
        // both arms occur over enough iterations
        let taken: Vec<usize> = (0..64).map(|p| b.arm_taken(p)).collect();
        assert!(taken.contains(&0) && taken.contains(&1));
    }

    #[test]
    fn iter_count_and_dims() {
        let nest = LoopNestBuilder::new(2, 10).inner(1, 5).stmt("S", 1, vec![]).build();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.iter_count(), 9 * 5);
        assert_eq!(LoopDim::new(5, 4).count(), 0);
    }

    #[test]
    fn arrays_deduplicated() {
        let nest = LoopNestBuilder::new(1, 2)
            .stmt(
                "S1",
                1,
                vec![
                    ArrayRef::simple(ArrayId(1), AccessKind::Write, 0),
                    ArrayRef::simple(ArrayId(0), AccessKind::Read, 0),
                    ArrayRef::simple(ArrayId(1), AccessKind::Read, 1),
                ],
            )
            .build();
        assert_eq!(nest.arrays(), vec![ArrayId(0), ArrayId(1)]);
    }

    #[test]
    #[should_panic(expected = "loop body must not be empty")]
    fn empty_body_panics() {
        let _ = LoopNestBuilder::new(1, 2).build();
    }
}

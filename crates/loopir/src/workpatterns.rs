//! The canonical loops from the paper, as IR builders.
//!
//! These are referenced throughout the workspace: Fig 2.1's running
//! example, Example 1's relaxation loop, Example 2's doubly-nested loop
//! and Example 3's branchy loop. Higher-level workload generators live in
//! the `datasync-workloads` crate; these are the bare IR shapes.

use crate::ir::{AccessKind, ArrayRef, LinExpr, LoopNest, LoopNestBuilder};

/// Array ids used by the pattern builders.
pub mod arrays {
    use crate::ir::ArrayId;
    /// The shared array `A` of Fig 2.1 / Example 1 / Example 2.
    pub const A: ArrayId = ArrayId(0);
    /// The shared array `B` of Example 2.
    pub const B: ArrayId = ArrayId(1);
    /// Per-statement result arrays (no cross-statement conflicts).
    pub const R2: ArrayId = ArrayId(10);
    /// See [`R2`].
    pub const R3: ArrayId = ArrayId(11);
    /// See [`R2`].
    pub const R5: ArrayId = ArrayId(12);
}

/// The loop of Fig 2.1.a with `DO I = 1, N`:
///
/// ```fortran
/// S1: A[I+3] = ...
/// S2: ...    = A[I+1]
/// S3: ...    = A[I+2]
/// S4: A[I]   = ...
/// S5: ...    = A[I-1]
/// ```
///
/// Reads additionally store into private result arrays so that the
/// order-sensitive execution oracle observes their values.
pub fn fig21_loop(n: i64) -> LoopNest {
    fig21_loop_with_cost(n, 4)
}

/// [`fig21_loop`] with an explicit per-statement cost (simulator cycles).
pub fn fig21_loop_with_cost(n: i64, cost: u32) -> LoopNest {
    use arrays::*;
    LoopNestBuilder::new(1, n)
        .stmt("S1", cost, vec![ArrayRef::simple(A, AccessKind::Write, 3)])
        .stmt(
            "S2",
            cost,
            vec![
                ArrayRef::simple(A, AccessKind::Read, 1),
                ArrayRef::simple(R2, AccessKind::Write, 0),
            ],
        )
        .stmt(
            "S3",
            cost,
            vec![
                ArrayRef::simple(A, AccessKind::Read, 2),
                ArrayRef::simple(R3, AccessKind::Write, 0),
            ],
        )
        .stmt("S4", cost, vec![ArrayRef::simple(A, AccessKind::Write, 0)])
        .stmt(
            "S5",
            cost,
            vec![
                ArrayRef::simple(A, AccessKind::Read, -1),
                ArrayRef::simple(R5, AccessKind::Write, 0),
            ],
        )
        .build()
}

/// Example 1's four-point relaxation `DO I = 2, N; DO J = 2, N`:
///
/// ```fortran
/// S1: A[I,J] = A[I-1,J] + A[I,J-1]
/// ```
pub fn example1_relaxation(n: i64, cost: u32) -> LoopNest {
    use arrays::A;
    LoopNestBuilder::new(2, n)
        .inner(2, n)
        .stmt(
            "S1",
            cost,
            vec![
                ArrayRef::new(
                    A,
                    AccessKind::Write,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                ),
                ArrayRef::new(
                    A,
                    AccessKind::Read,
                    vec![LinExpr::index(0, -1), LinExpr::index(1, 0)],
                ),
                ArrayRef::new(
                    A,
                    AccessKind::Read,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, -1)],
                ),
            ],
        )
        .build()
}

/// Example 2's doubly-nested loop `DO I = 1, N; DO J = 1, M`:
///
/// ```fortran
/// S1: A[I,J] = ...
/// S2: B[I,J] = A[I,J-1] ...
/// S3: ...    = B[I-1,J-1]
/// ```
pub fn example2_nested(n: i64, m: i64, cost: u32) -> LoopNest {
    use arrays::*;
    LoopNestBuilder::new(1, n)
        .inner(1, m)
        .stmt(
            "S1",
            cost,
            vec![ArrayRef::new(
                A,
                AccessKind::Write,
                vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
            )],
        )
        .stmt(
            "S2",
            cost,
            vec![
                ArrayRef::new(
                    B,
                    AccessKind::Write,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                ),
                ArrayRef::new(
                    A,
                    AccessKind::Read,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, -1)],
                ),
            ],
        )
        .stmt(
            "S3",
            cost,
            vec![
                ArrayRef::new(
                    B,
                    AccessKind::Read,
                    vec![LinExpr::index(0, -1), LinExpr::index(1, -1)],
                ),
                ArrayRef::new(
                    R3,
                    AccessKind::Write,
                    vec![LinExpr::index(0, 0), LinExpr::index(1, 0)],
                ),
            ],
        )
        .build()
}

/// Example 3's loop with a dependence source inside a branch:
/// statement `Sa` always writes `A[I+1]`; one arm additionally writes
/// `A[I+2]` (a second source), the other arm only reads. A trailing sink
/// reads both elements.
pub fn example3_branches(n: i64, cost: u32) -> LoopNest {
    use arrays::*;
    LoopNestBuilder::new(1, n)
        .stmt("Sa", cost, vec![ArrayRef::simple(A, AccessKind::Write, 1)])
        .branch(vec![
            vec![("Sb", cost, vec![ArrayRef::simple(R2, AccessKind::Write, 0)])],
            vec![
                ("Sc", cost, vec![ArrayRef::simple(R3, AccessKind::Write, 0)]),
                ("Sd", cost, vec![ArrayRef::simple(B, AccessKind::Write, 2)]),
            ],
        ])
        .stmt(
            "Se",
            cost,
            vec![
                ArrayRef::simple(A, AccessKind::Read, -1),
                ArrayRef::simple(B, AccessKind::Read, 0),
                ArrayRef::simple(R5, AccessKind::Write, 0),
            ],
        )
        .build()
}

/// A depth-3 nest exercising three-level linearization:
/// `DO I = 1, N; DO J = 1, M; DO K = 1, L`:
///
/// ```fortran
/// S1: A[I,J,K] = A[I,J,K-1] + B[I-1,J,K]
/// S2: B[I,J,K] = A[I,J-1,K]
/// ```
pub fn depth3_nest(n: i64, m: i64, l: i64, cost: u32) -> LoopNest {
    use arrays::*;
    let ix = |d: usize, off: i64| LinExpr::index(d, off);
    LoopNestBuilder::new(1, n)
        .inner(1, m)
        .inner(1, l)
        .stmt(
            "S1",
            cost,
            vec![
                ArrayRef::new(A, AccessKind::Write, vec![ix(0, 0), ix(1, 0), ix(2, 0)]),
                ArrayRef::new(A, AccessKind::Read, vec![ix(0, 0), ix(1, 0), ix(2, -1)]),
                ArrayRef::new(B, AccessKind::Read, vec![ix(0, -1), ix(1, 0), ix(2, 0)]),
            ],
        )
        .stmt(
            "S2",
            cost,
            vec![
                ArrayRef::new(B, AccessKind::Write, vec![ix(0, 0), ix(1, 0), ix(2, 0)]),
                ArrayRef::new(A, AccessKind::Read, vec![ix(0, 0), ix(1, -1), ix(2, 0)]),
            ],
        )
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::graph::Distance;

    #[test]
    fn fig21_has_five_statements() {
        let nest = fig21_loop(20);
        assert_eq!(nest.n_stmts(), 5);
        assert_eq!(nest.iter_count(), 20);
    }

    #[test]
    fn relaxation_has_unit_distance_vectors() {
        let nest = example1_relaxation(10, 2);
        let g = analyze(&nest);
        let dists: Vec<Distance> = g.deps().iter().map(|d| d.distance.clone()).collect();
        assert!(dists.contains(&Distance::Vector(vec![1, 0])));
        assert!(dists.contains(&Distance::Vector(vec![0, 1])));
        assert_eq!(g.deps().len(), 2);
    }

    #[test]
    fn example2_matches_paper_distances() {
        let nest = example2_nested(3, 5, 2);
        let g = analyze(&nest);
        let lin: Vec<i64> = g.carried().map(|d| d.linear_distance(&nest)).collect();
        // (0,1) -> 1 and (1,1) -> M+1 = 6.
        assert!(lin.contains(&1));
        assert!(lin.contains(&6));
    }

    #[test]
    fn depth3_linearizes() {
        let nest = depth3_nest(3, 4, 5, 2);
        assert_eq!(nest.depth(), 3);
        assert_eq!(nest.iter_count(), 60);
        let g = analyze(&nest);
        // (0,0,1) -> 1; (1,0,0) -> 20; (0,1,0) -> 5.
        let lin: Vec<i64> = g.carried().map(|d| d.linear_distance(&nest)).collect();
        assert!(lin.contains(&1));
        assert!(lin.contains(&20));
        assert!(lin.contains(&5));
    }

    #[test]
    fn example3_branch_source_dep() {
        let nest = example3_branches(30, 2);
        let g = analyze(&nest);
        // Sa (S1) writes A[I+1]; Se reads A[I-1]: flow distance 2.
        assert!(g.carried().any(|d| d.src.0 == 0 && d.linear_distance(&nest) == 2));
        // Sd writes B[I+2]; Se reads B[I]: flow distance 2 from inside arm.
        assert!(g.carried().any(|d| d.src.0 == 3 && d.linear_distance(&nest) == 2));
    }
}

//! Dependence graphs.
//!
//! Nodes are statements; arcs are data dependences annotated with their
//! kind (flow / anti / output) and distance. Distances are stored as
//! vectors over the nest dimensions and can be linearized onto process ids
//! with [`Dep::linear_distance`] (Example 2 of the paper).

use crate::ir::{LoopNest, StmtId};
use crate::space::IterSpace;
use std::fmt;

/// The three kinds of ordered data dependence (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write.
    Flow,
    /// Write-after-read.
    Anti,
    /// Write-after-write.
    Output,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        };
        f.write_str(s)
    }
}

/// A dependence distance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Distance {
    /// A constant distance vector over the nest dimensions
    /// (all-zero = loop independent).
    Vector(Vec<i64>),
    /// Conflicts occur at non-constant distances; the instances of the two
    /// statements must be totally ordered. Realized as a linear distance-1
    /// chain (conservative, always sound).
    SerialChain,
}

/// One dependence arc `src -> dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Statement at the tail (executes first).
    pub src: StmtId,
    /// Statement at the head (must wait).
    pub dst: StmtId,
    /// Flow, anti or output.
    pub kind: DepKind,
    /// The dependence distance.
    pub distance: Distance,
}

impl Dep {
    /// `true` if the dependence crosses iterations.
    pub fn is_carried(&self) -> bool {
        match &self.distance {
            Distance::Vector(v) => v.iter().any(|&x| x != 0),
            Distance::SerialChain => true,
        }
    }

    /// The linear (process-id) distance of the dependence within `nest`'s
    /// iteration space. `SerialChain` linearizes to 1.
    pub fn linear_distance(&self, nest: &LoopNest) -> i64 {
        self.linear_distance_in(&IterSpace::of(nest))
    }

    /// As [`Dep::linear_distance`], over an explicit space.
    pub fn linear_distance_in(&self, space: &IterSpace) -> i64 {
        match &self.distance {
            Distance::Vector(v) => space.linear_distance(v),
            Distance::SerialChain => 1,
        }
    }

    /// The linear distance of an arc in an already-linearized graph
    /// (see [`DepGraph::linearized`]).
    ///
    /// # Panics
    ///
    /// Panics if the distance is a vector of more than one dimension.
    pub fn linear(&self) -> i64 {
        match &self.distance {
            Distance::Vector(v) => {
                assert_eq!(v.len(), 1, "arc {self} is not linearized");
                v[0]
            }
            Distance::SerialChain => 1,
        }
    }
}

impl fmt::Display for Dep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.distance {
            Distance::Vector(v) if v.len() == 1 => {
                write!(f, "{} -> {} ({}, d={})", self.src, self.dst, self.kind, v[0])
            }
            Distance::Vector(v) => {
                write!(f, "{} -> {} ({}, d={:?})", self.src, self.dst, self.kind, v)
            }
            Distance::SerialChain => {
                write!(f, "{} -> {} ({}, serial-chain)", self.src, self.dst, self.kind)
            }
        }
    }
}

/// A dependence graph over the statements of one loop nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepGraph {
    n_stmts: usize,
    deps: Vec<Dep>,
}

impl DepGraph {
    /// Creates a graph from arcs.
    ///
    /// # Panics
    ///
    /// Panics if any arc references a statement `>= n_stmts`.
    pub fn new(n_stmts: usize, deps: Vec<Dep>) -> Self {
        for d in &deps {
            assert!(
                d.src.0 < n_stmts && d.dst.0 < n_stmts,
                "dependence {d} references a statement outside 0..{n_stmts}"
            );
        }
        Self { n_stmts, deps }
    }

    /// Number of statements (nodes).
    pub fn n_stmts(&self) -> usize {
        self.n_stmts
    }

    /// All dependence arcs.
    pub fn deps(&self) -> &[Dep] {
        &self.deps
    }

    /// Loop-carried dependences (distance lexicographically positive or
    /// serial chains).
    pub fn carried(&self) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(|d| d.is_carried())
    }

    /// Loop-independent dependences (all-zero distance; enforced by the
    /// sequential statement order within one process).
    pub fn independent(&self) -> impl Iterator<Item = &Dep> {
        self.deps.iter().filter(|d| !d.is_carried())
    }

    /// Statement ids that are the source of at least one carried dependence,
    /// ascending (the statements needing `mark_PC`/`Advance`).
    pub fn carried_sources(&self) -> Vec<StmtId> {
        let mut v: Vec<StmtId> = self.carried().map(|d| d.src).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Statement ids that are the sink of at least one carried dependence.
    pub fn carried_sinks(&self) -> Vec<StmtId> {
        let mut v: Vec<StmtId> = self.carried().map(|d| d.dst).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Returns a graph with every distance linearized onto the given
    /// iteration space: each arc's distance becomes a 1-vector holding the
    /// linear pid distance. Serial chains stay serial chains.
    ///
    /// This is the implicit-coalescing step of Example 2 — including the
    /// conservatism the paper describes: the linear arc is enforced at
    /// *every* pid, which adds the dashed boundary dependences.
    pub fn linearized(&self, space: &IterSpace) -> DepGraph {
        let deps = self
            .deps
            .iter()
            .map(|d| Dep {
                src: d.src,
                dst: d.dst,
                kind: d.kind,
                distance: match &d.distance {
                    Distance::Vector(v) => Distance::Vector(vec![space.linear_distance(v)]),
                    Distance::SerialChain => Distance::SerialChain,
                },
            })
            .collect();
        DepGraph::new(self.n_stmts, deps)
    }

    /// Strongly connected components of the statement graph (all arcs,
    /// carried and loop-independent), returned in **topological order**
    /// of the condensation — the phase order loop distribution
    /// (Allen–Kennedy) uses. Single statements with a self arc form their
    /// own (recurrent) component.
    pub fn sccs(&self) -> Vec<Vec<StmtId>> {
        // Tarjan's algorithm, iterative.
        let n = self.n_stmts;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for d in &self.deps {
            if d.src != d.dst {
                adj[d.src.0].push(d.dst.0);
            }
        }
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut comps: Vec<Vec<StmtId>> = Vec::new();

        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // Explicit DFS stack of (node, next child position).
            let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if index[w] == usize::MAX {
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack");
                            on_stack[w] = false;
                            comp.push(StmtId(w));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                    dfs.pop();
                    if let Some(&mut (u, _)) = dfs.last_mut() {
                        low[u] = low[u].min(low[v]);
                    }
                }
            }
        }
        // Tarjan emits components in reverse topological order.
        comps.reverse();
        comps
    }

    /// `true` if the component `comp` contains a recurrence: a carried
    /// arc between (or within) its statements.
    pub fn component_recurrent(&self, comp: &[StmtId]) -> bool {
        self.carried().any(|d| comp.contains(&d.src) && comp.contains(&d.dst))
    }

    /// Renders the graph in Graphviz `dot` syntax (for documentation and
    /// debugging).
    pub fn to_dot(&self, nest: &LoopNest) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph deps {\n  rankdir=TB;\n");
        for s in nest.stmts() {
            let _ = writeln!(out, "  s{} [label=\"{}\"];", s.id.0, s.label);
        }
        for d in &self.deps {
            let style = match d.kind {
                DepKind::Flow => "solid",
                DepKind::Anti => "dashed",
                DepKind::Output => "dotted",
            };
            let label = match &d.distance {
                Distance::Vector(v) if v.len() == 1 => format!("{}", v[0]),
                Distance::Vector(v) => format!("{v:?}"),
                Distance::SerialChain => "*".to_string(),
            };
            let _ =
                writeln!(out, "  s{} -> s{} [label=\"{label}\", style={style}];", d.src.0, d.dst.0);
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::LoopDim;

    fn dep(s: usize, t: usize, kind: DepKind, v: Vec<i64>) -> Dep {
        Dep { src: StmtId(s), dst: StmtId(t), kind, distance: Distance::Vector(v) }
    }

    #[test]
    fn carried_vs_independent() {
        let g = DepGraph::new(
            3,
            vec![
                dep(0, 1, DepKind::Flow, vec![0]),
                dep(1, 2, DepKind::Anti, vec![2]),
                Dep {
                    src: StmtId(2),
                    dst: StmtId(0),
                    kind: DepKind::Output,
                    distance: Distance::SerialChain,
                },
            ],
        );
        assert_eq!(g.carried().count(), 2);
        assert_eq!(g.independent().count(), 1);
        assert_eq!(g.carried_sources(), vec![StmtId(1), StmtId(2)]);
        assert_eq!(g.carried_sinks(), vec![StmtId(0), StmtId(2)]);
    }

    #[test]
    fn linearized_maps_vectors() {
        let space = IterSpace::new(vec![LoopDim::new(1, 3), LoopDim::new(1, 5)]);
        let g = DepGraph::new(2, vec![dep(0, 1, DepKind::Flow, vec![1, 1])]);
        let lin = g.linearized(&space);
        assert_eq!(lin.deps()[0].distance, Distance::Vector(vec![6]));
    }

    #[test]
    fn serial_chain_linear_distance_is_one() {
        let space = IterSpace::new(vec![LoopDim::new(1, 10)]);
        let d = Dep {
            src: StmtId(0),
            dst: StmtId(0),
            kind: DepKind::Output,
            distance: Distance::SerialChain,
        };
        assert_eq!(d.linear_distance_in(&space), 1);
        assert!(d.is_carried());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_arc_panics() {
        let _ = DepGraph::new(1, vec![dep(0, 1, DepKind::Flow, vec![1])]);
    }

    #[test]
    fn sccs_of_fig21_are_singletons_in_topo_order() {
        let nest = crate::workpatterns::fig21_loop(10);
        let g = crate::analysis::analyze(&nest);
        let comps = g.sccs();
        assert_eq!(comps.len(), 5, "no cycles in Fig 2.1");
        // Topological: S1 before S2/S3, S2/S3 before S4, S4 before S5.
        let pos = |s: usize| comps.iter().position(|c| c.contains(&StmtId(s))).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2));
        assert!(pos(1) < pos(3) && pos(2) < pos(3));
        assert!(pos(3) < pos(4));
        assert!(!g.component_recurrent(&comps[pos(0)]));
    }

    #[test]
    fn scc_groups_mutual_recurrence() {
        // S0 -> S1 (flow, 1) and S1 -> S0 (anti, 1): one recurrent SCC.
        let g = DepGraph::new(
            3,
            vec![
                dep(0, 1, DepKind::Flow, vec![1]),
                dep(1, 0, DepKind::Anti, vec![1]),
                dep(1, 2, DepKind::Flow, vec![0]),
            ],
        );
        let comps = g.sccs();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![StmtId(0), StmtId(1)]);
        assert_eq!(comps[1], vec![StmtId(2)]);
        assert!(g.component_recurrent(&comps[0]));
        assert!(!g.component_recurrent(&comps[1]));
    }

    #[test]
    fn self_loop_is_recurrent_singleton() {
        let g = DepGraph::new(1, vec![dep(0, 0, DepKind::Output, vec![1])]);
        let comps = g.sccs();
        assert_eq!(comps, vec![vec![StmtId(0)]]);
        assert!(g.component_recurrent(&comps[0]));
    }

    #[test]
    fn dot_output_mentions_every_arc() {
        let nest = crate::workpatterns::fig21_loop(10);
        let g = crate::analysis::analyze(&nest);
        let dot = g.to_dot(&nest);
        assert!(dot.contains("digraph"));
        assert_eq!(dot.matches(" -> ").count(), g.deps().len());
    }
}

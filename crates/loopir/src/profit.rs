//! Doacross profitability analysis.
//!
//! The paper (Section 1): "depending on the amount of time a processor
//! has to wait for another processor to satisfy the data dependence, it
//! may not be desirable to run a loop concurrently. A compiler is
//! required to perform thorough data dependence analysis on the loop to
//! determine which loop should be a Doacross loop."
//!
//! This module implements that decision with the classic Doacross *delay*
//! model (Cytron 1986, the paper's reference \[8\]): if consecutive
//! iterations start `D` cycles apart, a carried dependence `u -> v` with
//! distance `d` is satisfied when
//! `i*D + end(u) <= (i+d)*D + start(v)`, i.e.
//! `D >= (end(u) - start(v)) / d`. The loop's delay is the maximum over
//! all carried dependences (clamped at zero); `D = 0` means perfect
//! pipelining, `D >= T` (the iteration time) means the loop is
//! effectively serial.

use crate::graph::DepGraph;
use crate::ir::{BodyItem, LoopNest};

/// Per-statement start offsets within one iteration, in cycles.
///
/// Statements in different arms of a branch are laid out in parallel
/// (each arm starts at the branch entry); the branch contributes its
/// longest arm to the iteration time — a conservative profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationProfile {
    starts: Vec<u64>,
    ends: Vec<u64>,
    iteration_time: u64,
}

impl IterationProfile {
    /// Builds the profile of a nest's body.
    pub fn of(nest: &LoopNest) -> Self {
        let n = nest.n_stmts();
        let mut starts = vec![0u64; n];
        let mut ends = vec![0u64; n];
        let mut cum = 0u64;
        for item in &nest.body {
            match item {
                BodyItem::Stmt(s) => {
                    starts[s.id.0] = cum;
                    cum += u64::from(s.cost);
                    ends[s.id.0] = cum;
                }
                BodyItem::Branch(b) => {
                    let mut longest = 0u64;
                    for arm in &b.arms {
                        let mut t = cum;
                        for s in arm {
                            starts[s.id.0] = t;
                            t += u64::from(s.cost);
                            ends[s.id.0] = t;
                        }
                        longest = longest.max(t - cum);
                    }
                    cum += longest;
                }
            }
        }
        Self { starts, ends, iteration_time: cum }
    }

    /// Start offset of a statement.
    pub fn start(&self, s: crate::ir::StmtId) -> u64 {
        self.starts[s.0]
    }

    /// End offset of a statement.
    pub fn end(&self, s: crate::ir::StmtId) -> u64 {
        self.ends[s.0]
    }

    /// Compute time of one whole iteration.
    pub fn iteration_time(&self) -> u64 {
        self.iteration_time
    }
}

/// The compiler's Doacross decision for one loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoacrossDecision {
    /// Minimal start-to-start distance between consecutive iterations.
    pub delay: u64,
    /// Compute time of one iteration.
    pub iteration_time: u64,
    /// `true` when the loop has no carried dependences at all (Doall).
    pub doall: bool,
}

impl DoacrossDecision {
    /// Estimated makespan for `n` iterations on `p` processors:
    /// the larger of the pipeline critical path `(n-1)*delay + T` and the
    /// throughput bound `ceil(n/p) * T`.
    pub fn makespan(&self, n: u64, p: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let pipeline = (n - 1) * self.delay + self.iteration_time;
        let throughput = n.div_ceil(p.max(1)) * self.iteration_time;
        pipeline.max(throughput)
    }

    /// Estimated speedup over serial execution on `p` processors.
    pub fn speedup(&self, n: u64, p: u64) -> f64 {
        let serial = n * self.iteration_time;
        let par = self.makespan(n, p);
        if par == 0 {
            return 1.0;
        }
        serial as f64 / par as f64
    }

    /// Whether running the loop as a Doacross on `p` processors is worth
    /// it (estimated speedup above `threshold`, e.g. `1.5`).
    pub fn profitable(&self, n: u64, p: u64, threshold: f64) -> bool {
        self.speedup(n, p) > threshold
    }
}

/// Computes the Doacross decision from a nest and its **linearized**
/// dependence graph.
///
/// # Panics
///
/// Panics if the graph does not match the nest or holds non-linear
/// distances.
pub fn analyze_doacross(nest: &LoopNest, graph: &DepGraph) -> DoacrossDecision {
    assert_eq!(nest.n_stmts(), graph.n_stmts(), "graph does not match nest");
    let profile = IterationProfile::of(nest);
    let mut delay = 0u64;
    let mut carried = false;
    for d in graph.carried() {
        carried = true;
        let dist = d.linear() as u64;
        debug_assert!(dist > 0);
        let end_u = profile.end(d.src) as i64;
        let start_v = profile.start(d.dst) as i64;
        let need = (end_u - start_v).max(0) as u64;
        delay = delay.max(need.div_ceil(dist));
    }
    DoacrossDecision { delay, iteration_time: profile.iteration_time(), doall: !carried }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::covering::reduce;
    use crate::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder, StmtId};
    use crate::space::IterSpace;
    use crate::workpatterns::fig21_loop;

    fn decide(nest: &crate::ir::LoopNest) -> DoacrossDecision {
        let space = IterSpace::of(nest);
        let graph = reduce(nest, &analyze(nest)).linearized(&space);
        analyze_doacross(nest, &graph)
    }

    #[test]
    fn fig21_pipelines_perfectly() {
        // All carried dependences point "downhill" within the iteration
        // (the source ends no later than the sink starts, scaled by
        // distance), so the delay is zero: consecutive iterations can
        // start back to back — which is why the paper's Fig 4.2.b
        // transformation pays off.
        let nest = fig21_loop(100);
        let d = decide(&nest);
        assert_eq!(d.delay, 0);
        assert!(!d.doall);
        assert_eq!(d.iteration_time, 20);
        assert!(d.speedup(100, 4) > 3.5);
    }

    #[test]
    fn tight_recurrence_is_serial() {
        // S: A[I] = A[I-1] — the sink starts where the source starts;
        // delay = cost: no speedup regardless of processor count.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 50)
            .stmt(
                "S",
                10,
                vec![
                    ArrayRef::simple(a, AccessKind::Read, -1),
                    ArrayRef::simple(a, AccessKind::Write, 0),
                ],
            )
            .build();
        let d = decide(&nest);
        assert_eq!(d.delay, 10);
        assert_eq!(d.iteration_time, 10);
        assert!((d.speedup(50, 8) - 1.0).abs() < 1e-9);
        assert!(!d.profitable(50, 8, 1.5));
    }

    #[test]
    fn larger_distance_cuts_delay() {
        // A[I] = A[I-4]: four independent chains -> delay = cost / 4.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 64)
            .stmt(
                "S",
                12,
                vec![
                    ArrayRef::simple(a, AccessKind::Read, -4),
                    ArrayRef::simple(a, AccessKind::Write, 0),
                ],
            )
            .build();
        let d = decide(&nest);
        assert_eq!(d.delay, 3);
        assert!(d.speedup(64, 4) > 3.0);
        assert!(d.profitable(64, 4, 1.5));
    }

    #[test]
    fn doall_detected() {
        let nest = LoopNestBuilder::new(1, 10)
            .stmt("S", 5, vec![ArrayRef::simple(ArrayId(0), AccessKind::Write, 0)])
            .build();
        let d = decide(&nest);
        assert!(d.doall);
        assert_eq!(d.delay, 0);
        assert!((d.speedup(10, 5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_bound_caps_speedup() {
        let d = DoacrossDecision { delay: 0, iteration_time: 10, doall: true };
        // 100 iterations on 8 procs: ceil(100/8)=13 iterations serial.
        assert_eq!(d.makespan(100, 8), 130);
        assert_eq!(d.makespan(0, 8), 0);
    }

    #[test]
    fn profile_handles_branches() {
        let nest = LoopNestBuilder::new(1, 4)
            .stmt("S1", 3, vec![])
            .branch(vec![vec![("A", 5, vec![])], vec![("B1", 2, vec![]), ("B2", 2, vec![])]])
            .stmt("S4", 1, vec![])
            .build();
        let p = IterationProfile::of(&nest);
        assert_eq!(p.start(StmtId(0)), 0);
        assert_eq!(p.start(StmtId(1)), 3); // arm A
        assert_eq!(p.start(StmtId(2)), 3); // arm B starts at branch entry
        assert_eq!(p.start(StmtId(3)), 5);
        assert_eq!(p.start(StmtId(4)), 8); // after the longest arm (5)
        assert_eq!(p.iteration_time(), 9);
    }
}

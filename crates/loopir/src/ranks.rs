//! Access-rank computation for data-oriented (reference-based)
//! synchronization — shared by the simulator scheme and the real-thread
//! key table.
//!
//! For every element of a *synchronized* array (one with at least one
//! ordering need), the sequential access sequence is ranked: a write's
//! rank counts every access before it; consecutive reads form a group
//! and share the rank of the group's start, so independent fetches can
//! proceed in any order (Fig 3.1.a). At run time an access waits until
//! `key >= rank` and increments the key afterwards.

use crate::ir::{ArrayId, LoopNest, StmtId};
use crate::space::IterSpace;
use std::collections::{HashMap, HashSet};

/// The canonical intra-statement access order: reads in textual reference
/// order, then writes. Every executor of ranked accesses must follow it.
pub fn ordered_accesses(stmt: &crate::ir::Stmt) -> Vec<&crate::ir::ArrayRef> {
    stmt.reads().chain(stmt.writes()).collect()
}

/// `(pid, stmt, access position)` → `(array, element, rank)` for every
/// access, before filtering down to synchronized arrays.
type RawRanks = HashMap<(u64, StmtId, usize), (ArrayId, Vec<i64>, u64)>;

/// Ranks for one loop nest.
#[derive(Debug, Clone)]
pub struct AccessRanks {
    /// Rank per `(pid, stmt, position in ordered_accesses)`, present only
    /// for accesses to synchronized arrays.
    ranks: HashMap<(u64, StmtId, usize), u64>,
    /// Key index per synchronized element, densely assigned.
    key_of: HashMap<(ArrayId, Vec<i64>), usize>,
    /// Arrays that need ordering.
    synced: HashSet<ArrayId>,
}

#[derive(Debug, Default)]
struct ElementState {
    total: u64,
    group_start: u64,
    last_was_read: bool,
    writes: u64,
}

impl ElementState {
    fn rank(&mut self, is_write: bool) -> u64 {
        let rank = if is_write || !self.last_was_read { self.total } else { self.group_start };
        if is_write {
            self.last_was_read = false;
            self.writes += 1;
        } else {
            if !self.last_was_read {
                self.group_start = self.total;
            }
            self.last_was_read = true;
        }
        self.total += 1;
        rank
    }
}

impl AccessRanks {
    /// Computes ranks by walking the sequential access sequence.
    pub fn compute(nest: &LoopNest, space: &IterSpace) -> Self {
        let mut elems: HashMap<(ArrayId, Vec<i64>), ElementState> = HashMap::new();
        let mut raw: RawRanks = HashMap::new();
        for pid in 0..space.count() {
            let indices = space.indices(pid);
            for stmt in nest.executed_stmts(pid) {
                for (pos, r) in ordered_accesses(stmt).into_iter().enumerate() {
                    let element = r.element(&indices);
                    let st = elems.entry((r.array, element.clone())).or_default();
                    let rank = st.rank(r.kind.is_write());
                    raw.insert((pid, stmt.id, pos), (r.array, element, rank));
                }
            }
        }
        let synced: HashSet<ArrayId> = elems
            .iter()
            .filter(|(_, st)| st.total >= 2 && st.writes >= 1)
            .map(|((a, _), _)| *a)
            .collect();
        let mut key_of = HashMap::new();
        {
            let mut touched: Vec<&(ArrayId, Vec<i64>)> =
                elems.keys().filter(|(a, _)| synced.contains(a)).collect();
            touched.sort();
            for (i, k) in touched.into_iter().enumerate() {
                key_of.insert(k.clone(), i);
            }
        }
        let ranks = raw
            .into_iter()
            .filter(|(_, (a, _, _))| synced.contains(a))
            .map(|(k, (_, _, rank))| (k, rank))
            .collect();
        Self { ranks, key_of, synced }
    }

    /// `true` if the array needs key synchronization.
    pub fn is_synced(&self, array: ArrayId) -> bool {
        self.synced.contains(&array)
    }

    /// Rank of an access, if it is synchronized.
    pub fn rank(&self, pid: u64, stmt: StmtId, pos: usize) -> Option<u64> {
        self.ranks.get(&(pid, stmt, pos)).copied()
    }

    /// Key index of a synchronized element.
    pub fn key(&self, array: ArrayId, element: &[i64]) -> Option<usize> {
        self.key_of.get(&(array, element.to_vec())).copied()
    }

    /// Number of keys (= synchronized elements touched).
    pub fn n_keys(&self) -> usize {
        self.key_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workpatterns::fig21_loop;

    #[test]
    fn fig21_key_count_matches_elements() {
        let nest = fig21_loop(20);
        let space = IterSpace::of(&nest);
        let r = AccessRanks::compute(&nest, &space);
        // A touches elements 0..=23 -> 24 keys; result arrays unsynced.
        assert_eq!(r.n_keys(), 24);
        assert!(r.is_synced(ArrayId(0)));
        assert!(!r.is_synced(ArrayId(10)));
    }

    #[test]
    fn writes_count_everything_before_reads_share_group() {
        use crate::ir::{AccessKind, ArrayRef, LoopNestBuilder};
        // One element: W, R, R, W, R — ranks 0, 1, 1, 3, 4.
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 1)
            .stmt("W1", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .stmt("R1", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])
            .stmt("R2", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])
            .stmt("W2", 1, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .stmt("R3", 1, vec![ArrayRef::simple(a, AccessKind::Read, 0)])
            .build();
        let space = IterSpace::of(&nest);
        let r = AccessRanks::compute(&nest, &space);
        let rank = |s: usize| r.rank(0, StmtId(s), 0).unwrap();
        assert_eq!(rank(0), 0);
        assert_eq!(rank(1), 1);
        assert_eq!(rank(2), 1);
        assert_eq!(rank(3), 3);
        assert_eq!(rank(4), 4);
    }

    #[test]
    fn unsynced_accesses_have_no_rank() {
        let nest = fig21_loop(5);
        let space = IterSpace::of(&nest);
        let r = AccessRanks::compute(&nest, &space);
        // S2's write to R2 (pos 1 in reads-then-writes order) is unsynced.
        assert!(r.rank(0, StmtId(1), 1).is_none());
        // S2's read of A (pos 0) is synced.
        assert!(r.rank(0, StmtId(1), 0).is_some());
    }
}

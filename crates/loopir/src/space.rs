//! Iteration spaces and linearized process ids.
//!
//! A Doacross loop assigns each iteration to a *process*; for multiply
//! nested loops the paper coalesces the nest into a single sequence of
//! linearized process ids (`lpid`, Example 2). [`IterSpace`] is that
//! mapping: row-major over the nest dimensions, with `lpid` starting at 0.

use crate::ir::{LoopDim, LoopNest};

/// A row-major linearization of a loop nest's iteration space.
///
/// Linear pid 0 corresponds to all dimensions at their lower bounds; the
/// innermost dimension varies fastest — exactly the paper's
/// `lpid = (i-1)*M + j` mapping (shifted to 0-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterSpace {
    dims: Vec<LoopDim>,
}

impl IterSpace {
    /// Builds the space from explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<LoopDim>) -> Self {
        assert!(!dims.is_empty(), "iteration space needs at least one dimension");
        Self { dims }
    }

    /// The space of a loop nest.
    pub fn of(nest: &LoopNest) -> Self {
        Self::new(nest.dims.clone())
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[LoopDim] {
        &self.dims
    }

    /// Nesting depth.
    pub fn depth(&self) -> usize {
        self.dims.len()
    }

    /// Total number of iterations.
    pub fn count(&self) -> u64 {
        self.dims.iter().map(LoopDim::count).product()
    }

    /// Iteration count of the dimension strictly inside `dim`
    /// (the row-major stride of `dim`).
    pub fn stride(&self, dim: usize) -> u64 {
        self.dims[dim + 1..].iter().map(LoopDim::count).product()
    }

    /// Maps a linear pid to the index vector (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if `pid >= self.count()`.
    pub fn indices(&self, pid: u64) -> Vec<i64> {
        assert!(pid < self.count(), "pid {pid} out of range (count {})", self.count());
        let mut rem = pid;
        let mut out = vec![0; self.dims.len()];
        for (k, d) in self.dims.iter().enumerate().rev() {
            let c = d.count();
            out[k] = d.lower + (rem % c) as i64;
            rem /= c;
        }
        out
    }

    /// Maps an index vector back to the linear pid.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of its dimension's bounds.
    pub fn pid(&self, indices: &[i64]) -> u64 {
        assert_eq!(indices.len(), self.dims.len());
        let mut pid = 0u64;
        for (k, d) in self.dims.iter().enumerate() {
            let i = indices[k];
            assert!(
                i >= d.lower && i <= d.upper,
                "index {i} out of bounds [{}, {}] in dim {k}",
                d.lower,
                d.upper
            );
            pid = pid * d.count() + (i - d.lower) as u64;
        }
        pid
    }

    /// Converts a dependence *distance vector* to the linear pid distance.
    ///
    /// Per Example 2: in an `N x M` nest, the vector `(di, dj)` becomes
    /// `di*M + dj`. The result can be negative only for lexicographically
    /// negative vectors, which the analysis never produces for carried
    /// dependences.
    pub fn linear_distance(&self, distance: &[i64]) -> i64 {
        assert_eq!(distance.len(), self.dims.len());
        let mut d = 0i64;
        for (k, dim) in self.dims.iter().enumerate() {
            d = d * dim.count() as i64 + distance[k];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2d() -> IterSpace {
        // DO I = 1, 3; DO J = 1, 5  (the paper's Example 2 shape, M = 5)
        IterSpace::new(vec![LoopDim::new(1, 3), LoopDim::new(1, 5)])
    }

    #[test]
    fn roundtrip_pid_indices() {
        let s = space_2d();
        assert_eq!(s.count(), 15);
        for pid in 0..s.count() {
            let ix = s.indices(pid);
            assert_eq!(s.pid(&ix), pid);
        }
        assert_eq!(s.indices(0), vec![1, 1]);
        assert_eq!(s.indices(4), vec![1, 5]);
        assert_eq!(s.indices(5), vec![2, 1]);
        assert_eq!(s.indices(14), vec![3, 5]);
    }

    #[test]
    fn linear_distance_matches_paper_example2() {
        // dep on B[I-1, J-1]: distance (1, 1) -> M + 1 with M = 5.
        let s = space_2d();
        assert_eq!(s.linear_distance(&[1, 1]), 6);
        // dep on A[I, J-1]: distance (0, 1) -> 1.
        assert_eq!(s.linear_distance(&[0, 1]), 1);
        // lexicographically positive with negative inner component
        assert_eq!(s.linear_distance(&[1, -2]), 3);
    }

    #[test]
    fn stride_and_depth() {
        let s = space_2d();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.stride(0), 5);
        assert_eq!(s.stride(1), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pid_panics() {
        space_2d().indices(15);
    }

    #[test]
    fn single_dim_with_offset_lower() {
        let s = IterSpace::new(vec![LoopDim::new(2, 9)]);
        assert_eq!(s.count(), 8);
        assert_eq!(s.indices(0), vec![2]);
        assert_eq!(s.pid(&[9]), 7);
        assert_eq!(s.linear_distance(&[3]), 3);
    }
}

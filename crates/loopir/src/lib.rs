//! Loop IR, data-dependence analysis and synchronization placement for
//! Doacross loops.
//!
//! This crate is the compiler substrate of the reproduction of Su & Yew,
//! *On Data Synchronization for Multiprocessors* (ISCA 1989). The paper
//! assumes a parallelizing compiler that (a) finds the data dependences of
//! a loop, (b) removes covered (redundant) ones, and (c) inserts
//! synchronization primitives. This crate implements all three steps:
//!
//! * [`ir`] — the loop intermediate representation ([`ir::LoopNest`],
//!   statements, affine array references, branches);
//! * [`analysis`] — constant-distance dependence testing
//!   ([`analysis::analyze`]);
//! * [`graph`] — dependence graphs with distance vectors;
//! * [`covering`] — covered-dependence elimination ([`covering::reduce`]);
//! * [`space`] — linearized iteration spaces (Example 2's `lpid`);
//! * [`plan`] — process-oriented synchronization placement
//!   ([`plan::SyncPlan`], the Fig 4.2.b transformation);
//! * [`profit`] — the Doacross-profitability decision (delay model);
//! * [`render`] — Fortran-like listings of loops and their Doacross form;
//! * [`parse`] — a parser for that loop language (text file in, IR out);
//! * [`ranks`] — access-rank computation for data-oriented schemes;
//! * [`wavefront`] — the wavefront loop transformation of Fig 5.1.c;
//! * [`transform`] — loop unrolling (the compiler-side G-grouping of Fig 5.1.b);
//! * [`exec`] — an order-sensitive abstract execution semantics used as a
//!   correctness oracle by every executor in the workspace;
//! * [`workpatterns`] — the paper's example loops as IR builders.
//!
//! # Examples
//!
//! Reproduce the paper's running example end to end (Fig 2.1 → Fig 4.2.b):
//!
//! ```
//! use datasync_loopir::{analysis, covering, plan::SyncPlan, space::IterSpace,
//!                       workpatterns::fig21_loop};
//!
//! let nest = fig21_loop(100);
//! let graph = covering::reduce(&nest, &analysis::analyze(&nest));
//! let space = IterSpace::of(&nest);
//! let plan = SyncPlan::build(&nest, &graph.linearized(&space));
//! assert_eq!(plan.n_steps(), 4); // S1..S4 are carried sources
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod covering;
pub mod exec;
pub mod graph;
pub mod ir;
pub mod parse;
pub mod plan;
pub mod profit;
pub mod ranks;
pub mod render;
pub mod space;
pub mod transform;
pub mod wavefront;
pub mod workpatterns;

pub use analysis::analyze;
pub use covering::reduce;
pub use exec::{run_sequential, ArrayStore};
pub use graph::{Dep, DepGraph, DepKind, Distance};
pub use ir::{
    AccessKind, ArrayId, ArrayRef, LinExpr, LoopDim, LoopNest, LoopNestBuilder, Stmt, StmtId,
};
pub use plan::{IterOp, PcOp, SyncPlan, WaitSpec};
pub use profit::{analyze_doacross, DoacrossDecision};
pub use space::IterSpace;
pub use wavefront::{wavefront_schedule, WavefrontSchedule};

//! Property test: the dependence analysis is checked against brute-force
//! conflict enumeration over small loops.
//!
//! Ground truth: two statement instances conflict when they touch the
//! same array element and at least one writes it. The analysis is
//! **sound** if, for every conflicting ordered pair, the instance-level
//! order implied by the dependence graph (arcs expanded over iterations,
//! plus intra-iteration textual order) contains that pair in its
//! transitive closure.

use datasync_loopir::analysis::analyze;
use datasync_loopir::graph::Distance;
use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNest, LoopNestBuilder};
use datasync_loopir::space::IterSpace;
use proptest::prelude::*;

/// A statement instance: (pid, stmt).
type Inst = (u64, usize);

/// Builds the instance-level "must happen before" relation implied by the
/// dependence graph and intra-iteration order, as an adjacency list.
fn implied_order(nest: &LoopNest, space: &IterSpace) -> Vec<Vec<Inst>> {
    let graph = analyze(nest);
    let n_stmts = nest.n_stmts();
    let count = space.count();
    let idx = |(pid, s): Inst| (pid as usize) * n_stmts + s;
    let mut adj: Vec<Vec<Inst>> = vec![Vec::new(); count as usize * n_stmts];

    // Intra-iteration textual order between coexecutable statements.
    for pid in 0..count {
        let executed = nest.executed_stmts(pid);
        for w in executed.windows(2) {
            adj[idx((pid, w[0].id.0))].push((pid, w[1].id.0));
        }
    }
    // Dependence arcs, expanded per instance.
    for d in graph.deps() {
        match &d.distance {
            Distance::Vector(v) => {
                let dist = space.linear_distance(v);
                assert!(dist >= 0);
                for pid in 0..count.saturating_sub(dist as u64) {
                    adj[idx((pid, d.src.0))].push((pid + dist as u64, d.dst.0));
                }
            }
            Distance::SerialChain => {
                // Total order of all instances of src and dst.
                for pid in 0..count {
                    if d.src != d.dst {
                        adj[idx((pid, d.src.0))].push((pid, d.dst.0));
                    }
                    if pid + 1 < count {
                        adj[idx((pid, d.dst.0))].push((pid + 1, d.src.0));
                    }
                }
            }
        }
    }
    adj
}

/// BFS reachability in the implied order.
fn reaches(adj: &[Vec<Inst>], n_stmts: usize, from: Inst, to: Inst) -> bool {
    let idx = |(pid, s): Inst| (pid as usize) * n_stmts + s;
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::from([from]);
    seen[idx(from)] = true;
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            return true;
        }
        for &next in &adj[idx(cur)] {
            if !seen[idx(next)] {
                seen[idx(next)] = true;
                queue.push_back(next);
            }
        }
    }
    false
}

/// Enumerates every conflicting ordered instance pair by brute force.
fn brute_force_conflicts(nest: &LoopNest, space: &IterSpace) -> Vec<(Inst, Inst)> {
    // (sequential position, instance, element accesses)
    let mut accesses: Vec<(Inst, Vec<(ArrayId, Vec<i64>, bool)>)> = Vec::new();
    for pid in 0..space.count() {
        let indices = space.indices(pid);
        for stmt in nest.executed_stmts(pid) {
            let elems = stmt
                .refs
                .iter()
                .map(|r| (r.array, r.element(&indices), r.kind.is_write()))
                .collect();
            accesses.push(((pid, stmt.id.0), elems));
        }
    }
    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            let (a, ea) = &accesses[i];
            let (b, eb) = &accesses[j];
            if a.1 == b.1 && a.0 == b.0 {
                continue; // same instance
            }
            let conflict = ea.iter().any(|(arr1, el1, w1)| {
                eb.iter().any(|(arr2, el2, w2)| arr1 == arr2 && el1 == el2 && (*w1 || *w2))
            });
            if conflict {
                pairs.push((*a, *b)); // a executes first (sequential order)
            }
        }
    }
    pairs
}

/// Small random loops (depth 1 or 2) directly via proptest strategies.
fn small_nest() -> impl Strategy<Value = LoopNest> {
    let array_ref = (0..2usize, prop::bool::ANY, -2i64..=2)
        .prop_map(|(a, w, off)| {
            ArrayRef::simple(ArrayId(a), if w { AccessKind::Write } else { AccessKind::Read }, off)
        });
    let stmt_refs = prop::collection::vec(array_ref, 1..3);
    (2i64..=7, prop::collection::vec(stmt_refs, 1..4)).prop_map(|(n, stmts)| {
        let mut b = LoopNestBuilder::new(1, n);
        for (i, refs) in stmts.into_iter().enumerate() {
            b = b.stmt(&format!("S{i}"), 1, refs);
        }
        b.build()
    })
}

/// Depth-2 random loops with per-dimension offsets.
fn small_nest_2d() -> impl Strategy<Value = LoopNest> {
    let array_ref = (0..2usize, prop::bool::ANY, -1i64..=1, -1i64..=1).prop_map(|(a, w, o1, o2)| {
        ArrayRef::new(
            ArrayId(a),
            if w { AccessKind::Write } else { AccessKind::Read },
            vec![LinExpr::index(0, o1), LinExpr::index(1, o2)],
        )
    });
    let stmt_refs = prop::collection::vec(array_ref, 1..3);
    (2i64..=4, 2i64..=4, prop::collection::vec(stmt_refs, 1..3)).prop_map(|(n, m, stmts)| {
        let mut b = LoopNestBuilder::new(1, n).inner(1, m);
        for (i, refs) in stmts.into_iter().enumerate() {
            b = b.stmt(&format!("S{i}"), 1, refs);
        }
        b.build()
    })
}

fn check_soundness(nest: &LoopNest) -> Result<(), TestCaseError> {
    let space = IterSpace::of(nest);
    let adj = implied_order(nest, &space);
    let n_stmts = nest.n_stmts();
    for (first, second) in brute_force_conflicts(nest, &space) {
        prop_assert!(
            reaches(&adj, n_stmts, first, second),
            "conflict {first:?} -> {second:?} not ordered by the analysis of {nest:?}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 120, ..ProptestConfig::default() })]

    /// Every brute-force conflict is ordered by the analysis (soundness).
    #[test]
    fn analysis_orders_every_conflict_1d(nest in small_nest()) {
        check_soundness(&nest)?;
    }

    /// Same for depth-2 nests with vector distances.
    #[test]
    fn analysis_orders_every_conflict_2d(nest in small_nest_2d()) {
        check_soundness(&nest)?;
    }

    /// Covering preserves the implied order (every original conflict is
    /// still ordered when the order is rebuilt from the reduced graph via
    /// the process-oriented realization — checked end-to-end elsewhere;
    /// here: reduce() never removes arcs from an acyclic chain it cannot
    /// recover).
    #[test]
    fn covering_is_idempotent(nest in small_nest()) {
        let g = analyze(&nest);
        let r1 = datasync_loopir::covering::reduce(&nest, &g);
        let r2 = datasync_loopir::covering::reduce(&nest, &r1);
        prop_assert_eq!(&r1, &r2, "covering must be idempotent");
    }

    /// Precision guard: the analysis emits no dependence for loops whose
    /// references never overlap.
    #[test]
    fn disjoint_arrays_no_deps(n in 2i64..20, off in 0i64..3) {
        let nest = LoopNestBuilder::new(1, n)
            .stmt("S0", 1, vec![ArrayRef::simple(ArrayId(0), AccessKind::Write, off)])
            .stmt("S1", 1, vec![ArrayRef::simple(ArrayId(1), AccessKind::Write, off)])
            .build();
        prop_assert!(analyze(&nest).deps().is_empty());
    }
}

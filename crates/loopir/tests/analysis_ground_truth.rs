//! Property-style test: the dependence analysis is checked against
//! brute-force conflict enumeration over small loops.
//!
//! Ground truth: two statement instances conflict when they touch the
//! same array element and at least one writes it. The analysis is
//! **sound** if, for every conflicting ordered pair, the instance-level
//! order implied by the dependence graph (arcs expanded over iterations,
//! plus intra-iteration textual order) contains that pair in its
//! transitive closure.
//!
//! Cases come from a seeded local splitmix64 stream (this crate sits
//! below the simulator, so it carries its own copy of the three-line
//! generator) — every run covers the same cases.

use datasync_loopir::analysis::analyze;
use datasync_loopir::graph::Distance;
use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LinExpr, LoopNest, LoopNestBuilder};
use datasync_loopir::space::IterSpace;

/// Minimal splitmix64 for seeded case generation.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }
}

const CASES: usize = 120;

/// A statement instance: (pid, stmt).
type Inst = (u64, usize);

/// Builds the instance-level "must happen before" relation implied by the
/// dependence graph and intra-iteration order, as an adjacency list.
fn implied_order(nest: &LoopNest, space: &IterSpace) -> Vec<Vec<Inst>> {
    let graph = analyze(nest);
    let n_stmts = nest.n_stmts();
    let count = space.count();
    let idx = |(pid, s): Inst| (pid as usize) * n_stmts + s;
    let mut adj: Vec<Vec<Inst>> = vec![Vec::new(); count as usize * n_stmts];

    // Intra-iteration textual order between coexecutable statements.
    for pid in 0..count {
        let executed = nest.executed_stmts(pid);
        for w in executed.windows(2) {
            adj[idx((pid, w[0].id.0))].push((pid, w[1].id.0));
        }
    }
    // Dependence arcs, expanded per instance.
    for d in graph.deps() {
        match &d.distance {
            Distance::Vector(v) => {
                let dist = space.linear_distance(v);
                assert!(dist >= 0);
                for pid in 0..count.saturating_sub(dist as u64) {
                    adj[idx((pid, d.src.0))].push((pid + dist as u64, d.dst.0));
                }
            }
            Distance::SerialChain => {
                // Total order of all instances of src and dst.
                for pid in 0..count {
                    if d.src != d.dst {
                        adj[idx((pid, d.src.0))].push((pid, d.dst.0));
                    }
                    if pid + 1 < count {
                        adj[idx((pid, d.dst.0))].push((pid + 1, d.src.0));
                    }
                }
            }
        }
    }
    adj
}

/// BFS reachability in the implied order.
fn reaches(adj: &[Vec<Inst>], n_stmts: usize, from: Inst, to: Inst) -> bool {
    let idx = |(pid, s): Inst| (pid as usize) * n_stmts + s;
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::from([from]);
    seen[idx(from)] = true;
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            return true;
        }
        for &next in &adj[idx(cur)] {
            if !seen[idx(next)] {
                seen[idx(next)] = true;
                queue.push_back(next);
            }
        }
    }
    false
}

/// Enumerates every conflicting ordered instance pair by brute force.
/// One element touch: `(array, element, is_write)`.
type Touch = (ArrayId, Vec<i64>, bool);

fn brute_force_conflicts(nest: &LoopNest, space: &IterSpace) -> Vec<(Inst, Inst)> {
    // (sequential position, instance, element accesses)
    let mut accesses: Vec<(Inst, Vec<Touch>)> = Vec::new();
    for pid in 0..space.count() {
        let indices = space.indices(pid);
        for stmt in nest.executed_stmts(pid) {
            let elems = stmt
                .refs
                .iter()
                .map(|r| (r.array, r.element(&indices), r.kind.is_write()))
                .collect();
            accesses.push(((pid, stmt.id.0), elems));
        }
    }
    let mut pairs = Vec::new();
    for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            let (a, ea) = &accesses[i];
            let (b, eb) = &accesses[j];
            if a.1 == b.1 && a.0 == b.0 {
                continue; // same instance
            }
            let conflict = ea.iter().any(|(arr1, el1, w1)| {
                eb.iter().any(|(arr2, el2, w2)| arr1 == arr2 && el1 == el2 && (*w1 || *w2))
            });
            if conflict {
                pairs.push((*a, *b)); // a executes first (sequential order)
            }
        }
    }
    pairs
}

/// Small random loop (depth 1).
fn small_nest(g: &mut Rng) -> LoopNest {
    let n = g.range_i64(2, 7);
    let n_stmts = g.below(3) as usize + 1;
    let mut b = LoopNestBuilder::new(1, n);
    for i in 0..n_stmts {
        let n_refs = g.below(2) as usize + 1;
        let refs = (0..n_refs)
            .map(|_| {
                ArrayRef::simple(
                    ArrayId(g.below(2) as usize),
                    if g.below(2) == 0 { AccessKind::Write } else { AccessKind::Read },
                    g.range_i64(-2, 2),
                )
            })
            .collect();
        b = b.stmt(&format!("S{i}"), 1, refs);
    }
    b.build()
}

/// Depth-2 random loop with per-dimension offsets.
fn small_nest_2d(g: &mut Rng) -> LoopNest {
    let n = g.range_i64(2, 4);
    let m = g.range_i64(2, 4);
    let n_stmts = g.below(2) as usize + 1;
    let mut b = LoopNestBuilder::new(1, n).inner(1, m);
    for i in 0..n_stmts {
        let n_refs = g.below(2) as usize + 1;
        let refs = (0..n_refs)
            .map(|_| {
                ArrayRef::new(
                    ArrayId(g.below(2) as usize),
                    if g.below(2) == 0 { AccessKind::Write } else { AccessKind::Read },
                    vec![
                        LinExpr::index(0, g.range_i64(-1, 1)),
                        LinExpr::index(1, g.range_i64(-1, 1)),
                    ],
                )
            })
            .collect();
        b = b.stmt(&format!("S{i}"), 1, refs);
    }
    b.build()
}

fn check_soundness(nest: &LoopNest) {
    let space = IterSpace::of(nest);
    let adj = implied_order(nest, &space);
    let n_stmts = nest.n_stmts();
    for (first, second) in brute_force_conflicts(nest, &space) {
        assert!(
            reaches(&adj, n_stmts, first, second),
            "conflict {first:?} -> {second:?} not ordered by the analysis of {nest:?}"
        );
    }
}

/// Every brute-force conflict is ordered by the analysis (soundness).
#[test]
fn analysis_orders_every_conflict_1d() {
    let mut g = Rng(0x6f_01);
    for _ in 0..CASES {
        check_soundness(&small_nest(&mut g));
    }
}

/// Same for depth-2 nests with vector distances.
#[test]
fn analysis_orders_every_conflict_2d() {
    let mut g = Rng(0x6f_02);
    for _ in 0..CASES {
        check_soundness(&small_nest_2d(&mut g));
    }
}

/// Covering preserves the implied order (every original conflict is
/// still ordered when the order is rebuilt from the reduced graph via
/// the process-oriented realization — checked end-to-end elsewhere;
/// here: reduce() never removes arcs from an acyclic chain it cannot
/// recover).
#[test]
fn covering_is_idempotent() {
    let mut g = Rng(0x6f_03);
    for _ in 0..CASES {
        let nest = small_nest(&mut g);
        let graph = analyze(&nest);
        let r1 = datasync_loopir::covering::reduce(&nest, &graph);
        let r2 = datasync_loopir::covering::reduce(&nest, &r1);
        assert_eq!(&r1, &r2, "covering must be idempotent");
    }
}

/// Precision guard: the analysis emits no dependence for loops whose
/// references never overlap.
#[test]
fn disjoint_arrays_no_deps() {
    let mut g = Rng(0x6f_04);
    for _ in 0..CASES {
        let n = g.range_i64(2, 19);
        let off = g.range_i64(0, 2);
        let nest = LoopNestBuilder::new(1, n)
            .stmt("S0", 1, vec![ArrayRef::simple(ArrayId(0), AccessKind::Write, off)])
            .stmt("S1", 1, vec![ArrayRef::simple(ArrayId(1), AccessKind::Write, off)])
            .build();
        assert!(analyze(&nest).deps().is_empty());
    }
}

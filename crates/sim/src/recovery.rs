//! Self-healing machinery for the sync bus: policy, accounting, and
//! wait-for diagnosis.
//!
//! The paper's §6 hardware keeps per-processor local PC images coherent
//! via sync-bus broadcasts. A broadcast whose image update is lost
//! (see [`crate::faults::FaultClass::BroadcastLoss`]) silently wedges
//! every local-image waiter on that processor: the *global* variable
//! advanced, the *image* never will. This module gives the machine a
//! recovery ladder modeled on what a real sync-bus controller could do
//! with the state it already holds:
//!
//! 1. **Gap detection** — a processor that has spun on its local image
//!    past a deadline checks whether its wait predicate already holds on
//!    the global variable. If it does, the image provably missed a
//!    broadcast (sync variables are monotone counters, so
//!    `image < global` is a sequence gap, never a reordering artifact).
//! 2. **NACK-driven retransmission** — the gapped processor NACKs: the
//!    current global value is re-broadcast through the normal sync-bus
//!    path with a fresh sequence tag (subject to faults like any other
//!    broadcast). Bounded retries per wait episode.
//! 3. **Watchdog repair** — if NACKs did not heal (the retransmissions
//!    themselves were lost), the progress watchdog's firing is
//!    intercepted: the wait-for state is extracted and every *healable*
//!    image (one whose waiter's predicate holds globally) is force-synced
//!    from the global state, modeling a controller-driven full image
//!    refresh. Bounded rungs.
//! 4. **Rescue (reconfigure)** — if repair cannot help because the
//!    *producer is dead* (a fail-stopped processor holds unretired
//!    iterations; see [`crate::faults::FaultClass::ProcFailStop`]), the
//!    watchdog reclaims the dead processors' unretired programs at their
//!    provably-safe resume points and reissues them to the survivor
//!    quorum through the self-scheduling dispatcher — preempting a
//!    spinning survivor when none is idle. A run that completed only via
//!    this rung is classified `Reconfigured`, one rung below `Recovered`.
//! 5. **Degrade** — if the wait-for diagnosis proves no repair can help
//!    (the predicate fails even on the global state — a lost *conditional*
//!    post, so the value genuinely never performed), the run fails with
//!    the proof attached; the scheme harness
//!    (`datasync_schemes::robustness`) then degrades to a conservative
//!    barrier-phased fallback and reports `Degraded`.
//!
//! Every rung is deterministic (no RNG draws) and acts only at stepped
//! cycles, so FastForward/Reference equivalence holds with recovery
//! enabled. Repairs only ever copy the global value into an image —
//! sync variables are monotone, so a repair can wake a waiter early
//! relative to a lossless run but can never un-satisfy a predicate or
//! break dependence order; recovered runs still pass trace validation.

use crate::program::SyncVar;

/// How much self-healing the machine may do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// No recovery: faults wedge and are detected (the PR-1 behaviour).
    #[default]
    Off,
    /// In-machine repair only (gap NACKs + watchdog image refresh); a
    /// run the ladder cannot heal still fails as deadlock/timeout.
    RepairOnly,
    /// Repair, and additionally allow the scheme harness to degrade an
    /// unhealable run to a conservative barrier-phased fallback.
    Full,
}

impl RecoveryPolicy {
    /// `true` when the in-machine ladder (gap NACK + watchdog repair)
    /// is armed. `Full` only adds harness-level degradation on top.
    pub fn repairs(self) -> bool {
        !matches!(self, RecoveryPolicy::Off)
    }

    /// `true` when the scheme harness may fall back to a conservative
    /// scheme after an unhealable failure.
    pub fn degrades(self) -> bool {
        matches!(self, RecoveryPolicy::Full)
    }

    /// Parses the CLI spelling (`on`, `off`, `repair-only`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "on" | "full" => Some(RecoveryPolicy::Full),
            "off" => Some(RecoveryPolicy::Off),
            "repair-only" | "repair" => Some(RecoveryPolicy::RepairOnly),
            _ => None,
        }
    }
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecoveryPolicy::Off => "off",
            RecoveryPolicy::RepairOnly => "repair-only",
            RecoveryPolicy::Full => "on",
        })
    }
}

/// Recovery-action accounting for one run, recorded in
/// [`crate::stats::RunStats::recovery`]. All zero when the policy is
/// [`RecoveryPolicy::Off`] or no fault needed healing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// Sequence gaps detected and NACKed by local-image waiters.
    pub gap_nacks: u64,
    /// Refresh broadcasts enqueued in response to NACKs (re-broadcast of
    /// the current global value with a fresh sequence tag).
    pub retransmits: u64,
    /// Watchdog repair rungs taken (controller-driven image refreshes).
    pub watchdog_repairs: u64,
    /// Image cells force-synced to the global value by watchdog repairs.
    pub images_repaired: u64,
    /// Wait episodes that closed after at least one recovery action.
    pub healed_waits: u64,
    /// Total cycles spent in waits that needed recovery.
    pub heal_latency_total: u64,
    /// Longest single wait that needed recovery (the worst-case
    /// recovery latency a waiter observed).
    pub heal_latency_max: u64,
    /// Watchdog rescue rungs taken (fail-stop reconfigurations: dead
    /// processors' work reclaimed and reissued to survivors).
    pub fail_stop_rescues: u64,
    /// Unretired programs reclaimed from fail-stopped processors.
    pub programs_reclaimed: u64,
    /// Spinning survivors preempted to run rescued work because no
    /// survivor was idle when a rescue rung fired.
    pub rescue_swaps: u64,
}

impl RecoveryCounts {
    /// Total recovery interventions (NACKs plus watchdog rungs); `> 0`
    /// marks a run as *recovered* rather than merely completed.
    pub fn actions(&self) -> u64 {
        self.gap_nacks + self.watchdog_repairs
    }

    /// `true` when the run survived participant loss by reconfiguring
    /// to a survivor quorum — one rung below plain recovery on the
    /// outcome ladder (`Reconfigured` rather than `Recovered`).
    pub fn reconfigured(&self) -> bool {
        self.fail_stop_rescues > 0
    }
}

/// One edge of the wait-for state extracted from a live machine: who
/// waits, on what, and whether the sync-bus controller could heal it
/// from the global state it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitEdge {
    /// The waiting processor.
    pub proc: usize,
    /// The synchronization variable waited on.
    pub var: SyncVar,
    /// The wait predicate, rendered (`">= 5"`).
    pub need: String,
    /// The processor's local-image value.
    pub image: u64,
    /// The globally-performed value.
    pub global: u64,
    /// `true` when the predicate holds on `global` but not on `image`:
    /// re-broadcasting the global value wakes the waiter. `false` is the
    /// proof that repair cannot help — the awaited value never performed.
    pub healable: bool,
    /// `true` when the wait is unhealable *because the producer is
    /// dead*: a fail-stopped processor still holds unretired work, so
    /// the awaited value was lost with its producer rather than in
    /// flight. This is the verdict that routes the watchdog to the
    /// rescue rung (work reclamation) instead of image repair.
    pub producer_dead: bool,
}

impl std::fmt::Display for WaitEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "P{} waits v{} {} (image {}, global {}) — {}",
            self.proc,
            self.var,
            self.need,
            self.image,
            self.global,
            if self.healable {
                "healable: global satisfies, image gapped"
            } else if self.producer_dead {
                "unhealable by repair: producer fail-stopped holding unretired work"
            } else {
                "unhealable: unsatisfied even globally"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_round_trips() {
        for p in [RecoveryPolicy::Off, RecoveryPolicy::RepairOnly, RecoveryPolicy::Full] {
            assert_eq!(RecoveryPolicy::parse(&p.to_string()), Some(p));
        }
        assert_eq!(RecoveryPolicy::parse("repair"), Some(RecoveryPolicy::RepairOnly));
        assert_eq!(RecoveryPolicy::parse("maybe"), None);
    }

    #[test]
    fn policy_ladder_gates() {
        assert!(!RecoveryPolicy::Off.repairs());
        assert!(RecoveryPolicy::RepairOnly.repairs());
        assert!(!RecoveryPolicy::RepairOnly.degrades());
        assert!(RecoveryPolicy::Full.repairs());
        assert!(RecoveryPolicy::Full.degrades());
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Off);
    }

    #[test]
    fn counts_mark_recovered_runs() {
        let mut c = RecoveryCounts::default();
        assert_eq!(c.actions(), 0);
        assert!(!c.reconfigured());
        c.gap_nacks = 2;
        c.watchdog_repairs = 1;
        assert_eq!(c.actions(), 3);
        c.fail_stop_rescues = 1;
        assert!(c.reconfigured());
    }

    #[test]
    fn wait_edge_renders_the_proof() {
        let e = WaitEdge {
            proc: 3,
            var: 1,
            need: ">= 5".into(),
            image: 2,
            global: 2,
            healable: false,
            producer_dead: false,
        };
        let s = e.to_string();
        assert!(s.contains("P3"), "{s}");
        assert!(s.contains("unhealable"), "{s}");
        let dead = WaitEdge { producer_dead: true, ..e };
        let s = dead.to_string();
        assert!(s.contains("producer fail-stopped"), "{s}");
    }
}

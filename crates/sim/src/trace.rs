//! Execution traces and dependence-order validation.
//!
//! Programs mark statement boundaries with [`Instr::Note`] instructions;
//! the trace records the cycle of each note. [`Trace::validate_order`]
//! then checks, for every dependence arc, that the source instance's end
//! precedes the sink instance's start — the correctness criterion of
//! Section 2.2.
//!
//! [`Instr::Note`]: crate::program::Instr::Note

use crate::faults::FaultClass;
use crate::program::Label;
use std::collections::HashMap;

/// One recorded note.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the note executed.
    pub cycle: u64,
    /// Processor that executed it.
    pub proc: usize,
    /// The label.
    pub label: Label,
}

/// One injected fault (recorded when fault injection is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle the fault was injected.
    pub cycle: u64,
    /// Processor it hit (`None` for bus-level faults).
    pub proc: Option<usize>,
    /// Fault class.
    pub class: FaultClass,
    /// Magnitude in cycles (delay length, stall length, deferral window;
    /// 0 for reorders and drops, whose cost shows up as recovery
    /// latency).
    pub magnitude: u64,
}

/// The ordered list of note events of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    fault_events: Vec<FaultEvent>,
}

/// An ordering violation found by [`Trace::validate_order`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderViolation {
    /// Source statement id.
    pub src_stmt: u32,
    /// Source iteration.
    pub src_pid: u64,
    /// Sink statement id.
    pub dst_stmt: u32,
    /// Sink iteration.
    pub dst_pid: u64,
    /// Cycle the source ended.
    pub src_end: u64,
    /// Cycle the sink started.
    pub dst_start: u64,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an event (called by the machine).
    pub fn record(&mut self, cycle: u64, proc: usize, label: Label) {
        self.events.push(TraceEvent { cycle, proc, label });
    }

    /// All events in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Records an injected fault (called by the machine).
    pub fn record_fault(
        &mut self,
        cycle: u64,
        proc: Option<usize>,
        class: FaultClass,
        magnitude: u64,
    ) {
        self.fault_events.push(FaultEvent { cycle, proc, class, magnitude });
    }

    /// All injected faults in record order (empty on fault-free runs).
    pub fn fault_events(&self) -> &[FaultEvent] {
        &self.fault_events
    }

    /// Start cycle of statement instance `(stmt, pid)`, if recorded.
    pub fn start_of(&self, stmt: u32, pid: u64) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.label.stmt == stmt && e.label.pid == pid && e.label.start)
            .map(|e| e.cycle)
    }

    /// End cycle of statement instance `(stmt, pid)`, if recorded.
    pub fn end_of(&self, stmt: u32, pid: u64) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.label.stmt == stmt && e.label.pid == pid && !e.label.start)
            .map(|e| e.cycle)
    }

    /// Checks every instance of the given dependence arcs.
    ///
    /// `arcs` are `(src_stmt, dst_stmt, linear_distance)` triples. An arc
    /// instance is checked only when both endpoints were recorded (a
    /// statement inside a non-taken branch arm has no events, matching the
    /// may-dependence semantics of Example 3).
    pub fn validate_order(&self, arcs: &[(u32, u32, i64)]) -> Vec<OrderViolation> {
        let mut starts: HashMap<(u32, u64), u64> = HashMap::new();
        let mut ends: HashMap<(u32, u64), u64> = HashMap::new();
        for e in &self.events {
            let key = (e.label.stmt, e.label.pid);
            if e.label.start {
                starts.entry(key).or_insert(e.cycle);
            } else {
                ends.insert(key, e.cycle);
            }
        }
        let mut violations = Vec::new();
        for &(src, dst, dist) in arcs {
            debug_assert!(dist >= 0, "validate_order expects non-negative distances");
            for (&(stmt, pid), &src_end) in &ends {
                if stmt != src {
                    continue;
                }
                let dst_pid = pid + dist as u64;
                if let Some(&dst_start) = starts.get(&(dst, dst_pid)) {
                    let intra_ok = dist == 0 && src == dst;
                    if dst_start < src_end && !intra_ok {
                        violations.push(OrderViolation {
                            src_stmt: src,
                            src_pid: pid,
                            dst_stmt: dst,
                            dst_pid,
                            src_end,
                            dst_start,
                        });
                    }
                }
            }
        }
        violations.sort_by_key(|v| (v.src_pid, v.src_stmt, v.dst_pid, v.dst_stmt));
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(stmt: u32, pid: u64, start: bool) -> Label {
        Label { pid, stmt, start }
    }

    #[test]
    fn start_end_lookup() {
        let mut t = Trace::new();
        t.record(5, 0, label(1, 3, true));
        t.record(9, 0, label(1, 3, false));
        assert_eq!(t.start_of(1, 3), Some(5));
        assert_eq!(t.end_of(1, 3), Some(9));
        assert_eq!(t.start_of(1, 4), None);
    }

    #[test]
    fn validate_order_catches_violation() {
        let mut t = Trace::new();
        // src stmt 0 at pid 0 ends at cycle 10; dst stmt 1 at pid 1
        // starts at cycle 7 -> violation of arc (0, 1, 1).
        t.record(2, 0, label(0, 0, true));
        t.record(10, 0, label(0, 0, false));
        t.record(7, 1, label(1, 1, true));
        t.record(12, 1, label(1, 1, false));
        let v = t.validate_order(&[(0, 1, 1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].src_end, 10);
        assert_eq!(v[0].dst_start, 7);
        // And the satisfied direction reports nothing.
        assert!(t.validate_order(&[(1, 0, 1)]).is_empty());
    }

    #[test]
    fn missing_instances_are_skipped() {
        let mut t = Trace::new();
        t.record(2, 0, label(0, 0, false));
        // No dst instance recorded: no violation (may-dependence).
        assert!(t.validate_order(&[(0, 1, 1)]).is_empty());
    }

    #[test]
    fn intra_statement_zero_distance_allowed() {
        let mut t = Trace::new();
        t.record(5, 0, label(0, 0, true));
        t.record(9, 0, label(0, 0, false));
        // An arc (0, 0, 0): the statement cannot start after its own end;
        // this degenerate self-arc is not flagged.
        assert!(t.validate_order(&[(0, 0, 0)]).is_empty());
    }
}

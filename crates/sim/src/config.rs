//! Machine configuration.

use crate::faults::FaultPlan;
use crate::recovery::RecoveryPolicy;

/// How shared memory is reached through the data bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryModel {
    /// The data bus is held for the whole access
    /// (`data_bus_latency + memory_latency` cycles) — a simple
    /// circuit-switched bus, the default.
    BusHeld,
    /// The bus is held only for the request (`data_bus_latency`); the
    /// access then proceeds in one of `banks` independent memory modules
    /// for `memory_latency` cycles (Cedar-style interleaving). Requests
    /// to the same bank queue up.
    Banked {
        /// Number of interleaved memory banks (>= 1).
        banks: usize,
    },
}

/// How synchronization variables are stored and reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncTransport {
    /// A dedicated synchronization bus with a local image of every
    /// variable in each processor (the Alliant-style hardware of
    /// Section 6). Writes are posted broadcasts; busy-waiting spins on the
    /// local image and generates **no** traffic.
    DedicatedBus,
    /// Synchronization variables live in shared memory and every
    /// operation — including each poll of a busy-wait — is a data-bus
    /// transaction. This is the transport that exhibits the hot-spot
    /// effect.
    SharedMemory,
}

/// Which backend carries dedicated-transport synchronization traffic
/// (see `datasync_sim::machine::fabric`). Orthogonal to
/// [`SyncTransport`]: schemes whose natural transport is
/// [`SyncTransport::SharedMemory`] route sync operations over the data
/// bus and are unaffected by this choice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FabricKind {
    /// A dedicated synchronization bus, physically separate from the
    /// data bus (the paper's §6 hardware). The default, and the
    /// behaviour every pre-fabric version of this simulator had.
    #[default]
    Dedicated,
    /// No dedicated hardware: sync broadcasts arbitrate against data
    /// traffic for the one physical bus (data traffic has priority).
    /// Quantifies §6's argument for dedicated sync hardware.
    Shared,
    /// A zero-latency oracle: posts and RMWs perform globally and in
    /// every local image the instant they issue. Upper bound on what
    /// any sync interconnect could achieve.
    Ideal,
    /// A two-level hierarchy: `clusters` dedicated per-cluster sync
    /// buses with independent arbitration, joined by a bridge that
    /// batches same-variable image updates within `coalesce_window`
    /// cycles before forwarding one broadcast (`bridge_latency` cycles)
    /// to every cluster. Intra-cluster sync stays as cheap as the flat
    /// dedicated bus; only genuinely global traffic pays the bridge,
    /// and monotone-counter aggregation at the bridge collapses the
    /// broadcast storms that wall the flat bus at large P.
    Clustered {
        /// Number of per-cluster sync buses (must divide `processors`).
        clusters: u32,
        /// Cycles the bridge holds its channel per forwarded broadcast.
        bridge_latency: u32,
        /// Cycles a variable's first bridge submission waits for
        /// same-variable followers to coalesce before forwarding
        /// (0 = forward the same cycle).
        coalesce_window: u32,
    },
}

impl FabricKind {
    /// All *flat* fabric kinds, in ablation order. Clustered geometry
    /// depends on the processor count, so sweeps add it explicitly.
    pub const ALL: [FabricKind; 3] = [FabricKind::Dedicated, FabricKind::Shared, FabricKind::Ideal];

    /// A clustered fabric with default bridge timing (2-cycle bridge,
    /// 4-cycle coalescing window).
    pub fn clustered(clusters: u32) -> Self {
        FabricKind::Clustered { clusters, bridge_latency: 2, coalesce_window: 4 }
    }

    /// Parses the CLI spelling (`dedicated`, `shared`, `ideal`,
    /// `clustered` — the latter with default geometry; CLI knobs
    /// override the fields).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "dedicated" => Some(FabricKind::Dedicated),
            "shared" => Some(FabricKind::Shared),
            "ideal" => Some(FabricKind::Ideal),
            "clustered" => Some(FabricKind::clustered(4)),
            _ => None,
        }
    }

    /// True for [`FabricKind::Clustered`].
    pub fn is_clustered(&self) -> bool {
        matches!(self, FabricKind::Clustered { .. })
    }
}

impl std::fmt::Display for FabricKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FabricKind::Dedicated => "dedicated",
            FabricKind::Shared => "shared",
            FabricKind::Ideal => "ideal",
            FabricKind::Clustered { .. } => "clustered",
        })
    }
}

/// Which snooping coherence protocol the private caches run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoherenceProtocol {
    /// Invalidation-based MESI: a write to a shared line broadcasts a
    /// BusRdX/upgrade that invalidates every other copy; subsequent
    /// readers miss and refetch. The classic ping-pong model for sync
    /// hot-spots (key lines, SC/PC counters).
    #[default]
    Mesi,
    /// Update-based Dragon: a write to a shared line broadcasts the new
    /// value (BusUpd) to the other copies instead of invalidating them;
    /// readers keep hitting locally at the cost of a bus word per write.
    Dragon,
}

impl CoherenceProtocol {
    /// Both protocols, in ablation order.
    pub const ALL: [CoherenceProtocol; 2] = [CoherenceProtocol::Mesi, CoherenceProtocol::Dragon];

    /// Parses the CLI spelling (`mesi`, `dragon`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "mesi" => Some(CoherenceProtocol::Mesi),
            "dragon" => Some(CoherenceProtocol::Dragon),
            _ => None,
        }
    }
}

impl std::fmt::Display for CoherenceProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CoherenceProtocol::Mesi => "mesi",
            CoherenceProtocol::Dragon => "dragon",
        })
    }
}

/// The private-cache layer between the processors and the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheModel {
    /// No caches: every data-path request arbitrates for the bus and
    /// reaches memory, exactly as in every pre-cache version of this
    /// simulator. The default — golden-stat pins are bit-identical under
    /// it.
    #[default]
    None,
    /// One private snooping cache per processor.
    Private {
        /// Coherence protocol the caches run.
        protocol: CoherenceProtocol,
        /// Number of sets (>= 1).
        sets: u32,
        /// Associativity: ways per set (>= 1).
        assoc: u32,
        /// Words per cache line (>= 1); addresses within the same line
        /// hit the same tag.
        line_words: u32,
        /// Whether through-memory synchronization variables are
        /// cacheable. The paper's Sec 6 ablation axis: cached sync lines
        /// ping-pong (MESI) or flood updates (Dragon); uncached ones pay
        /// full memory latency on every poll.
        cache_sync: bool,
        /// Cycles a cache hit costs the requesting processor (>= 1; the
        /// bus is not involved).
        hit_latency: u32,
    },
}

impl CacheModel {
    /// A private-cache model with the given protocol and small-machine
    /// defaults (64 sets x 2 ways x 4-word lines, sync cacheable, 1-cycle
    /// hits).
    pub fn private(protocol: CoherenceProtocol) -> Self {
        CacheModel::Private {
            protocol,
            sets: 64,
            assoc: 2,
            line_words: 4,
            cache_sync: true,
            hit_latency: 1,
        }
    }

    /// Whether any cache hardware is modeled.
    pub fn enabled(&self) -> bool {
        !matches!(self, CacheModel::None)
    }

    /// Returns the model with through-memory synchronization variables
    /// made uncacheable (no-op for [`CacheModel::None`]).
    #[must_use]
    pub fn sync_uncached(mut self) -> Self {
        if let CacheModel::Private { cache_sync, .. } = &mut self {
            *cache_sync = false;
        }
        self
    }

    /// Returns the model with the given geometry (no-op for
    /// [`CacheModel::None`]).
    #[must_use]
    pub fn geometry(mut self, new_sets: u32, new_assoc: u32, new_line_words: u32) -> Self {
        if let CacheModel::Private { sets, assoc, line_words, .. } = &mut self {
            *sets = new_sets;
            *assoc = new_assoc;
            *line_words = new_line_words;
        }
        self
    }
}

/// Parameters of the simulated multiprocessor.
///
/// All latencies are in cycles. The defaults model a small bus-based
/// machine of the Alliant FX/8 class: a handful of processors, a data bus
/// that is the main bottleneck, and a fast dedicated synchronization bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processors.
    pub processors: usize,
    /// Cycles the data bus is held per transaction.
    pub data_bus_latency: u32,
    /// Additional memory-module latency per data access.
    pub memory_latency: u32,
    /// Memory organisation behind the data bus.
    pub memory_model: MemoryModel,
    /// Private per-processor caches in front of the data bus
    /// ([`CacheModel::None`] by default: requests go straight to the
    /// bus, bit-identical to the cacheless machine).
    pub cache: CacheModel,
    /// Cycles the sync bus is held per broadcast.
    pub sync_bus_latency: u32,
    /// Where synchronization variables live.
    pub sync_transport: SyncTransport,
    /// Which fabric backend carries dedicated-transport sync traffic.
    pub sync_fabric: FabricKind,
    /// Coalesce posted sync-bus writes to the same variable from the same
    /// processor while still queued (Section 6 optimization).
    pub coalesce_sync_writes: bool,
    /// Cycles between successive polls when busy-waiting through shared
    /// memory.
    pub spin_retry: u32,
    /// Cycles charged to a processor for claiming the next iteration from
    /// the self-scheduling dispatcher.
    pub dispatch_latency: u32,
    /// Safety cap on simulated cycles.
    pub max_cycles: u64,
    /// Deterministic fault-injection plan ([`FaultPlan::none`] by
    /// default: no faults, no per-cycle cost).
    pub faults: FaultPlan,
    /// Self-healing policy ([`RecoveryPolicy::Off`] by default: faults
    /// wedge and are detected, never silently repaired).
    pub recovery: RecoveryPolicy,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            processors: 8,
            data_bus_latency: 2,
            memory_latency: 4,
            memory_model: MemoryModel::BusHeld,
            cache: CacheModel::None,
            sync_bus_latency: 1,
            sync_transport: SyncTransport::DedicatedBus,
            sync_fabric: FabricKind::Dedicated,
            coalesce_sync_writes: true,
            spin_retry: 4,
            dispatch_latency: 2,
            max_cycles: 200_000_000,
            faults: FaultPlan::none(),
            recovery: RecoveryPolicy::Off,
        }
    }
}

impl MachineConfig {
    /// A config with `p` processors and defaults otherwise.
    pub fn with_processors(p: usize) -> Self {
        Self { processors: p, ..Self::default() }
    }

    /// Switches the sync transport.
    pub fn transport(mut self, t: SyncTransport) -> Self {
        self.sync_transport = t;
        self
    }

    /// Switches the synchronization-fabric backend.
    pub fn fabric(mut self, kind: FabricKind) -> Self {
        self.sync_fabric = kind;
        self
    }

    /// Installs a private-cache model.
    pub fn with_cache(mut self, cache: CacheModel) -> Self {
        self.cache = cache;
        self
    }

    /// Enables or disables write coalescing.
    pub fn coalescing(mut self, on: bool) -> Self {
        self.coalesce_sync_writes = on;
        self
    }

    /// Installs a fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the self-healing policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is degenerate (zero processors,
    /// zero bus latency, zero spin retry).
    pub fn validate(&self) -> Result<(), String> {
        if self.processors == 0 {
            return Err("machine needs at least one processor".into());
        }
        if self.data_bus_latency == 0 || self.sync_bus_latency == 0 {
            return Err("bus latencies must be at least 1 cycle".into());
        }
        if self.spin_retry == 0 {
            return Err("spin_retry must be at least 1 cycle".into());
        }
        if let MemoryModel::Banked { banks: 0 } = self.memory_model {
            return Err("banked memory needs at least one bank".into());
        }
        if let CacheModel::Private { sets, assoc, line_words, hit_latency, .. } = self.cache {
            if sets == 0 || assoc == 0 || line_words == 0 {
                return Err("private caches need sets, assoc and line_words >= 1".into());
            }
            if hit_latency == 0 {
                return Err("cache hit_latency must be at least 1 cycle".into());
            }
        }
        if self.faults.broadcast_delay_pct > 0 && self.faults.broadcast_delay_max == 0 {
            return Err("broadcast delay enabled with a zero-cycle cap".into());
        }
        if self.faults.broadcast_drop_pct > 0 && self.faults.max_redeliveries == 0 {
            return Err("broadcast drops need max_redeliveries >= 1 (bounded delivery)".into());
        }
        if self.faults.stale_image_pct > 0 && self.faults.stale_window_max == 0 {
            return Err("stale images enabled with a zero-cycle window".into());
        }
        if self.faults.stall_mean_interval > 0 && self.faults.stall_max == 0 {
            return Err("stalls enabled with a zero-cycle cap".into());
        }
        if self.faults.data_jitter_pct > 0 && self.faults.data_jitter_max == 0 {
            return Err("data jitter enabled with a zero-cycle cap".into());
        }
        if self.faults.fail_stop_procs > 0 && self.faults.fail_stop_window == 0 {
            return Err("fail-stop enabled with a zero-cycle kill window".into());
        }
        if let FabricKind::Clustered { clusters, bridge_latency, .. } = self.sync_fabric {
            if clusters == 0 {
                return Err("clustered fabric needs at least one cluster".into());
            }
            if bridge_latency == 0 {
                return Err("bridge_latency must be at least 1 cycle".into());
            }
            let c = clusters as usize;
            if c > self.processors || !self.processors.is_multiple_of(c) {
                return Err(format!(
                    "clusters ({clusters}) must divide the processor count ({})",
                    self.processors
                ));
            }
        }
        Ok(())
    }

    /// A cycle budget scaled to the machine and workload at hand, for
    /// harnesses that would otherwise use one flat `max_cycles` across
    /// every cell of a sweep. A flat cap misreports big or
    /// heavily-faulted configurations as TIMEOUT when they are merely
    /// slow: the worst legitimate makespan grows with the iteration
    /// count (a fully serialized Doacross runs its iterations back to
    /// back), with every latency on the critical path, and with the
    /// fault magnitudes stretching each of those latencies. Callers
    /// should take `max_cycles.max(scaled_max_cycles(n))` so an explicit
    /// user cap is never *lowered*, only raised to stay achievable.
    pub fn scaled_max_cycles(&self, n_programs: usize) -> u64 {
        let f = &self.faults;
        let latency_sum = u64::from(
            self.data_bus_latency
                + self.memory_latency
                + self.sync_bus_latency
                + self.spin_retry
                + self.dispatch_latency
                + f.broadcast_delay_max
                + f.data_jitter_max
                + f.stall_max
                + f.stale_window_max,
        );
        // Worst-case serialized iteration cost: a handful of
        // instructions each eating the full latency path, plus slack for
        // recovery rungs; the per-machine term covers dispatch and
        // quiescence overheads that grow with P.
        let per_iter = 512 + 32 * latency_sum;
        let p = self.processors as u64;
        1_000_000 + (n_programs as u64 + p) * per_iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(MachineConfig::default().validate().is_ok());
    }

    #[test]
    fn builders_compose() {
        let c = MachineConfig::with_processors(4)
            .transport(SyncTransport::SharedMemory)
            .coalescing(false)
            .with_recovery(RecoveryPolicy::Full);
        assert_eq!(c.processors, 4);
        assert_eq!(c.sync_transport, SyncTransport::SharedMemory);
        assert!(!c.coalesce_sync_writes);
        assert_eq!(c.recovery, RecoveryPolicy::Full);
        assert_eq!(MachineConfig::default().recovery, RecoveryPolicy::Off);
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert!(MachineConfig { processors: 0, ..Default::default() }.validate().is_err());
        assert!(MachineConfig { data_bus_latency: 0, ..Default::default() }.validate().is_err());
        assert!(MachineConfig { spin_retry: 0, ..Default::default() }.validate().is_err());
        assert!(MachineConfig {
            memory_model: MemoryModel::Banked { banks: 0 },
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn degenerate_fault_plans_rejected() {
        let bad = FaultPlan { broadcast_drop_pct: 10, max_redeliveries: 0, ..FaultPlan::none() };
        assert!(MachineConfig::default().with_faults(bad).validate().is_err());
        let bad = FaultPlan { stale_image_pct: 10, stale_window_max: 0, ..FaultPlan::none() };
        assert!(MachineConfig::default().with_faults(bad).validate().is_err());
        let ok = crate::faults::FaultPlan::chaos(1, 30);
        assert!(MachineConfig::default().with_faults(ok).validate().is_ok());
        let bad = FaultPlan { fail_stop_procs: 1, fail_stop_window: 0, ..FaultPlan::none() };
        assert!(MachineConfig::default().with_faults(bad).validate().is_err());
        let ok = crate::faults::FaultPlan::only(crate::faults::FaultClass::ProcFailStop, 1, 50);
        assert!(MachineConfig::default().with_faults(ok).validate().is_ok());
    }

    #[test]
    fn scaled_budget_grows_with_workload_machine_and_fault_magnitudes() {
        let base = MachineConfig::default();
        assert!(base.scaled_max_cycles(100) > base.scaled_max_cycles(10));
        let big = MachineConfig::with_processors(64);
        assert!(big.scaled_max_cycles(10) > base.scaled_max_cycles(10));
        let shaken = base.clone().with_faults(crate::faults::FaultPlan::chaos(1, 100));
        assert!(shaken.scaled_max_cycles(10) > base.scaled_max_cycles(10));
    }

    #[test]
    fn fabric_parse_round_trips() {
        for k in FabricKind::ALL {
            assert_eq!(FabricKind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(FabricKind::parse("warp"), None);
        assert_eq!(MachineConfig::default().sync_fabric, FabricKind::Dedicated);
        let c = MachineConfig::default().fabric(FabricKind::Shared);
        assert_eq!(c.sync_fabric, FabricKind::Shared);
    }

    #[test]
    fn clustered_fabric_parses_and_validates_geometry() {
        let parsed = FabricKind::parse("clustered").unwrap();
        assert!(parsed.is_clustered());
        assert_eq!(parsed.to_string(), "clustered");
        assert_eq!(parsed, FabricKind::clustered(4));
        // ALL stays the flat ablation axis: clustered geometry depends
        // on P, so sweeps opt in explicitly.
        assert!(FabricKind::ALL.iter().all(|k| !k.is_clustered()));

        let with = |clusters, procs| {
            MachineConfig::with_processors(procs).fabric(FabricKind::clustered(clusters))
        };
        assert!(with(4, 8).validate().is_ok());
        assert!(with(1, 8).validate().is_ok(), "one cluster is degenerate but legal");
        assert!(with(8, 8).validate().is_ok(), "one proc per cluster is legal");
        assert!(with(3, 8).validate().is_err(), "clusters must divide P");
        assert!(with(16, 8).validate().is_err(), "more clusters than procs");
        assert!(with(0, 8).validate().is_err());
        let bad = MachineConfig::with_processors(8).fabric(FabricKind::Clustered {
            clusters: 4,
            bridge_latency: 0,
            coalesce_window: 4,
        });
        assert!(bad.validate().is_err(), "zero-latency bridge is degenerate");
    }

    #[test]
    fn cache_model_parses_validates_and_defaults_off() {
        assert_eq!(MachineConfig::default().cache, CacheModel::None);
        assert!(!CacheModel::None.enabled());
        for p in CoherenceProtocol::ALL {
            assert_eq!(CoherenceProtocol::parse(&p.to_string()), Some(p));
            let c = MachineConfig::default().with_cache(CacheModel::private(p));
            assert!(c.cache.enabled());
            assert!(c.validate().is_ok());
        }
        assert_eq!(CoherenceProtocol::parse("moesi"), None);
        let degenerate = |sets, assoc, line_words, hit_latency| {
            MachineConfig::default().with_cache(CacheModel::Private {
                protocol: CoherenceProtocol::Mesi,
                sets,
                assoc,
                line_words,
                cache_sync: true,
                hit_latency,
            })
        };
        assert!(degenerate(0, 2, 4, 1).validate().is_err());
        assert!(degenerate(64, 0, 4, 1).validate().is_err());
        assert!(degenerate(64, 2, 0, 1).validate().is_err());
        assert!(degenerate(64, 2, 4, 0).validate().is_err());
    }

    #[test]
    fn banked_model_valid() {
        let c =
            MachineConfig { memory_model: MemoryModel::Banked { banks: 8 }, ..Default::default() };
        assert!(c.validate().is_ok());
    }
}

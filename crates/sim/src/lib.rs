//! A cycle-driven simulator of a small bus-based shared-memory
//! multiprocessor with optional dedicated synchronization hardware.
//!
//! This crate is the hardware substrate of the reproduction of Su & Yew,
//! *On Data Synchronization for Multiprocessors* (ISCA 1989). The paper
//! evaluates synchronization schemes on machines of the Alliant FX/8 /
//! Cray X-MP class; this simulator models the parts of such machines that
//! the paper's arguments depend on:
//!
//! * a **data bus** to shared memory, one arbitrated transaction at a
//!   time (the machine's bottleneck and the locus of hot-spot effects);
//! * an optional **dedicated synchronization bus** broadcasting
//!   synchronization-variable writes to per-processor local images, so
//!   that busy-waiting costs no traffic (Section 6);
//! * **posted** synchronization writes with optional write coalescing;
//! * **processor self-scheduling** dispatch of loop iterations.
//!
//! The instruction set ([`program::Instr`]) is exactly what the paper's
//! schemes need: compute, shared access, sync-variable set / atomic
//! increment / busy-wait.
//!
//! # Examples
//!
//! A producer/consumer pair over the dedicated sync bus:
//!
//! ```
//! use datasync_sim::config::MachineConfig;
//! use datasync_sim::machine::{run, Workload};
//! use datasync_sim::program::{Instr, Pred, Program};
//!
//! let producer = Program::from_instrs(vec![
//!     Instr::Compute(10),
//!     Instr::SyncSet { var: 0, val: 1 },
//! ]);
//! let consumer = Program::from_instrs(vec![
//!     Instr::SyncWait { var: 0, pred: Pred::Geq(1) },
//!     Instr::Compute(5),
//! ]);
//! let workload = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
//! let out = run(&MachineConfig::with_processors(2), &workload)?;
//! assert!(out.stats.makespan >= 15);
//! # Ok::<(), datasync_sim::machine::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod config;
pub mod events;
pub mod faults;
pub mod machine;
pub mod metrics;
pub mod program;
pub mod recovery;
pub mod rng;
pub mod stats;
pub mod timeline;
pub mod trace;

pub use chrome::render as render_chrome_trace;
pub use config::{
    CacheModel, CoherenceProtocol, FabricKind, MachineConfig, MemoryModel, SyncTransport,
};
pub use events::{EventRing, SimEvent, SimEventKind};
pub use faults::{FaultClass, FaultCounts, FaultPlan};
pub use machine::{
    run, run_reference, DedicatedBus, DispatchMode, IdealFabric, Machine, RunOutcome,
    SharedDataBus, SimError, StepMode, SyncFabric, Workload,
};
pub use metrics::{CacheTraffic, RunMetrics, VarTraffic, WaitHistogram};
pub use program::{pack_pc, unpack_pc, Instr, Label, Pred, Program, SyncVar};
pub use recovery::{RecoveryCounts, RecoveryPolicy, WaitEdge};
pub use rng::SplitMix64;
pub use stats::{ProcBreakdown, RunStats};
pub use timeline::{render as render_timeline, spans as trace_spans, Span};
pub use trace::{FaultEvent, OrderViolation, Trace, TraceEvent};

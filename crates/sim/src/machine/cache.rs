//! Private per-processor caches with snooping coherence, interposed
//! between instruction issue and the data-bus queue.
//!
//! The cache layer is a **timing and traffic model only**: every value
//! still lives in (and is read from) the authoritative global state, so
//! the functional outcome of a run never depends on cache contents.
//! Consistency of that shortcut follows from the protocols themselves —
//! a write to a cached line either invalidates (MESI) or updates
//! (Dragon) every other copy in the same completion that performs the
//! global write, so no processor can *hit* on a line whose value a
//! bus-ordered writer has already replaced.
//!
//! What the layer changes is exactly what the paper's Section 6 argues
//! about: which requests occupy the data bus, for how long, and how
//! synchronization hot-spots behave. A busy-wait that hits in its own
//! cache costs [`CacheSystem::hit_latency`] cycles and zero bus traffic
//! (the software analogue of the dedicated sync bus's local images); a
//! keyed access ping-pongs the key line between owners (MESI) or floods
//! update broadcasts (Dragon).
//!
//! Transaction vocabulary, carried on [`DataReq::coh`]:
//!
//! * [`Coh::Fill`] — BusRd / BusRdX: fetch a line, from memory or
//!   cache-to-cache when a snooping owner has it; a write-fill also
//!   performs the protocol's write action (invalidate or update the
//!   other copies) in the same bus tenure.
//! * [`Coh::Upgrade`] — MESI ownership upgrade of an already-cached
//!   Shared line (address-only transaction, no memory involvement).
//! * [`Coh::Update`] — Dragon BusUpd: broadcast the written word into
//!   the other caches' copies (no memory involvement).
//! * [`Coh::Writeback`] — a dirty victim flushed to memory on eviction
//!   (a [`DataReqKind::Coherence`] request with no waiting processor).
//!
//! MESI here uses the four classic states; Dragon uses
//! Exclusive/SharedClean/SharedModified/Modified with Invalid standing
//! in for "not present". Both are driven by the same five events (read
//! hit, write hit, read miss, write miss, snoop) so the unit tests can
//! walk every edge directly against a [`CacheSystem`].

use super::memory::{DataReq, DataReqKind};
use super::Machine;
use crate::config::{CacheModel, CoherenceProtocol};

/// Sync-variable requests are cached under a key far above any data
/// address, so a sync line never aliases a shared-data line.
const SYNC_KEY_BASE: u64 = 1 << 48;

/// One cache line's coherence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum LineState {
    /// Not present (both protocols).
    #[default]
    Invalid,
    /// MESI: present in this cache and possibly others, clean.
    Shared,
    /// Present only here, clean (both protocols).
    Exclusive,
    /// Present only here, dirty (both protocols).
    Modified,
    /// Dragon: present in several caches, memory up to date.
    SharedClean,
    /// Dragon: present in several caches, this copy is the dirty owner.
    SharedModified,
}

impl LineState {
    fn valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    fn dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::SharedModified)
    }
}

/// One line slot: full line address as tag plus an LRU stamp.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    state: LineState,
    stamp: u64,
}

/// How a cache lookup classified a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lookup {
    /// Served locally (read hit anywhere valid; write hit on an
    /// exclusive-or-dirty line, with the silent E→M transition already
    /// applied). No bus transaction.
    Hit,
    /// MESI write hit on a Shared line: needs an address-only ownership
    /// upgrade on the bus.
    Upgrade,
    /// Dragon write hit on a shared line: needs a BusUpd broadcast.
    Update,
    /// Not present: needs a fill into the chosen victim way.
    Miss {
        /// Victim way within the set (invalid-first, else LRU).
        way: u16,
    },
}

/// All private caches plus the pending completions of local hits.
#[derive(Debug)]
pub(crate) struct CacheSystem {
    /// Whether any cache hardware is modeled (false = every request
    /// passes straight to the bus queue, bit-identical to the
    /// cacheless machine).
    pub(crate) enabled: bool,
    protocol: CoherenceProtocol,
    sets: usize,
    assoc: usize,
    line_words: u64,
    cache_sync: bool,
    /// Cycles a local hit costs the requesting processor.
    hit_latency: u64,
    /// Bus-held cycles a cache-to-cache transfer costs beyond the
    /// request phase (a fraction of the memory latency it avoids).
    pub(crate) c2c_latency: u64,
    /// Flat `[proc][set][way]` line array.
    lines: Vec<Line>,
    /// LRU clock, bumped on every touch/install.
    tick: u64,
    /// Per-processor local-hit completion: the request and its due
    /// cycle (at most one outstanding request per processor).
    pub(crate) pending: Vec<Option<(DataReq, u64)>>,
    /// Lower bound on the earliest pending due cycle (`u64::MAX` when
    /// none), for the fast-forward channel horizon.
    pub(crate) pending_min: u64,
    /// Exact count of pending local hits.
    pub(crate) pending_count: usize,
}

impl CacheSystem {
    /// Builds the cache layer for `procs` processors (disabled and
    /// empty under [`CacheModel::None`]).
    pub(crate) fn new(model: &CacheModel, procs: usize, memory_latency: u32) -> Self {
        match *model {
            CacheModel::None => Self {
                enabled: false,
                protocol: CoherenceProtocol::Mesi,
                sets: 0,
                assoc: 0,
                line_words: 1,
                cache_sync: false,
                hit_latency: 1,
                c2c_latency: 1,
                lines: Vec::new(),
                tick: 0,
                pending: Vec::new(),
                pending_min: u64::MAX,
                pending_count: 0,
            },
            CacheModel::Private { protocol, sets, assoc, line_words, cache_sync, hit_latency } => {
                Self {
                    enabled: true,
                    protocol,
                    sets: sets as usize,
                    assoc: assoc as usize,
                    line_words: u64::from(line_words),
                    cache_sync,
                    hit_latency: u64::from(hit_latency),
                    c2c_latency: u64::from(memory_latency / 2).max(1),
                    lines: vec![Line::default(); procs * sets as usize * assoc as usize],
                    tick: 0,
                    pending: vec![None; procs],
                    pending_min: u64::MAX,
                    pending_count: 0,
                }
            }
        }
    }

    /// The cacheable key of a request (`None` = bypasses the caches).
    /// Shared accesses key on their address; sync-variable operations
    /// key on the variable when sync caching is on.
    pub(crate) fn key_of(&self, req: &DataReq) -> Option<u64> {
        match req.kind {
            DataReqKind::Access { .. } => Some(req.addr),
            DataReqKind::Coherence => None,
            _ if self.cache_sync => Some(SYNC_KEY_BASE | req.addr),
            _ => None,
        }
    }

    /// The line address a request's key falls on.
    pub(crate) fn line_of(&self, key: u64) -> u64 {
        key / self.line_words
    }

    fn base(&self, proc: usize, line_addr: u64) -> usize {
        let set = (line_addr as usize) % self.sets;
        (proc * self.sets + set) * self.assoc
    }

    fn find(&self, proc: usize, line_addr: u64) -> Option<usize> {
        let base = self.base(proc, line_addr);
        (base..base + self.assoc)
            .find(|&i| self.lines[i].state.valid() && self.lines[i].tag == line_addr)
    }

    /// Classifies a request against `proc`'s cache, touching LRU state
    /// and applying the silent E→M transition on an exclusive write
    /// hit. Called exactly once per issued request.
    pub(crate) fn classify(&mut self, proc: usize, line_addr: u64, write: bool) -> Lookup {
        if let Some(i) = self.find(proc, line_addr) {
            self.tick += 1;
            self.lines[i].stamp = self.tick;
            if !write {
                return Lookup::Hit;
            }
            return match self.lines[i].state {
                LineState::Modified => Lookup::Hit,
                LineState::Exclusive => {
                    self.lines[i].state = LineState::Modified;
                    Lookup::Hit
                }
                LineState::Shared => Lookup::Upgrade,
                LineState::SharedClean | LineState::SharedModified => Lookup::Update,
                LineState::Invalid => unreachable!("find returns only valid lines"),
            };
        }
        let base = self.base(proc, line_addr);
        let way = (base..base + self.assoc)
            .min_by_key(|&i| {
                if self.lines[i].state.valid() {
                    self.lines[i].stamp
                } else {
                    0 // invalid ways first
                }
            })
            .expect("assoc >= 1");
        Lookup::Miss { way: (way - base) as u16 }
    }

    /// Whether any *other* processor holds the line — the snoop that
    /// decides cache-to-cache supply at grant time.
    pub(crate) fn snoop_has(&self, line_addr: u64, not_proc: usize) -> bool {
        (0..self.pending.len()).any(|p| p != not_proc && self.find(p, line_addr).is_some())
    }

    /// Applies a completed fill into `proc`'s chosen way: evicts the
    /// victim (returning its line address when it was dirty and must be
    /// written back), installs the line in the protocol-correct state,
    /// and runs the snoop action on every other copy. Returns
    /// `(dirty_victim, invalidated, updated)`.
    pub(crate) fn apply_fill(
        &mut self,
        proc: usize,
        line_addr: u64,
        way: u16,
        write: bool,
    ) -> (Option<u64>, u64, bool) {
        let slot = self.base(proc, line_addr) + way as usize;
        let victim = &self.lines[slot];
        let dirty_victim = (victim.state.dirty() && victim.tag != line_addr).then_some(victim.tag);
        let (invalidated, sharers) = self.snoop(proc, line_addr, write);
        let state = match (self.protocol, write, sharers > 0) {
            (CoherenceProtocol::Mesi, true, _) => LineState::Modified,
            (CoherenceProtocol::Mesi, false, true) => LineState::Shared,
            (CoherenceProtocol::Dragon, true, true) => LineState::SharedModified,
            (CoherenceProtocol::Dragon, true, false) => LineState::Modified,
            (CoherenceProtocol::Dragon, false, true) => LineState::SharedClean,
            (_, false, false) => LineState::Exclusive,
        };
        self.tick += 1;
        self.lines[slot] = Line { tag: line_addr, state, stamp: self.tick };
        let updated = write && self.protocol == CoherenceProtocol::Dragon && sharers > 0;
        (dirty_victim, invalidated, updated)
    }

    /// Applies a completed MESI ownership upgrade: the requester's copy
    /// becomes Modified, every other copy is invalidated. The
    /// requester's tag always still matches — a concurrent writer may
    /// have *invalidated* the slot while the upgrade was queued (the
    /// upgrade then doubles as the refetch, its bus tenure already
    /// paid), but only the owning processor ever replaces its own
    /// slots, and it is blocked on this very transaction.
    pub(crate) fn apply_upgrade(&mut self, proc: usize, line_addr: u64) -> u64 {
        let (invalidated, _) = self.snoop(proc, line_addr, true);
        let slot = self.find(proc, line_addr).unwrap_or_else(|| {
            let base = self.base(proc, line_addr);
            (base..base + self.assoc)
                .find(|&i| self.lines[i].tag == line_addr)
                .expect("an upgraded line's slot is never reused by its owner")
        });
        self.tick += 1;
        self.lines[slot].state = LineState::Modified;
        self.lines[slot].stamp = self.tick;
        invalidated
    }

    /// Applies a completed Dragon BusUpd: other copies take the written
    /// word (demoting any dirty owner to SharedClean); the requester
    /// becomes the SharedModified owner, or plain Modified if every
    /// other copy was evicted while the update was queued.
    pub(crate) fn apply_update(&mut self, proc: usize, line_addr: u64) {
        let (_, sharers) = self.snoop(proc, line_addr, true);
        if let Some(slot) = self.find(proc, line_addr) {
            self.tick += 1;
            self.lines[slot].state =
                if sharers > 0 { LineState::SharedModified } else { LineState::Modified };
            self.lines[slot].stamp = self.tick;
        }
    }

    /// Runs the snoop action of a bus transaction on every cache except
    /// the requester's. Returns `(lines invalidated, copies remaining)`.
    fn snoop(&mut self, requester: usize, line_addr: u64, write: bool) -> (u64, u64) {
        let mut invalidated = 0;
        let mut sharers = 0;
        for p in 0..self.pending.len() {
            if p == requester {
                continue;
            }
            let Some(i) = self.find(p, line_addr) else { continue };
            match (self.protocol, write) {
                // MESI write (BusRdX / upgrade): every other copy dies.
                (CoherenceProtocol::Mesi, true) => {
                    self.lines[i].state = LineState::Invalid;
                    invalidated += 1;
                }
                // MESI read: owners and exclusives demote to Shared
                // (a dirty owner supplies the data cache-to-cache).
                (CoherenceProtocol::Mesi, false) => {
                    self.lines[i].state = LineState::Shared;
                    sharers += 1;
                }
                // Dragon write (BusUpd / write-fill): the written word
                // lands in every copy; any previous dirty owner hands
                // ownership to the writer and keeps a clean copy.
                (CoherenceProtocol::Dragon, true) => {
                    self.lines[i].state = LineState::SharedClean;
                    sharers += 1;
                }
                // Dragon read: exclusives demote to SharedClean, dirty
                // owners to SharedModified (they keep ownership).
                (CoherenceProtocol::Dragon, false) => {
                    self.lines[i].state = match self.lines[i].state {
                        LineState::Modified | LineState::SharedModified => {
                            LineState::SharedModified
                        }
                        _ => LineState::SharedClean,
                    };
                    sharers += 1;
                }
            }
        }
        (invalidated, sharers)
    }

    /// The coherence state of `proc`'s copy of a line (tests only).
    #[cfg(test)]
    pub(crate) fn state_of(&self, proc: usize, line_addr: u64) -> LineState {
        self.find(proc, line_addr).map_or(LineState::Invalid, |i| self.lines[i].state)
    }
}

impl<'a> Machine<'a> {
    /// Routes a data-path request through the issuing processor's
    /// private cache: local hits schedule a pending completion after
    /// the hit latency; everything else (misses, upgrades, updates,
    /// uncacheable requests, the cacheless machine) joins the bus
    /// queue. Every site that previously pushed to `mem.queue` issues
    /// through here.
    pub(crate) fn issue_data(&mut self, mut req: DataReq) {
        if !self.cache.enabled {
            self.mem.queue.push_back(req);
            return;
        }
        let Some(key) = self.cache.key_of(&req) else {
            self.mem.queue.push_back(req);
            return;
        };
        let line = self.cache.line_of(key);
        match self.cache.classify(req.proc, line, req.kind.is_write()) {
            Lookup::Hit => {
                self.metrics.cache.hits += 1;
                let due = self.cycle + self.cache.hit_latency;
                debug_assert!(self.cache.pending[req.proc].is_none(), "one outstanding per proc");
                self.cache.pending[req.proc] = Some((req, due));
                self.cache.pending_min = self.cache.pending_min.min(due);
                self.cache.pending_count += 1;
            }
            Lookup::Upgrade => {
                req.coh = Coh::Upgrade;
                self.mem.queue.push_back(req);
            }
            Lookup::Update => {
                req.coh = Coh::Update;
                self.mem.queue.push_back(req);
            }
            Lookup::Miss { way } => {
                self.metrics.cache.misses += 1;
                req.coh = Coh::Fill { way, c2c: false };
                self.mem.queue.push_back(req);
            }
        }
    }

    /// Completes every local cache hit due by the current cycle,
    /// applying its data effect exactly as a bus completion would.
    /// Runs before bus/bank completions each stepped cycle.
    pub(crate) fn complete_cache_pending(&mut self) {
        if self.cache.pending_min > self.cycle {
            return;
        }
        for p in 0..self.cache.pending.len() {
            if let Some((req, due)) = self.cache.pending[p] {
                if due <= self.cycle {
                    self.cache.pending[p] = None;
                    self.cache.pending_count -= 1;
                    self.apply_data_effect(req);
                }
            }
        }
        // Recompute from scratch: an applied effect can schedule a new
        // pending hit (a ReadCheck's follow-up write hitting locally).
        self.cache.pending_min = self
            .cache
            .pending
            .iter()
            .flatten()
            .map(|&(_, due)| due)
            .min()
            .unwrap_or(u64::MAX);
    }

    /// Applies the cache-state side of a completed bus transaction:
    /// fills (with victim writeback), upgrades and updates, plus their
    /// traffic counters. Called from `apply_data_effect` before the
    /// functional effect.
    pub(crate) fn cache_complete(&mut self, req: &DataReq) {
        let line = match self.cache.key_of(req) {
            Some(key) => self.cache.line_of(key),
            None => return, // writebacks carry no cache transition
        };
        match req.coh {
            Coh::Uncached | Coh::Writeback => {}
            Coh::Fill { way, c2c } => {
                let write = req.kind.is_write();
                let (dirty_victim, invalidated, updated) =
                    self.cache.apply_fill(req.proc, line, way, write);
                self.metrics.cache.invalidations += invalidated;
                if updated {
                    // Dragon write-fill with sharers: the update rides
                    // the same bus tenure as the fill.
                    self.metrics.cache.updates += 1;
                }
                if c2c {
                    self.metrics.cache.c2c_transfers += 1;
                }
                if let Some(victim_line) = dirty_victim {
                    self.metrics.cache.writebacks += 1;
                    self.mem.queue.push_back(DataReq {
                        proc: req.proc,
                        kind: DataReqKind::Coherence,
                        addr: victim_line * self.cache.line_words,
                        coh: Coh::Writeback,
                    });
                }
            }
            Coh::Upgrade => {
                self.metrics.cache.upgrades += 1;
                self.metrics.cache.invalidations += self.cache.apply_upgrade(req.proc, line);
            }
            Coh::Update => {
                self.metrics.cache.updates += 1;
                self.cache.apply_update(req.proc, line);
            }
        }
    }
}

/// The coherence action a queued bus request carries (decided at issue,
/// refined at grant when the snoop chooses cache-to-cache supply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum Coh {
    /// No cache involvement: the cacheless machine, uncacheable sync
    /// requests, and local-hit completions.
    #[default]
    Uncached,
    /// Line fetch (BusRd/BusRdX) into the victim `way`; `c2c` is set at
    /// grant when a snooping owner supplies the line bus-to-bus.
    Fill {
        /// Victim way chosen at issue time.
        way: u16,
        /// Served cache-to-cache instead of from memory.
        c2c: bool,
    },
    /// MESI address-only ownership upgrade.
    Upgrade,
    /// Dragon BusUpd word broadcast.
    Update,
    /// Dirty-victim flush to memory.
    Writeback,
}

impl Coh {
    /// Whether the transaction completes at the bus and never touches a
    /// memory bank (relevant under [`crate::config::MemoryModel::Banked`]).
    pub(crate) fn bus_only(self) -> bool {
        matches!(self, Coh::Upgrade | Coh::Update | Coh::Fill { c2c: true, .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Pred;

    fn sys(protocol: CoherenceProtocol, procs: usize) -> CacheSystem {
        let model = CacheModel::Private {
            protocol,
            sets: 4,
            assoc: 2,
            line_words: 4,
            cache_sync: true,
            hit_latency: 1,
        };
        CacheSystem::new(&model, procs, 4)
    }

    fn read_fill(c: &mut CacheSystem, proc: usize, line: u64) {
        let Lookup::Miss { way } = c.classify(proc, line, false) else { panic!("expected a miss") };
        c.apply_fill(proc, line, way, false);
    }

    fn write_fill(c: &mut CacheSystem, proc: usize, line: u64) -> (Option<u64>, u64, bool) {
        let Lookup::Miss { way } = c.classify(proc, line, true) else { panic!("expected a miss") };
        c.apply_fill(proc, line, way, true)
    }

    #[test]
    fn disabled_system_is_inert() {
        let c = CacheSystem::new(&CacheModel::None, 4, 4);
        assert!(!c.enabled);
        assert_eq!(c.pending_min, u64::MAX);
        assert_eq!(c.pending_count, 0);
    }

    #[test]
    fn mesi_read_path_i_e_s() {
        let mut c = sys(CoherenceProtocol::Mesi, 2);
        // I --read miss--> E (no sharers).
        read_fill(&mut c, 0, 10);
        assert_eq!(c.state_of(0, 10), LineState::Exclusive);
        // Read hit on E stays E.
        assert_eq!(c.classify(0, 10, false), Lookup::Hit);
        assert_eq!(c.state_of(0, 10), LineState::Exclusive);
        // Second reader: both demote/install to S, snoop sees the copy.
        assert!(c.snoop_has(10, 1));
        read_fill(&mut c, 1, 10);
        assert_eq!(c.state_of(0, 10), LineState::Shared);
        assert_eq!(c.state_of(1, 10), LineState::Shared);
        // Read hit on S stays S.
        assert_eq!(c.classify(1, 10, false), Lookup::Hit);
        assert_eq!(c.state_of(1, 10), LineState::Shared);
    }

    #[test]
    fn mesi_write_path_e_m_and_s_upgrade() {
        let mut c = sys(CoherenceProtocol::Mesi, 2);
        // Silent E -> M on an exclusive write hit.
        read_fill(&mut c, 0, 10);
        assert_eq!(c.classify(0, 10, true), Lookup::Hit);
        assert_eq!(c.state_of(0, 10), LineState::Modified);
        // Write hit on M stays M.
        assert_eq!(c.classify(0, 10, true), Lookup::Hit);
        // Shared write hit needs an upgrade; completion invalidates the
        // other copy and takes M.
        read_fill(&mut c, 1, 10); // 0: M -> S (c2c), 1: S
        assert_eq!(c.state_of(0, 10), LineState::Shared);
        assert_eq!(c.classify(1, 10, true), Lookup::Upgrade);
        let invalidated = c.apply_upgrade(1, 10);
        assert_eq!(invalidated, 1);
        assert_eq!(c.state_of(0, 10), LineState::Invalid);
        assert_eq!(c.state_of(1, 10), LineState::Modified);
    }

    #[test]
    fn mesi_write_miss_invalidates_all_copies() {
        let mut c = sys(CoherenceProtocol::Mesi, 3);
        read_fill(&mut c, 0, 10);
        read_fill(&mut c, 1, 10);
        // BusRdX from proc 2: both copies die, writer takes M.
        let (victim, invalidated, updated) = write_fill(&mut c, 2, 10);
        assert_eq!(victim, None);
        assert_eq!(invalidated, 2);
        assert!(!updated);
        assert_eq!(c.state_of(0, 10), LineState::Invalid);
        assert_eq!(c.state_of(1, 10), LineState::Invalid);
        assert_eq!(c.state_of(2, 10), LineState::Modified);
    }

    #[test]
    fn mesi_read_miss_demotes_dirty_owner() {
        let mut c = sys(CoherenceProtocol::Mesi, 2);
        write_fill(&mut c, 0, 10);
        assert_eq!(c.state_of(0, 10), LineState::Modified);
        // Snooped read: owner supplies and demotes M -> S.
        read_fill(&mut c, 1, 10);
        assert_eq!(c.state_of(0, 10), LineState::Shared);
        assert_eq!(c.state_of(1, 10), LineState::Shared);
    }

    #[test]
    fn dragon_read_path_e_sc_and_owner_sm() {
        let mut c = sys(CoherenceProtocol::Dragon, 3);
        read_fill(&mut c, 0, 10);
        assert_eq!(c.state_of(0, 10), LineState::Exclusive);
        // Second reader: E -> Sc on the holder, Sc on the reader.
        read_fill(&mut c, 1, 10);
        assert_eq!(c.state_of(0, 10), LineState::SharedClean);
        assert_eq!(c.state_of(1, 10), LineState::SharedClean);
        // A dirty owner keeps ownership on a snooped read: M -> Sm.
        let mut d = sys(CoherenceProtocol::Dragon, 2);
        write_fill(&mut d, 0, 20);
        assert_eq!(d.state_of(0, 20), LineState::Modified);
        read_fill(&mut d, 1, 20);
        assert_eq!(d.state_of(0, 20), LineState::SharedModified);
        assert_eq!(d.state_of(1, 20), LineState::SharedClean);
    }

    #[test]
    fn dragon_write_hit_broadcasts_update_not_invalidate() {
        let mut c = sys(CoherenceProtocol::Dragon, 2);
        read_fill(&mut c, 0, 10);
        read_fill(&mut c, 1, 10);
        // Write hit on Sc: BusUpd, no invalidation; writer becomes the
        // Sm owner, the other copy stays valid as Sc.
        assert_eq!(c.classify(0, 10, true), Lookup::Update);
        c.apply_update(0, 10);
        assert_eq!(c.state_of(0, 10), LineState::SharedModified);
        assert_eq!(c.state_of(1, 10), LineState::SharedClean);
        // Write hit on Sm: still an update while sharers remain.
        assert_eq!(c.classify(0, 10, true), Lookup::Update);
        // Ownership migrates on a competing update: the old Sm owner
        // demotes to Sc.
        assert_eq!(c.classify(1, 10, true), Lookup::Update);
        c.apply_update(1, 10);
        assert_eq!(c.state_of(1, 10), LineState::SharedModified);
        assert_eq!(c.state_of(0, 10), LineState::SharedClean);
    }

    #[test]
    fn dragon_update_with_no_remaining_sharers_takes_m() {
        let mut c = sys(CoherenceProtocol::Dragon, 2);
        read_fill(&mut c, 0, 10);
        read_fill(&mut c, 1, 10);
        assert_eq!(c.classify(0, 10, true), Lookup::Update);
        // Proc 1 evicts its copy before the update completes: fill the
        // same set's both ways with other lines (set = line % 4).
        read_fill(&mut c, 1, 14);
        read_fill(&mut c, 1, 18);
        assert_eq!(c.state_of(1, 10), LineState::Invalid);
        c.apply_update(0, 10);
        assert_eq!(c.state_of(0, 10), LineState::Modified);
    }

    #[test]
    fn dragon_write_miss_with_sharers_updates_them() {
        let mut c = sys(CoherenceProtocol::Dragon, 3);
        read_fill(&mut c, 0, 10);
        read_fill(&mut c, 1, 10);
        let (_, invalidated, updated) = write_fill(&mut c, 2, 10);
        assert_eq!(invalidated, 0);
        assert!(updated);
        assert_eq!(c.state_of(2, 10), LineState::SharedModified);
        assert_eq!(c.state_of(0, 10), LineState::SharedClean);
        assert_eq!(c.state_of(1, 10), LineState::SharedClean);
    }

    #[test]
    fn dirty_victim_eviction_reports_writeback() {
        let mut c = sys(CoherenceProtocol::Mesi, 1);
        // Lines 2, 6, 10 all land in set 2 (assoc 2): the third fill
        // evicts the LRU victim.
        write_fill(&mut c, 0, 2);
        read_fill(&mut c, 0, 6);
        let (victim, _, _) = write_fill(&mut c, 0, 10);
        assert_eq!(victim, Some(2), "dirty LRU line 2 must be written back");
        assert_eq!(c.state_of(0, 2), LineState::Invalid);
        // A clean victim needs no writeback.
        let (victim, _, _) = write_fill(&mut c, 0, 14);
        assert_eq!(victim, None, "line 6 was clean");
    }

    #[test]
    fn lru_prefers_invalid_then_oldest() {
        let mut c = sys(CoherenceProtocol::Mesi, 1);
        read_fill(&mut c, 0, 2);
        // Touch line 2 so it is the newest, then fill line 6.
        assert_eq!(c.classify(0, 2, false), Lookup::Hit);
        read_fill(&mut c, 0, 6);
        // Next miss in the set evicts line 2? No — line 6 is newer than
        // the re-touched... line 2 was touched before 6 was installed,
        // so 2 is the LRU victim.
        let Lookup::Miss { way } = c.classify(0, 10, false) else { panic!() };
        let base_tag = {
            c.apply_fill(0, 10, way, false);
            c.state_of(0, 2)
        };
        assert_eq!(base_tag, LineState::Invalid, "LRU line 2 evicted");
        assert_eq!(c.state_of(0, 6), LineState::Exclusive);
    }

    #[test]
    fn sync_keys_do_not_alias_data_addresses() {
        let c = sys(CoherenceProtocol::Mesi, 1);
        let data = DataReq::new(0, DataReqKind::Access { write: false }, 3);
        let sync = DataReq::new(0, DataReqKind::Poll { var: 3, pred: Pred::Geq(1) }, 3);
        let (dk, sk) = (c.key_of(&data).unwrap(), c.key_of(&sync).unwrap());
        assert_ne!(c.line_of(dk), c.line_of(sk));
        // Writebacks never re-enter the cache.
        let wb = DataReq { proc: 0, kind: DataReqKind::Coherence, addr: 0, coh: Coh::Writeback };
        assert_eq!(c.key_of(&wb), None);
    }

    #[test]
    fn sync_caching_can_be_disabled() {
        let model = CacheModel::Private {
            protocol: CoherenceProtocol::Mesi,
            sets: 4,
            assoc: 2,
            line_words: 4,
            cache_sync: false,
            hit_latency: 1,
        };
        let c = CacheSystem::new(&model, 2, 4);
        let sync = DataReq::new(0, DataReqKind::SyncRmw { var: 1 }, 1);
        assert_eq!(c.key_of(&sync), None, "uncached sync bypasses the cache");
        let data = DataReq::new(0, DataReqKind::Access { write: true }, 8);
        assert!(c.key_of(&data).is_some(), "data is still cacheable");
    }

    #[test]
    fn bus_only_classification() {
        assert!(Coh::Upgrade.bus_only());
        assert!(Coh::Update.bus_only());
        assert!(Coh::Fill { way: 0, c2c: true }.bus_only());
        assert!(!Coh::Fill { way: 0, c2c: false }.bus_only());
        assert!(!Coh::Writeback.bus_only());
        assert!(!Coh::Uncached.bus_only());
    }
}

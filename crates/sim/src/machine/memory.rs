//! The memory subsystem: data-bus arbitration, interleaved memory
//! banks, and the globally-performed effects of data-path requests
//! (shared accesses, through-memory sync operations, busy-wait polls).

use super::cache::Coh;
use super::{Machine, ProcState, SpinPhase};
use crate::config::MemoryModel;
use crate::events::SimEventKind;
use crate::faults::FaultClass;
use crate::program::{Pred, SyncVar};
use std::collections::VecDeque;

/// A data-path request kind (what happens when memory performs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataReqKind {
    Access {
        write: bool,
    },
    /// A pure coherence transaction (dirty-victim writeback): occupies
    /// the bus/bank like a write but has no waiting processor and no
    /// globally-performed effect.
    Coherence,
    SyncWrite {
        var: SyncVar,
        val: u64,
    },
    SyncRmw {
        var: SyncVar,
    },
    Poll {
        var: SyncVar,
        pred: Pred,
    },
    /// Read for a conditional write: on completion, a write of `val` is
    /// issued only when the value read is `>= guard`.
    ReadCheck {
        var: SyncVar,
        guard: u64,
        val: u64,
    },
    /// One attempt of a Cedar-style keyed access: test-and-(access +
    /// increment) in a single memory transaction; retries on failure.
    KeyedAttempt {
        var: SyncVar,
        geq: u64,
    },
}

impl DataReqKind {
    /// Whether the request writes memory — what decides between a
    /// shared fetch and an exclusive/updating one in the cache layer.
    /// Keyed attempts are pessimistically writes (each attempt is a
    /// test-and-set-style transaction that takes the line exclusively,
    /// which is exactly the ping-pong the paper's Section 3 worries
    /// about); polls and guard reads are reads.
    pub(crate) fn is_write(self) -> bool {
        match self {
            DataReqKind::Access { write } => write,
            DataReqKind::SyncWrite { .. }
            | DataReqKind::SyncRmw { .. }
            | DataReqKind::KeyedAttempt { .. }
            | DataReqKind::Coherence => true,
            DataReqKind::Poll { .. } | DataReqKind::ReadCheck { .. } => false,
        }
    }
}

/// Interleaving address of a re-issued spin request.
pub(crate) fn retry_addr(kind: DataReqKind) -> u64 {
    match kind {
        DataReqKind::Poll { var, .. }
        | DataReqKind::SyncWrite { var, .. }
        | DataReqKind::SyncRmw { var }
        | DataReqKind::ReadCheck { var, .. }
        | DataReqKind::KeyedAttempt { var, .. } => var as u64,
        DataReqKind::Access { .. } | DataReqKind::Coherence => 0,
    }
}

/// One queued data-path request.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DataReq {
    pub(crate) proc: usize,
    pub(crate) kind: DataReqKind,
    /// Address used for memory-bank interleaving (sync vars use their
    /// index).
    pub(crate) addr: u64,
    /// Coherence action carried for the cache layer
    /// ([`Coh::Uncached`] on a cacheless machine).
    pub(crate) coh: Coh,
}

impl DataReq {
    /// A plain (cache-unrouted) request; [`Machine::issue_data`] decides
    /// its coherence action.
    pub(crate) fn new(proc: usize, kind: DataReqKind, addr: u64) -> Self {
        Self { proc, kind, addr, coh: Coh::Uncached }
    }
}

/// One interleaved memory module (only used by [`MemoryModel::Banked`]).
#[derive(Debug, Default)]
pub(crate) struct Bank {
    pub(crate) active: Option<(DataReq, u64)>,
    pub(crate) queue: VecDeque<DataReq>,
}

/// Data-bus arbitration state plus the memory banks behind it.
#[derive(Debug)]
pub(crate) struct MemorySystem {
    /// FIFO of requests waiting for the data bus.
    pub(crate) queue: VecDeque<DataReq>,
    /// The transaction currently holding the bus, with its end cycle.
    pub(crate) active: Option<(DataReq, u64)>,
    /// Interleaved memory modules (empty under [`MemoryModel::BusHeld`]).
    pub(crate) banks: Vec<Bank>,
}

impl MemorySystem {
    /// An idle memory system with `n_banks` interleaved modules.
    pub(crate) fn new(n_banks: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            active: None,
            banks: (0..n_banks).map(|_| Bank::default()).collect(),
        }
    }

    /// Whether any bank is serving or holding queued requests.
    pub(crate) fn banks_pending(&self) -> bool {
        self.banks.iter().any(|b| b.active.is_some() || !b.queue.is_empty())
    }
}

impl<'a> Machine<'a> {
    /// Completes the data-bus transaction and any bank services ending
    /// this cycle, applying their effects.
    pub(crate) fn complete_data(&mut self) {
        if self.cache.enabled {
            self.complete_cache_pending();
        }
        if let Some((req, end)) = self.mem.active {
            if end == self.cycle {
                self.mem.active = None;
                match self.config.memory_model {
                    MemoryModel::BusHeld => self.apply_data_effect(req),
                    MemoryModel::Banked { .. } if req.coh.bus_only() => {
                        // Served at the bus (cache-to-cache supply or an
                        // address/word-only coherence broadcast): never
                        // touches a memory bank.
                        self.apply_data_effect(req);
                    }
                    MemoryModel::Banked { banks } => {
                        // Bus phase done: hand the request to its bank.
                        let bank = (req.addr % banks as u64) as usize;
                        let depth = self.mem.banks[bank].queue.len()
                            + usize::from(self.mem.banks[bank].active.is_some());
                        if depth > 0 {
                            self.metrics.bank_conflicts += 1;
                            self.events
                                .record(self.cycle, SimEventKind::BankConflict { bank, depth });
                        }
                        self.mem.banks[bank].queue.push_back(req);
                    }
                }
            }
        }
        for b in 0..self.mem.banks.len() {
            if let Some((req, end)) = self.mem.banks[b].active {
                if end == self.cycle {
                    self.mem.banks[b].active = None;
                    self.apply_data_effect(req);
                }
            }
            if self.mem.banks[b].active.is_none() {
                if let Some(req) = self.mem.banks[b].queue.pop_front() {
                    let dur = u64::from(self.config.memory_latency).max(1);
                    self.metrics.bank_busy += dur;
                    self.events.record(
                        self.cycle,
                        SimEventKind::BankService { bank: b, proc: req.proc, dur },
                    );
                    self.mem.banks[b].active = Some((req, self.cycle + dur));
                }
            }
        }
    }

    /// Grants the data bus to the next queued request, if the bus — and,
    /// under a shared fabric, the one physical bus sync traffic also
    /// rides — is free.
    pub(crate) fn grant_data(&mut self) {
        if self.mem.active.is_some() {
            return;
        }
        // One physical bus: an in-flight sync broadcast holds it.
        if self.fabric.shares_data_bus() && self.sync.active.is_some() {
            return;
        }
        let f = self.config.faults;
        if let Some(mut req) = self.mem.queue.pop_front() {
            self.stats.data_transactions += 1;
            match req.kind {
                DataReqKind::Poll { .. } => self.stats.spin_polls += 1,
                DataReqKind::SyncRmw { .. } => self.stats.rmw_ops += 1,
                _ => {}
            }
            let bus = u64::from(self.config.data_bus_latency);
            let mut dur = match self.config.memory_model {
                MemoryModel::BusHeld => bus + u64::from(self.config.memory_latency),
                MemoryModel::Banked { .. } => bus,
            };
            if let super::cache::Coh::Fill { way, .. } = req.coh {
                // The snoop happens at grant: an owning cache supplies
                // the line bus-to-bus, skipping memory entirely.
                let key = self.cache.key_of(&req).expect("a fill is always cacheable");
                let line = self.cache.line_of(key);
                if self.cache.snoop_has(line, req.proc) {
                    req.coh = super::cache::Coh::Fill { way, c2c: true };
                    dur = bus + self.cache.c2c_latency;
                }
            } else if req.coh.bus_only() {
                // Upgrades and updates are address/word-only broadcasts.
                dur = bus;
            }
            if f.data_jitter_pct > 0 && self.rng.chance_pct(f.data_jitter_pct) {
                let extra = u64::from(self.rng.range_u32(1, f.data_jitter_max));
                dur += extra;
                self.stats.faults.jittered_transactions += 1;
                self.stats.faults.jitter_cycles += extra;
                self.record_fault(Some(req.proc), FaultClass::DataJitter, extra);
            }
            let poll =
                matches!(req.kind, DataReqKind::Poll { .. } | DataReqKind::KeyedAttempt { .. });
            if let DataReqKind::Poll { var, .. } | DataReqKind::KeyedAttempt { var, .. } = req.kind
            {
                self.metrics.sync_vars[var].polls += 1;
            }
            self.metrics.data_bus_busy += dur;
            self.events
                .record(self.cycle, SimEventKind::DataGrant { proc: req.proc, dur, poll });
            self.mem.active = Some((req, self.cycle + dur));
            self.note_progress();
        }
    }

    /// Applies the globally-performed effect of a data-path request.
    pub(crate) fn apply_data_effect(&mut self, req: DataReq) {
        self.note_progress();
        if self.cache.enabled {
            self.cache_complete(&req);
        }
        match req.kind {
            DataReqKind::Access { .. } => self.unblock(req.proc),
            DataReqKind::Coherence => {}
            DataReqKind::SyncWrite { var, val } => {
                self.write_sync(var, val);
                self.unblock(req.proc);
            }
            DataReqKind::SyncRmw { var } => {
                let v = self.sync.vars.global[var] + 1;
                self.write_sync(var, v);
                self.unblock(req.proc);
            }
            DataReqKind::Poll { var, pred } => {
                if pred.eval(self.sync.vars.global[var]) {
                    self.unblock(req.proc);
                } else {
                    self.procs.set_state(
                        req.proc,
                        ProcState::SpinMem {
                            retry: req.kind,
                            phase: SpinPhase::Backoff {
                                until: self.cycle + u64::from(self.config.spin_retry),
                            },
                        },
                    );
                }
            }
            DataReqKind::ReadCheck { var, guard, val } => {
                if self.sync.vars.global[var] >= guard {
                    self.metrics.sync_vars[var].posts += 1;
                    self.issue_data(DataReq::new(
                        req.proc,
                        DataReqKind::SyncWrite { var, val },
                        req.addr,
                    ));
                } else {
                    self.unblock(req.proc);
                }
            }
            DataReqKind::KeyedAttempt { var, geq } => {
                if self.sync.vars.global[var] >= geq {
                    let v = self.sync.vars.global[var] + 1;
                    self.write_sync(var, v);
                    self.stats.rmw_ops += 1;
                    self.metrics.sync_vars[var].rmws += 1;
                    self.unblock(req.proc);
                } else {
                    self.procs.set_state(
                        req.proc,
                        ProcState::SpinMem {
                            retry: req.kind,
                            phase: SpinPhase::Backoff {
                                until: self.cycle + u64::from(self.config.spin_retry),
                            },
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_addr_interleaves_on_the_sync_var() {
        assert_eq!(retry_addr(DataReqKind::Poll { var: 3, pred: Pred::Geq(1) }), 3);
        assert_eq!(retry_addr(DataReqKind::KeyedAttempt { var: 7, geq: 2 }), 7);
        assert_eq!(retry_addr(DataReqKind::Access { write: false }), 0);
    }

    #[test]
    fn memory_system_tracks_bank_pendings() {
        let mut m = MemorySystem::new(2);
        assert!(!m.banks_pending());
        m.banks[1]
            .queue
            .push_back(DataReq::new(0, DataReqKind::Access { write: false }, 1));
        assert!(m.banks_pending());
        m.banks[1].queue.clear();
        m.banks[0].active = Some((DataReq::new(0, DataReqKind::Access { write: false }, 0), 5));
        assert!(m.banks_pending());
    }

    #[test]
    fn write_classification_is_pessimistic_for_keyed_attempts() {
        assert!(DataReqKind::Access { write: true }.is_write());
        assert!(!DataReqKind::Access { write: false }.is_write());
        assert!(DataReqKind::SyncWrite { var: 0, val: 1 }.is_write());
        assert!(DataReqKind::SyncRmw { var: 0 }.is_write());
        assert!(DataReqKind::KeyedAttempt { var: 0, geq: 1 }.is_write());
        assert!(!DataReqKind::Poll { var: 0, pred: Pred::Geq(1) }.is_write());
        assert!(!DataReqKind::ReadCheck { var: 0, guard: 1, val: 2 }.is_write());
    }
}

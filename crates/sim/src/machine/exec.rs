//! Per-processor execution: the per-cycle processor step and the
//! instruction-issue path that drives the dispatch, memory, fabric and
//! recovery subsystems.

use super::memory::{retry_addr, DataReq, DataReqKind};
use super::{Machine, ProcState, SpinPhase};
use crate::config::SyncTransport;
use crate::faults::FaultClass;
use crate::program::{Instr, Pred};

impl<'a> Machine<'a> {
    /// Executes instructions for processor `p` in the current cycle.
    /// "Free" instructions (notes, posted writes, satisfied waits,
    /// zero-cost computes) retire in the same cycle; the first costly one
    /// decides how the cycle is accounted.
    pub(crate) fn step_proc(&mut self, p: usize) {
        if self.procs.is_dead(p) {
            self.procs.stats[p].dead += 1;
            return;
        }
        if self.cycle >= self.procs.fail_at[p] {
            // Fail-stop onset: this processor permanently stops
            // dispatching, retiring and answering the sync bus. Its
            // gap detector is disarmed (a dead processor NACKs nothing);
            // its unretired work stays claimed until the watchdog's
            // rescue rung reclaims it. Trace notes witnessing work that
            // already completed (a keyed access whose transaction
            // performed last cycle, say) retire for free on a live
            // processor; record them before the stop so the order the
            // hardware actually enforced is not re-stamped late by the
            // rescue path.
            self.drain_notes(p);
            self.procs.kill(p);
            self.rec.nack_due[p] = u64::MAX;
            self.stats.faults.fail_stops += 1;
            self.record_fault(Some(p), FaultClass::ProcFailStop, 0);
            self.procs.stats[p].dead += 1;
            return;
        }
        if self.config.faults.stall_mean_interval > 0 {
            if self.cycle >= self.procs.stall_until[p] && self.cycle >= self.procs.next_stall[p] {
                // Stall onset: freeze this processor for a bounded
                // interval and schedule the next onset.
                let len = u64::from(self.rng.range_u32(1, self.config.faults.stall_max));
                self.procs.stall_until[p] = self.cycle + len;
                let mean = u64::from(self.config.faults.stall_mean_interval);
                self.procs.next_stall[p] = self.procs.stall_until[p] + 1 + self.rng.below(2 * mean);
                self.procs.mark_wake(p);
                self.stats.faults.stalls += 1;
                self.stats.faults.stall_cycles += len;
                self.record_fault(Some(p), FaultClass::ProcStall, len);
            }
            if self.cycle < self.procs.stall_until[p] {
                // A stall freezes real work, but trace notes are
                // bookkeeping, not machine work: an instruction that
                // already completed (e.g. a keyed access whose
                // transaction performed this cycle) must still be
                // witnessed now, or the trace would misreport the order
                // the hardware actually enforced.
                self.drain_notes(p);
                self.procs.stats[p].stalled += 1;
                // A frozen `Ready` processor drains notes every stalled
                // cycle (its wake is "next cycle" until the freeze ends),
                // so its deadline must be re-armed each cycle.
                self.procs.mark_wake(p);
                return;
            }
            if self.cycle == self.procs.stall_until[p] {
                // Thaw cycle: the wake cached during the freeze (the
                // freeze's own end) expires now, and the processor may
                // step on without any lane write — re-arm against its
                // real deadlines (next stall onset, NACK due, ...).
                self.procs.mark_wake(p);
            }
        }
        loop {
            match self.procs.state(p) {
                ProcState::Idle => {
                    if !self.try_dispatch(p) {
                        self.procs.stats[p].idle += 1;
                        return;
                    }
                    // Dispatch may impose latency (state becomes Computing)
                    // or leave the proc Ready; loop to handle either.
                }
                ProcState::Computing { remaining } => {
                    self.procs.stats[p].busy += 1;
                    self.note_progress();
                    self.procs.tick_computing(p, remaining - 1);
                    return;
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs.stats[p].blocked += 1;
                    return;
                }
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.image(p, var)) {
                        self.close_wait(p);
                        self.procs.set_state(p, ProcState::Ready);
                        // The successful check still costs this cycle.
                        self.procs.stats[p].spin += 1;
                        return;
                    }
                    if self.cycle >= self.rec.nack_due[p] {
                        // `check_gap` re-arms (or parks) the NACK
                        // deadline this wake is keyed on.
                        self.procs.mark_wake(p);
                        self.check_gap(p, var, pred);
                    }
                    self.procs.stats[p].spin += 1;
                    return;
                }
                ProcState::SpinMem { retry, phase } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if self.cycle >= until {
                            self.issue_data(DataReq::new(p, retry, retry_addr(retry)));
                            self.procs.set_state(
                                p,
                                ProcState::SpinMem { retry, phase: SpinPhase::WaitingResult },
                            );
                        }
                    }
                    self.procs.stats[p].spin += 1;
                    return;
                }
                ProcState::Ready => {
                    // Issue the next instruction; cost (if any) is applied
                    // by the state branch on the next loop pass, so issuing
                    // does not add a cycle of its own.
                    self.execute_next_instr(p);
                }
            }
        }
    }

    /// Records any immediately-pending trace notes of a stalled (but
    /// otherwise ready) processor. Notes retire for free in normal
    /// stepping; draining them here keeps that invariant across stall
    /// onsets so completion events are never reported late.
    pub(crate) fn drain_notes(&mut self, p: usize) {
        while matches!(self.procs.state(p), ProcState::Ready) {
            let Some(prog_ix) = self.procs.current(p) else { return };
            let ip = self.procs.ip[p];
            let program = &self.workload.programs[prog_ix];
            if ip >= program.instrs.len() {
                return;
            }
            let Instr::Note(label) = program.instrs[ip] else { return };
            self.procs.ip[p] += 1;
            self.trace.record(self.cycle, p, label);
        }
    }

    /// Issues the next instruction; any cost shows up as a state change
    /// handled by [`Machine::step_proc`] in the same cycle. Sync
    /// operations on the dedicated transport go through the configured
    /// [`super::SyncFabric`] backend.
    pub(crate) fn execute_next_instr(&mut self, p: usize) {
        let prog_ix = match self.procs.current(p) {
            Some(ix) => ix,
            None => {
                self.procs.set_state(p, ProcState::Idle);
                return;
            }
        };
        let ip = self.procs.ip[p];
        let program = &self.workload.programs[prog_ix];
        if ip >= program.instrs.len() {
            self.disp.done[prog_ix] = true;
            self.disp.dirty = true;
            self.procs.set_current(p, None);
            self.procs.ip[p] = 0;
            self.procs.set_state(p, ProcState::Idle);
            return;
        }
        let instr = program.instrs[ip];
        // Everything before `ip` has retired; `instr` has not (a wait
        // that parks the processor re-executes from here, and KeyedAccess
        // rewinds `ip` itself). This is the provably-safe resume point
        // the rescue rung reads if this processor fail-stops mid-flight.
        self.procs.resume_ip[p] = ip;
        self.procs.ip[p] += 1;
        self.note_progress();
        let fabric = self.fabric;
        match instr {
            Instr::Compute(0) => {}
            Instr::Compute(c) => {
                self.procs.set_state(p, ProcState::Computing { remaining: c });
            }
            Instr::Note(label) => {
                self.trace.record(self.cycle, p, label);
            }
            Instr::Access { addr, write } => {
                self.issue_data(DataReq::new(p, DataReqKind::Access { write }, addr));
                self.procs.set_state(p, ProcState::BlockedData);
            }
            Instr::SyncSet { var, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    fabric.post(self, p, var, val);
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].posts += 1;
                    self.issue_data(DataReq::new(
                        p,
                        DataReqKind::SyncWrite { var, val },
                        var as u64,
                    ));
                    self.procs.set_state(p, ProcState::BlockedData);
                }
            },
            Instr::SyncRmw { var } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].rmws += 1;
                    if !fabric.rmw(self, p, var) {
                        self.procs.set_state(p, ProcState::BlockedSync);
                    }
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].rmws += 1;
                    self.issue_data(DataReq::new(p, DataReqKind::SyncRmw { var }, var as u64));
                    self.procs.set_state(p, ProcState::BlockedData);
                }
            },
            Instr::SyncWait { var, pred } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].waits += 1;
                    if !pred.eval(self.sync.image(p, var)) {
                        self.begin_wait(p, var, false);
                        self.procs.set_state(p, ProcState::SpinLocal { var, pred });
                    }
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].waits += 1;
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::Poll { var, pred };
                    self.issue_data(DataReq::new(p, kind, var as u64));
                    self.procs.set_state(
                        p,
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult },
                    );
                }
            },
            Instr::SyncSetIfGeq { var, guard, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync.image(p, var) >= guard {
                        fabric.post(self, p, var, val);
                    }
                }
                SyncTransport::SharedMemory => {
                    self.issue_data(DataReq::new(
                        p,
                        DataReqKind::ReadCheck { var, guard, val },
                        var as u64,
                    ));
                    self.procs.set_state(p, ProcState::BlockedData);
                }
            },
            Instr::KeyedAccess { var, geq } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync.image(p, var) >= geq {
                        self.metrics.sync_vars[var].rmws += 1;
                        if !fabric.rmw(self, p, var) {
                            self.procs.set_state(p, ProcState::BlockedSync);
                        }
                    } else {
                        // Spin on the local image, then re-issue this
                        // instruction once the key advances.
                        self.begin_wait(p, var, false);
                        self.procs.ip[p] -= 1;
                        self.procs.set_state(p, ProcState::SpinLocal { var, pred: Pred::Geq(geq) });
                    }
                }
                SyncTransport::SharedMemory => {
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::KeyedAttempt { var, geq };
                    self.issue_data(DataReq::new(p, kind, var as u64));
                    self.procs.set_state(
                        p,
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult },
                    );
                }
            },
        }
    }
}

//! Per-processor execution: the per-cycle processor step and the
//! instruction-issue path that drives the dispatch, memory, fabric and
//! recovery subsystems.

use super::memory::{retry_addr, DataReq, DataReqKind};
use super::{Machine, ProcState, SpinPhase};
use crate::config::SyncTransport;
use crate::faults::FaultClass;
use crate::program::{Instr, Pred};

impl<'a> Machine<'a> {
    /// Executes instructions for processor `p` in the current cycle.
    /// "Free" instructions (notes, posted writes, satisfied waits,
    /// zero-cost computes) retire in the same cycle; the first costly one
    /// decides how the cycle is accounted.
    pub(crate) fn step_proc(&mut self, p: usize) {
        if self.dead[p] {
            self.procs[p].stats.dead += 1;
            return;
        }
        if self.cycle >= self.fail_at[p] {
            // Fail-stop onset: this processor permanently stops
            // dispatching, retiring and answering the sync bus. Its
            // gap detector is disarmed (a dead processor NACKs nothing);
            // its unretired work stays claimed until the watchdog's
            // rescue rung reclaims it. Trace notes witnessing work that
            // already completed (a keyed access whose transaction
            // performed last cycle, say) retire for free on a live
            // processor; record them before the stop so the order the
            // hardware actually enforced is not re-stamped late by the
            // rescue path.
            self.drain_notes(p);
            self.dead[p] = true;
            self.rec.nack_due[p] = u64::MAX;
            self.stats.faults.fail_stops += 1;
            self.record_fault(Some(p), FaultClass::ProcFailStop, 0);
            self.procs[p].stats.dead += 1;
            return;
        }
        if self.config.faults.stall_mean_interval > 0 {
            if self.cycle >= self.stall_until[p] && self.cycle >= self.next_stall[p] {
                // Stall onset: freeze this processor for a bounded
                // interval and schedule the next onset.
                let len = u64::from(self.rng.range_u32(1, self.config.faults.stall_max));
                self.stall_until[p] = self.cycle + len;
                let mean = u64::from(self.config.faults.stall_mean_interval);
                self.next_stall[p] = self.stall_until[p] + 1 + self.rng.below(2 * mean);
                self.stats.faults.stalls += 1;
                self.stats.faults.stall_cycles += len;
                self.record_fault(Some(p), FaultClass::ProcStall, len);
            }
            if self.cycle < self.stall_until[p] {
                // A stall freezes real work, but trace notes are
                // bookkeeping, not machine work: an instruction that
                // already completed (e.g. a keyed access whose
                // transaction performed this cycle) must still be
                // witnessed now, or the trace would misreport the order
                // the hardware actually enforced.
                self.drain_notes(p);
                self.procs[p].stats.stalled += 1;
                return;
            }
        }
        loop {
            match self.procs[p].state {
                ProcState::Idle => {
                    if !self.try_dispatch(p) {
                        self.procs[p].stats.idle += 1;
                        return;
                    }
                    // Dispatch may impose latency (state becomes Computing)
                    // or leave the proc Ready; loop to handle either.
                }
                ProcState::Computing { remaining } => {
                    self.procs[p].stats.busy += 1;
                    self.note_progress();
                    let left = remaining - 1;
                    self.procs[p].state = if left == 0 {
                        ProcState::Ready
                    } else {
                        ProcState::Computing { remaining: left }
                    };
                    return;
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs[p].stats.blocked += 1;
                    return;
                }
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.images[p][var]) {
                        self.close_wait(p);
                        self.procs[p].state = ProcState::Ready;
                        // The successful check still costs this cycle.
                        self.procs[p].stats.spin += 1;
                        return;
                    }
                    if self.cycle >= self.rec.nack_due[p] {
                        self.check_gap(p, var, pred);
                    }
                    self.procs[p].stats.spin += 1;
                    return;
                }
                ProcState::SpinMem { retry, phase } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if self.cycle >= until {
                            self.mem.queue.push_back(DataReq {
                                proc: p,
                                kind: retry,
                                addr: retry_addr(retry),
                            });
                            self.procs[p].state =
                                ProcState::SpinMem { retry, phase: SpinPhase::WaitingResult };
                        }
                    }
                    self.procs[p].stats.spin += 1;
                    return;
                }
                ProcState::Ready => {
                    // Issue the next instruction; cost (if any) is applied
                    // by the state branch on the next loop pass, so issuing
                    // does not add a cycle of its own.
                    self.execute_next_instr(p);
                }
            }
        }
    }

    /// Records any immediately-pending trace notes of a stalled (but
    /// otherwise ready) processor. Notes retire for free in normal
    /// stepping; draining them here keeps that invariant across stall
    /// onsets so completion events are never reported late.
    pub(crate) fn drain_notes(&mut self, p: usize) {
        while matches!(self.procs[p].state, ProcState::Ready) {
            let Some(prog_ix) = self.procs[p].current else { return };
            let ip = self.procs[p].ip;
            let program = &self.workload.programs[prog_ix];
            if ip >= program.instrs.len() {
                return;
            }
            let Instr::Note(label) = program.instrs[ip] else { return };
            self.procs[p].ip += 1;
            self.trace.record(self.cycle, p, label);
        }
    }

    /// Issues the next instruction; any cost shows up as a state change
    /// handled by [`Machine::step_proc`] in the same cycle. Sync
    /// operations on the dedicated transport go through the configured
    /// [`super::SyncFabric`] backend.
    pub(crate) fn execute_next_instr(&mut self, p: usize) {
        let prog_ix = match self.procs[p].current {
            Some(ix) => ix,
            None => {
                self.procs[p].state = ProcState::Idle;
                return;
            }
        };
        let ip = self.procs[p].ip;
        let program = &self.workload.programs[prog_ix];
        if ip >= program.instrs.len() {
            self.disp.done[prog_ix] = true;
            self.procs[p].current = None;
            self.procs[p].ip = 0;
            self.procs[p].state = ProcState::Idle;
            return;
        }
        let instr = program.instrs[ip];
        // Everything before `ip` has retired; `instr` has not (a wait
        // that parks the processor re-executes from here, and KeyedAccess
        // rewinds `ip` itself). This is the provably-safe resume point
        // the rescue rung reads if this processor fail-stops mid-flight.
        self.procs[p].resume_ip = ip;
        self.procs[p].ip += 1;
        self.note_progress();
        let fabric = self.fabric;
        match instr {
            Instr::Compute(0) => {}
            Instr::Compute(c) => {
                self.procs[p].state = ProcState::Computing { remaining: c };
            }
            Instr::Note(label) => {
                self.trace.record(self.cycle, p, label);
            }
            Instr::Access { addr, write: _ } => {
                self.mem.queue.push_back(DataReq { proc: p, kind: DataReqKind::Access, addr });
                self.procs[p].state = ProcState::BlockedData;
            }
            Instr::SyncSet { var, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    fabric.post(self, p, var, val);
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].posts += 1;
                    self.mem.queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::SyncWrite { var, val },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::SyncRmw { var } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].rmws += 1;
                    if !fabric.rmw(self, p, var) {
                        self.procs[p].state = ProcState::BlockedSync;
                    }
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].rmws += 1;
                    self.mem.queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::SyncRmw { var },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::SyncWait { var, pred } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].waits += 1;
                    if !pred.eval(self.sync.images[p][var]) {
                        self.begin_wait(p, var, false);
                        self.procs[p].state = ProcState::SpinLocal { var, pred };
                    }
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].waits += 1;
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::Poll { var, pred };
                    self.mem.queue.push_back(DataReq { proc: p, kind, addr: var as u64 });
                    self.procs[p].state =
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult };
                }
            },
            Instr::SyncSetIfGeq { var, guard, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync.images[p][var] >= guard {
                        fabric.post(self, p, var, val);
                    }
                }
                SyncTransport::SharedMemory => {
                    self.mem.queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::ReadCheck { var, guard, val },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::KeyedAccess { var, geq } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync.images[p][var] >= geq {
                        self.metrics.sync_vars[var].rmws += 1;
                        if !fabric.rmw(self, p, var) {
                            self.procs[p].state = ProcState::BlockedSync;
                        }
                    } else {
                        // Spin on the local image, then re-issue this
                        // instruction once the key advances.
                        self.begin_wait(p, var, false);
                        self.procs[p].ip -= 1;
                        self.procs[p].state = ProcState::SpinLocal { var, pred: Pred::Geq(geq) };
                    }
                }
                SyncTransport::SharedMemory => {
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::KeyedAttempt { var, geq };
                    self.mem.queue.push_back(DataReq { proc: p, kind, addr: var as u64 });
                    self.procs[p].state =
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult };
                }
            },
        }
    }
}

//! The cycle-driven machine model, decomposed into layered subsystems.
//!
//! A [`Machine`] simulates `P` processors sharing a **data bus** (to the
//! memory modules) and, optionally, a **dedicated synchronization bus**
//! with a local image of every synchronization variable in each processor
//! (Section 6 of the paper). The model is deliberately simple — a single
//! arbitrated transaction at a time per bus — because that is exactly the
//! regime in which the paper's claims about traffic, hot-spots and
//! busy-waiting live.
//!
//! The machine is a thin conductor over four subsystems, each in its own
//! module and separately testable:
//!
//! * [`fabric`] — the **synchronization fabric**: global sync values,
//!   per-processor local images, the broadcast queue, and the pluggable
//!   [`SyncFabric`] transport backend (dedicated bus / shared bus /
//!   ideal oracle) that carries them;
//! * `memory` — the **memory system**: data-bus arbitration, interleaved
//!   banks and the globally-performed effects of data-path requests;
//! * `dispatch` — the **dispatcher**: self-scheduling or static
//!   iteration hand-out;
//! * `recovery_engine` — the **recovery engine**: the self-healing
//!   ladder (gap NACKs, refresh retransmission, watchdog repair) and the
//!   per-processor wait-episode bookkeeping it hangs off;
//! * `exec` — the per-processor execution step that drives all of the
//!   above through one instruction at a time.
//!
//! Determinism: processors are stepped in id order and bus queues are
//! FIFO, so a run is a pure function of the configuration and workload.
//! Fault injection ([`crate::faults::FaultPlan`]) preserves this: every
//! fault decision comes from a splitmix64 stream seeded by the plan, so
//! a faulted run is reproducible byte-for-byte from its configuration.
//!
//! Stepping: per-cycle stepping ([`StepMode::Reference`]) is the
//! executable specification, but the default execution engine is an
//! **event-driven fast-forward kernel** ([`StepMode::FastForward`]) that
//! jumps over *quiet* cycles — cycles in which the machine provably does
//! nothing but tick stat counters — directly to the next observable
//! event (transaction completion, bank completion, deferred image due
//! time, compute retirement, spin-backoff expiry, stall boundary), bulk
//! charging the skipped cycles to the same per-processor stat buckets
//! the reference stepper would have ticked. Every RNG draw and trace
//! write happens only at non-quiet cycles, so the two modes produce
//! **bit-for-bit identical** [`RunStats`], [`Trace`] and `sync_final`
//! (enforced by the equivalence tests) — under every fabric backend,
//! because both modes drive the same subsystem interfaces.
//!
//! Liveness under faults: on top of the precise [`Machine::deadlocked`]
//! check, a **progress watchdog** tracks the last cycle on which the
//! machine did anything observable (retired an instruction, performed a
//! transaction, applied an image update, dispatched). If no progress is
//! made for a bound derived from the configured latencies and fault
//! magnitudes, the run fails with [`SimError::Deadlock`] describing the
//! livelock — so even runs the precise checker cannot classify (e.g.
//! processors spinning on images that faults keep stale) terminate
//! detectably rather than burning cycles until `max_cycles`.

mod dispatch;
mod exec;
pub mod fabric;
mod memory;
mod recovery_engine;
mod workload;

pub use fabric::{DedicatedBus, IdealFabric, SharedDataBus, SyncFabric};
pub use workload::{DispatchMode, Workload};

use crate::config::{MachineConfig, MemoryModel};
use crate::events::{EventRing, SimEventKind};
use crate::faults::FaultClass;
use crate::metrics::{RunMetrics, VarTraffic};
use crate::program::{Pred, SyncVar};
use crate::rng::SplitMix64;
use crate::stats::{ProcBreakdown, RunStats};
use crate::trace::Trace;
use dispatch::Dispatcher;
use fabric::SyncState;
use memory::{DataReqKind, MemorySystem};
use recovery_engine::RecoveryEngine;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No processor can ever make progress again.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Processors stuck spinning.
        spinning: Vec<usize>,
        /// Human-readable description of each stuck processor.
        detail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    Timeout {
        /// The configured cap.
        max_cycles: u64,
    },
    /// Invalid configuration.
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, spinning, detail } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: processors {spinning:?} spin forever ({})",
                    detail.join("; ")
                )
            }
            SimError::Timeout { max_cycles } => write!(f, "exceeded {max_cycles} cycles"),
            SimError::BadConfig(msg) => write!(f, "invalid machine config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// The note trace.
    pub trace: Trace,
    /// Final values of all synchronization variables.
    pub sync_final: Vec<u64>,
    /// Derived metrics (always collected; see [`RunMetrics`]).
    pub metrics: RunMetrics,
    /// Structured events — empty unless recording was turned on with
    /// [`Machine::enable_events`].
    pub events: EventRing,
}

/// Runs a workload to completion on a machine.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] for invalid configurations,
/// [`SimError::Deadlock`] when synchronization can never be satisfied and
/// [`SimError::Timeout`] past `max_cycles`.
pub fn run(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    Machine::new(config, workload).run_to_completion()
}

/// Runs a workload with the per-cycle reference stepper (the executable
/// specification the fast-forward kernel must match bit for bit).
///
/// # Errors
///
/// See [`run`].
pub fn run_reference(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    let mut m = Machine::new(config, workload);
    m.set_mode(StepMode::Reference);
    m.run_to_completion()
}

/// How the run loop advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Event-driven: jump over provably-quiet cycles directly to the
    /// next observable event, bulk-charging the skipped cycles to the
    /// correct stat buckets. Bit-identical to [`StepMode::Reference`].
    #[default]
    FastForward,
    /// One cycle per step — the executable specification. Kept for the
    /// equivalence tests and as the trusted baseline for `datasync perf`.
    Reference,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpinPhase {
    WaitingResult,
    Backoff { until: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    Idle,
    Ready,
    Computing {
        remaining: u32,
    },
    BlockedData,
    BlockedSync,
    SpinLocal {
        var: SyncVar,
        pred: Pred,
    },
    /// Busy-wait through shared memory: `retry` is re-issued after each
    /// backoff until it succeeds.
    SpinMem {
        retry: DataReqKind,
        phase: SpinPhase,
    },
}

#[derive(Debug)]
pub(crate) struct Proc {
    pub(crate) state: ProcState,
    pub(crate) current: Option<usize>,
    pub(crate) ip: usize,
    /// Index of the instruction execution would resume from if this
    /// program had to move to another processor right now: everything
    /// before it has fully retired (re-running it would duplicate side
    /// effects), nothing at or after it has (skipping it would lose
    /// work). Maintained at dispatch and at every instruction issue;
    /// the fail-stop rescue rung reads it when reclaiming work.
    pub(crate) resume_ip: usize,
    pub(crate) stats: ProcBreakdown,
}

/// The machine state (see [`run`] for the one-shot entry point).
///
/// Borrows its configuration and workload: sweeps running thousands of
/// configurations share one `Workload` without re-allocating every
/// `Program` vector per run.
#[derive(Debug)]
pub struct Machine<'a> {
    pub(crate) config: &'a MachineConfig,
    pub(crate) workload: &'a Workload,
    mode: StepMode,
    pub(crate) cycle: u64,
    pub(crate) procs: Vec<Proc>,
    /// The synchronization-fabric backend (stateless; selected by
    /// `config.sync_fabric`).
    pub(crate) fabric: &'static dyn SyncFabric,
    /// Synchronization-transport state (global values, images, queue).
    pub(crate) sync: SyncState,
    /// Data-bus arbitration state and the memory banks behind it.
    pub(crate) mem: MemorySystem,
    /// Iteration dispatch state.
    pub(crate) disp: Dispatcher,
    /// Self-healing ladder state and wait-episode bookkeeping.
    pub(crate) rec: RecoveryEngine,
    pub(crate) stats: RunStats,
    pub(crate) trace: Trace,
    /// Fault-decision stream (seeded by `config.faults.seed`; untouched
    /// on fault-free runs, so they remain bit-identical to a machine
    /// without fault support).
    pub(crate) rng: SplitMix64,
    /// Per-processor injected-stall end cycle (0 = not stalled).
    pub(crate) stall_until: Vec<u64>,
    /// Per-processor cycle of the next stall onset (`u64::MAX` when
    /// stalls are disabled).
    pub(crate) next_stall: Vec<u64>,
    /// Per-processor planned fail-stop cycle (`u64::MAX` = never).
    /// Drawn at construction from the fault stream, so runs without
    /// fail-stop injection are bit-identical to a machine without
    /// fail-stop support.
    pub(crate) fail_at: Vec<u64>,
    /// Per-processor fail-stop flag: a dead processor never steps,
    /// dispatches or answers the sync bus again; its cycles accrue to
    /// the `dead` stat bucket.
    pub(crate) dead: Vec<bool>,
    /// Last cycle on which the machine observably progressed.
    last_progress: u64,
    /// Progress-watchdog bound (cycles of silence tolerated).
    watchdog_limit: u64,
    /// Always-on derived metrics (cheap counters, no allocation per
    /// event). Updated only at stepped cycles — part of the equivalence
    /// contract.
    pub(crate) metrics: RunMetrics,
    /// Structured event ring; disabled (capacity 0) unless
    /// [`Machine::enable_events`] was called.
    pub(crate) events: EventRing,
}

impl<'a> Machine<'a> {
    /// Builds a machine with all processors idle.
    pub fn new(config: &'a MachineConfig, workload: &'a Workload) -> Self {
        let p = config.processors;
        let n_vars = workload.n_sync_vars();
        let procs = (0..p)
            .map(|_| Proc {
                state: ProcState::Idle,
                current: None,
                ip: 0,
                resume_ip: 0,
                stats: ProcBreakdown::default(),
            })
            .collect();
        let n_banks = match config.memory_model {
            MemoryModel::BusHeld => 0,
            MemoryModel::Banked { banks } => banks,
        };
        let f = config.faults;
        let mut rng = SplitMix64::new(f.seed);
        let next_stall: Vec<u64> = (0..p)
            .map(|_| {
                if f.stall_mean_interval > 0 {
                    1 + rng.below(2 * u64::from(f.stall_mean_interval))
                } else {
                    u64::MAX
                }
            })
            .collect();
        // Fail-stop victims and kill cycles, drawn only when the class
        // is armed (plans without it leave the fault stream untouched).
        // The victim count is clamped to P - 1 so at least one processor
        // always survives to run the rescued work.
        let mut fail_at = vec![u64::MAX; p];
        if f.fail_stop_procs > 0 && p > 1 {
            let victims = (f.fail_stop_procs as usize).min(p - 1);
            let window = u64::from(f.fail_stop_window.max(1));
            let mut chosen = 0;
            while chosen < victims {
                let v = rng.below(p as u64) as usize;
                if fail_at[v] == u64::MAX {
                    fail_at[v] = 1 + rng.below(window);
                    chosen += 1;
                }
            }
        }
        // Longest legitimate silent stretch: a held (possibly delayed /
        // jittered) transaction, a spin backoff, a stall or a stale
        // window. Generously padded — tripping it means livelock. The
        // P-scaled term covers queue-drain at scale: with P processors
        // contending, a single waiter can legitimately sit behind P
        // whole bus transactions, so the silence bound must grow with
        // the machine, not stay flat.
        let watchdog_limit = 256
            + 8 * u64::from(
                config.spin_retry
                    + config.dispatch_latency
                    + config.data_bus_latency
                    + config.memory_latency
                    + config.sync_bus_latency
                    + f.broadcast_delay_max
                    + f.data_jitter_max
                    + f.stall_max
                    + f.stale_window_max,
            )
            + 2 * (p as u64)
                * u64::from(
                    config.sync_bus_latency + config.data_bus_latency + config.memory_latency,
                );
        // A waiter suspects a gap only after the longest legitimate
        // delivery path (bus grant + injected delay + stale window) has
        // comfortably elapsed; by construction this is well under the
        // watchdog limit, so all NACK tries fit before escalation.
        let nack_delay = 32
            + 4 * u64::from(config.sync_bus_latency + f.broadcast_delay_max + f.stale_window_max);
        Self {
            procs,
            cycle: 0,
            fabric: config.sync_fabric.backend(),
            sync: SyncState::new(p, n_vars),
            mem: MemorySystem::new(n_banks),
            disp: Dispatcher::new(workload, p),
            rec: RecoveryEngine::new(p, nack_delay, config.recovery.repairs()),
            stats: RunStats { procs: vec![ProcBreakdown::default(); p], ..Default::default() },
            trace: Trace::new(),
            metrics: RunMetrics::new(p, n_vars),
            events: EventRing::disabled(),
            rng,
            stall_until: vec![0; p],
            next_stall,
            fail_at,
            dead: vec![false; p],
            last_progress: 0,
            watchdog_limit,
            mode: StepMode::FastForward,
            config,
            workload,
        }
    }

    /// Selects the stepping strategy (fast-forward by default).
    pub fn set_mode(&mut self, mode: StepMode) {
        self.mode = mode;
    }

    /// Turns on structured event recording, keeping the most recent
    /// `capacity` events (0 leaves it disabled). Recording changes
    /// nothing observable: stats, trace, metrics and final sync values
    /// are bit-identical with it on or off.
    ///
    /// # Panics
    ///
    /// Panics if the machine already ran.
    pub fn enable_events(&mut self, capacity: usize) {
        assert_eq!(self.cycle, 0, "enable_events must be called before running");
        self.events = EventRing::with_capacity(capacity);
    }

    /// The progress watchdog's silence bound (cycles without observable
    /// progress tolerated before the run fails as a livelock).
    pub fn watchdog_limit(&self) -> u64 {
        self.watchdog_limit
    }

    /// Marks the current cycle as having made observable progress.
    pub(crate) fn note_progress(&mut self) {
        self.last_progress = self.cycle;
    }

    /// Overrides the initial value of a synchronization variable
    /// (before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the machine already ran.
    pub fn preset_sync(&mut self, var: SyncVar, val: u64) {
        assert_eq!(self.cycle, 0, "preset_sync must be called before running");
        if var >= self.sync.global.len() {
            self.sync.global.resize(var + 1, 0);
            for img in &mut self.sync.images {
                img.resize(var + 1, 0);
            }
            self.sync.applied_seq.resize(var + 1, 0);
            self.metrics.sync_vars.resize(var + 1, VarTraffic::default());
        }
        self.sync.global[var] = val;
        for img in &mut self.sync.images {
            img[var] = val;
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run_to_completion(mut self) -> Result<RunOutcome, SimError> {
        self.events
            .record(self.cycle, SimEventKind::WatchdogArm { limit: self.watchdog_limit });
        loop {
            if self.finished() {
                let mut stats = std::mem::take(&mut self.stats);
                stats.makespan = self.cycle;
                for (i, p) in self.procs.iter().enumerate() {
                    stats.procs[i] = p.stats;
                }
                return Ok(RunOutcome {
                    stats,
                    trace: std::mem::take(&mut self.trace),
                    sync_final: std::mem::take(&mut self.sync.global),
                    metrics: std::mem::take(&mut self.metrics),
                    events: std::mem::take(&mut self.events),
                });
            }
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout { max_cycles: self.config.max_cycles });
            }
            if let Some(dead) = self.deadlocked() {
                // Before declaring the wedge fatal, try the rescue rung:
                // unretired work stranded on fail-stopped processors (or
                // already sitting in the rescue pool) can be reclaimed
                // and reissued to the survivor quorum. This hangs off the
                // precise detector, not just watchdog silence, because
                // memory-polling survivors keep the bus busy — their
                // polls count as progress — so a dead producer under the
                // shared-memory transport never trips the watchdog.
                if self.rec.on && self.watchdog_rescue() {
                    continue;
                }
                if self.rec.on && self.rescue_settling() {
                    // Rescued work is pending but every would-be swap
                    // victim still has a busy-wait poll queued or in
                    // flight (unsafe to preempt: the late completion
                    // would clobber its new state). Step until the polls
                    // settle into backoff — bounded by the bus service
                    // latency — then the rescue is retried.
                    match self.mode {
                        StepMode::Reference => self.step(),
                        StepMode::FastForward => self.fast_step(),
                    }
                    continue;
                }
                let mut detail = self.stuck_detail(&dead);
                if self.rec.on {
                    // Unhealable by construction (deadlocked() treats
                    // globally-satisfied spins as healable): attach the
                    // wait-for proof so the caller can justify degrading.
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                return Err(SimError::Deadlock { cycle: self.cycle, spinning: dead, detail });
            }
            if self.cycle.saturating_sub(self.last_progress) > self.watchdog_limit {
                // The escalation point: with recovery armed, try the
                // repair rung first — force-sync healable images from the
                // global state and keep running instead of failing.
                if self.rec.on && self.watchdog_repair() {
                    continue;
                }
                // Repair can't help (no gapped-but-satisfied image). If
                // the diagnosis says the producer is *dead* rather than
                // the value lost in flight, take the rescue rung:
                // reclaim the fail-stopped processors' unretired work
                // and reissue it to the survivor quorum.
                if self.rec.on && self.watchdog_rescue() {
                    continue;
                }
                // Livelock: cycles are being burned (spins, redeliveries,
                // stalls) but nothing observable has happened for longer
                // than any legitimate quiet period. Upgrade to a detected
                // deadlock instead of burning until max_cycles.
                self.events.record(
                    self.cycle,
                    SimEventKind::WatchdogFire { silent_for: self.cycle - self.last_progress },
                );
                let spinning: Vec<usize> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        matches!(p.state, ProcState::SpinLocal { .. } | ProcState::SpinMem { .. })
                    })
                    .map(|(i, _)| i)
                    .collect();
                let mut detail = vec![format!(
                    "livelock: no forward progress for {} cycles (watchdog limit)",
                    self.cycle - self.last_progress
                )];
                if self.rec.on {
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                detail.extend(self.stuck_detail(&spinning));
                return Err(SimError::Deadlock { cycle: self.cycle, spinning, detail });
            }
            match self.mode {
                StepMode::Reference => self.step(),
                StepMode::FastForward => self.fast_step(),
            }
        }
    }

    /// Human-readable description of each stuck processor.
    fn stuck_detail(&self, stuck: &[usize]) -> Vec<String> {
        stuck
            .iter()
            .map(|&i| {
                let p = &self.procs[i];
                let at = if self.dead[i] {
                    "fail-stopped (unretired work stranded)".to_string()
                } else {
                    match p.state {
                        ProcState::SpinLocal { var, pred } => {
                            format!(
                                "waiting {var} {pred} (image {}, global {})",
                                self.sync.images[i][var], self.sync.global[var]
                            )
                        }
                        ProcState::SpinMem { retry, .. } => format!("retrying {retry:?}"),
                        _ => "?".to_string(),
                    }
                };
                format!("proc {i}: program {:?} ip {} {at}", p.current, p.ip)
            })
            .collect()
    }

    fn finished(&self) -> bool {
        let no_pending = self.mem.active.is_none()
            && self.sync.active.is_none()
            && self.mem.queue.is_empty()
            && self.sync.queue.is_empty()
            && !self.mem.banks_pending();
        no_pending
            && !self.disp.dynamic_left(self.workload)
            && self.disp.all_drained()
            && self
                .procs
                .iter()
                .all(|p| matches!(p.state, ProcState::Idle) && p.current.is_none())
    }

    /// If the machine can provably never progress, the spinning culprits.
    fn deadlocked(&self) -> Option<Vec<usize>> {
        // O(1) early-outs first, so the O(P + banks) scans below only run
        // at genuinely quiet points: a held transaction, a queued
        // broadcast or a deferred image update still in flight is pending
        // activity, not deadlock. The exception is a *futile* spin
        // re-issue — a poll or keyed attempt whose condition fails even
        // on the authoritative global state. Memory-transport waiters
        // whose producer fail-stopped re-poll forever, keeping the bus
        // busy; treating those as activity would hide the wedge until
        // the cycle cap. A satisfiable poll still suppresses the verdict
        // via the per-processor scan below.
        let futile_spin = |kind: DataReqKind| match kind {
            DataReqKind::Poll { var, pred } => !pred.eval(self.sync.global[var]),
            DataReqKind::KeyedAttempt { var, geq } => self.sync.global[var] < geq,
            _ => false,
        };
        if self.sync.active.is_some()
            || !self.sync.queue.is_empty()
            || self.sync.due_min != u64::MAX
        {
            return None;
        }
        if self.mem.active.is_some_and(|(req, _)| !futile_spin(req.kind)) {
            return None;
        }
        let any_active = self.mem.queue.iter().any(|r| !futile_spin(r.kind))
            || self.mem.banks.iter().any(|b| {
                b.active.is_some_and(|(req, _)| !futile_spin(req.kind))
                    || b.queue.iter().any(|r| !futile_spin(r.kind))
            });
        if any_active {
            return None;
        }
        let mut spinning = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            // A dead processor neither progresses nor blocks others from
            // being diagnosed; skip it (stranded work is handled below).
            if self.dead[i] {
                continue;
            }
            match p.state {
                // A spin whose condition already holds will succeed on its
                // next check — that is progress, not deadlock.
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.images[i][var]) {
                        return None;
                    }
                    // With recovery armed, a spin satisfied *globally* is
                    // a healable sequence gap, not a deadlock: the NACK /
                    // watchdog-repair ladder will refresh the image.
                    if self.rec.on && pred.eval(self.sync.global[var]) {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::SpinMem { retry, .. } => {
                    let satisfiable = match retry {
                        DataReqKind::Poll { var, pred } => pred.eval(self.sync.global[var]),
                        DataReqKind::KeyedAttempt { var, geq } => self.sync.global[var] >= geq,
                        _ => true,
                    };
                    if satisfiable {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::Idle if !self.disp.can_claim(i, self.workload) => {}
                _ => return None,
            }
        }
        // Pending polls only re-read values no one will write again.
        // Unretired work stranded on dead processors wedges the run
        // even with every survivor idle; dead holders are reported as
        // culprits alongside any spinning survivors. (With recovery on,
        // the caller's rescue rung reclaims the stranded work instead
        // of failing.)
        let mut stranded: Vec<usize> = (0..self.procs.len())
            .filter(|&i| {
                self.dead[i] && (self.procs[i].current.is_some() || !self.disp.queues[i].is_empty())
            })
            .collect();
        if spinning.is_empty() && stranded.is_empty() {
            None
        } else {
            spinning.append(&mut stranded);
            Some(spinning)
        }
    }

    /// `true` when a rescue is pending (work in the pool) but some live
    /// survivor is mid-poll: the deadlock verdict should wait for the
    /// poll to settle into backoff so the rescue rung gets a safe swap
    /// victim. Once the rescue rung has exhausted its futility budget it
    /// can never act again, so settling would defer the verdict until
    /// the cycle cap — report unsettled and let the wedge surface.
    fn rescue_settling(&self) -> bool {
        !self.disp.rescue.is_empty()
            && self.rec.rescue_futile < self.rescue_cap()
            && self.procs.iter().enumerate().any(|(i, p)| {
                !self.dead[i]
                    && matches!(p.state, ProcState::SpinMem { phase: SpinPhase::WaitingResult, .. })
            })
    }

    fn step(&mut self) {
        self.apply_deferred_images();
        self.complete_transactions();
        self.grant_transactions();
        for p in 0..self.procs.len() {
            self.step_proc(p);
        }
        self.cycle += 1;
    }

    /// Data-path completions first, then the fabric's broadcast
    /// completion — the same per-cycle order the monolithic stepper had.
    fn complete_transactions(&mut self) {
        self.complete_data();
        let fabric = self.fabric;
        fabric.complete(self);
    }

    /// Data grant first (data traffic has priority on a shared bus),
    /// then the fabric's broadcast grant.
    fn grant_transactions(&mut self) {
        self.grant_data();
        let fabric = self.fabric;
        fabric.grant(self);
    }

    /// If the current cycle is *quiet* — [`Machine::step`] would do
    /// nothing but tick one stat counter per processor — returns the
    /// earliest future cycle at which anything observable can happen
    /// (`u64::MAX` if nothing is pending at all). Returns `None` for a
    /// cycle that must be stepped normally.
    ///
    /// Every RNG draw (grants, sync completions, image deferral, stall
    /// onsets) and every trace write happens only at non-quiet cycles,
    /// so skipping quiet cycles cannot desynchronize the fault stream or
    /// the trace from per-cycle stepping. Deliberately conservative
    /// under the shared fabric: a cycle in which one bus blocks the
    /// other is simply stepped.
    fn quiet_horizon(&self) -> Option<u64> {
        let c = self.cycle;
        let mut next = u64::MAX;
        // Deferred image updates wake local spinners when due.
        if self.sync.due_min <= c {
            return None;
        }
        next = next.min(self.sync.due_min);
        // Data bus: a completion is an event; an idle bus with a queued
        // request grants this cycle.
        if let Some((_, end)) = self.mem.active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.mem.queue.is_empty() {
            return None;
        }
        // Memory banks, same shape.
        for b in &self.mem.banks {
            if let Some((_, end)) = b.active {
                if end <= c {
                    return None;
                }
                next = next.min(end);
            } else if !b.queue.is_empty() {
                return None;
            }
        }
        // Sync bus.
        if let Some((_, end)) = self.sync.active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.sync.queue.is_empty() {
            return None;
        }
        let stalls_on = self.config.faults.stall_mean_interval > 0;
        for (p, proc) in self.procs.iter().enumerate() {
            // Dead processors contribute no events: their stalls, spins
            // and compute remainders can never perform. A *pending* kill
            // is an event — it must land at a stepped cycle so both step
            // modes record it identically.
            if self.dead[p] {
                continue;
            }
            if self.fail_at[p] <= c {
                return None; // the fail-stop lands this cycle
            }
            next = next.min(self.fail_at[p]);
            if stalls_on {
                if c >= self.stall_until[p] && c >= self.next_stall[p] {
                    return None; // stall onset draws RNG this cycle
                }
                if c < self.stall_until[p] {
                    // Frozen until the stall ends — except that a stalled
                    // Ready processor drains trace notes every cycle.
                    if matches!(proc.state, ProcState::Ready) {
                        return None;
                    }
                    next = next.min(self.stall_until[p]);
                    continue;
                }
                next = next.min(self.next_stall[p]);
            }
            match proc.state {
                ProcState::Idle => {
                    if self.disp.can_claim(p, self.workload) {
                        return None;
                    }
                }
                ProcState::Ready => return None,
                ProcState::Computing { remaining } => next = next.min(c + u64::from(remaining)),
                ProcState::BlockedData | ProcState::BlockedSync => {}
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.images[p][var]) {
                        return None; // the spin succeeds this cycle
                    }
                    if self.rec.nack_due[p] <= c {
                        return None; // the gap check runs this cycle
                    }
                    next = next.min(self.rec.nack_due[p]);
                }
                ProcState::SpinMem { phase, .. } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if c >= until {
                            return None; // re-issues the poll this cycle
                        }
                        next = next.min(until);
                    }
                    // WaitingResult: the pending transaction bounds `next`.
                }
            }
        }
        Some(next)
    }

    /// One fast-forward advance: step normally through event cycles, and
    /// jump a whole quiet span at once, bulk-charging the skipped cycles
    /// to exactly the stat buckets the reference stepper would have
    /// ticked one by one.
    fn fast_step(&mut self) {
        let Some(next_event) = self.quiet_horizon() else {
            self.step();
            return;
        };
        // Land exactly on `max_cycles` so the timeout check fires with
        // the same cycle as per-cycle stepping.
        let mut target = next_event.min(self.config.max_cycles);
        // A computing processor notes progress every cycle; only when
        // none is running can the watchdog's silence bound bind. A dead
        // processor's frozen Computing state is not progress.
        let progressing = (0..self.procs.len()).any(|p| {
            !self.dead[p]
                && self.cycle >= self.stall_until[p]
                && matches!(self.procs[p].state, ProcState::Computing { .. })
        });
        if !progressing {
            target = target.min(self.last_progress.saturating_add(self.watchdog_limit + 1));
        }
        debug_assert!(target > self.cycle, "quiet horizon must move time forward");
        let delta = target - self.cycle;
        for p in 0..self.procs.len() {
            if self.dead[p] {
                self.procs[p].stats.dead += delta;
                continue;
            }
            if self.cycle < self.stall_until[p] {
                self.procs[p].stats.stalled += delta;
                continue;
            }
            match self.procs[p].state {
                ProcState::Idle => self.procs[p].stats.idle += delta,
                ProcState::Computing { remaining } => {
                    self.procs[p].stats.busy += delta;
                    // delta <= remaining by the horizon bound.
                    let left = remaining - delta as u32;
                    self.procs[p].state = if left == 0 {
                        ProcState::Ready
                    } else {
                        ProcState::Computing { remaining: left }
                    };
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs[p].stats.blocked += delta;
                }
                ProcState::SpinLocal { .. } | ProcState::SpinMem { .. } => {
                    self.procs[p].stats.spin += delta;
                }
                ProcState::Ready => unreachable!("a ready processor is never quiet"),
            }
        }
        if progressing {
            self.last_progress = target - 1;
        }
        self.cycle = target;
    }

    pub(crate) fn unblock(&mut self, proc: usize) {
        self.close_wait(proc);
        self.procs[proc].state = ProcState::Ready;
        if self.dead[proc] {
            // An in-flight transaction still performs after its issuer
            // fail-stops (it was already in the interconnect), but the
            // dead processor never steps again to witness it: record
            // its trailing trace notes at the completion cycle, exactly
            // when a live processor would have retired them.
            self.drain_notes(proc);
        }
    }

    /// Records an injected fault in both the note trace and the event
    /// ring.
    #[cold]
    #[inline(never)]
    pub(crate) fn record_fault(&mut self, proc: Option<usize>, class: FaultClass, magnitude: u64) {
        self.trace.record_fault(self.cycle, proc, class, magnitude);
        self.events.record(self.cycle, SimEventKind::Fault { class, proc, magnitude });
    }
}

#[cfg(test)]
mod tests;

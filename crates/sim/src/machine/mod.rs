//! The cycle-driven machine model, decomposed into layered subsystems.
//!
//! A [`Machine`] simulates `P` processors sharing a **data bus** (to the
//! memory modules) and, optionally, a **dedicated synchronization bus**
//! with a local image of every synchronization variable in each processor
//! (Section 6 of the paper). The model is deliberately simple — a single
//! arbitrated transaction at a time per bus — because that is exactly the
//! regime in which the paper's claims about traffic, hot-spots and
//! busy-waiting live.
//!
//! The machine is a thin conductor over four subsystems, each in its own
//! module and separately testable:
//!
//! * [`fabric`] — the **synchronization fabric**: global sync values,
//!   per-processor local images, the broadcast queue, and the pluggable
//!   [`SyncFabric`] transport backend (dedicated bus / shared bus /
//!   ideal oracle) that carries them;
//! * `memory` — the **memory system**: data-bus arbitration, interleaved
//!   banks and the globally-performed effects of data-path requests;
//! * `dispatch` — the **dispatcher**: self-scheduling or static
//!   iteration hand-out;
//! * `recovery_engine` — the **recovery engine**: the self-healing
//!   ladder (gap NACKs, refresh retransmission, watchdog repair) and the
//!   per-processor wait-episode bookkeeping it hangs off;
//! * `exec` — the per-processor execution step that drives all of the
//!   above through one instruction at a time;
//! * `schedule` — the **event schedule**: a calendar (bucket) queue over
//!   per-processor wake deadlines, so the fast-forward kernel finds its
//!   next event in O(occupied-buckets) instead of an O(P) scan.
//!
//! Data layout is struct-of-arrays: per-processor state lives in
//! [`ProcLanes`] (one lane per field, not a `Vec` of processor structs)
//! and per-variable sync state in [`fabric::VarLanes`] plus one flat
//! var-major image block, so the hot loops walk contiguous memory and a
//! broadcast delivery to P consumers is one batched lane fill.
//!
//! Determinism: processors are stepped in id order and bus queues are
//! FIFO, so a run is a pure function of the configuration and workload.
//! Fault injection ([`crate::faults::FaultPlan`]) preserves this: every
//! fault decision comes from a splitmix64 stream seeded by the plan, so
//! a faulted run is reproducible byte-for-byte from its configuration.
//!
//! Stepping: per-cycle stepping ([`StepMode::Reference`]) is the
//! executable specification, but the default execution engine is an
//! **event-driven fast-forward kernel** ([`StepMode::FastForward`]) that
//! jumps over *quiet* cycles — cycles in which the machine provably does
//! nothing but tick stat counters — directly to the next observable
//! event (transaction completion, bank completion, deferred image due
//! time, compute retirement, spin-backoff expiry, stall boundary), bulk
//! charging the skipped cycles to the same per-processor stat buckets
//! the reference stepper would have ticked. Every RNG draw and trace
//! write happens only at non-quiet cycles, so the two modes produce
//! **bit-for-bit identical** [`RunStats`], [`Trace`] and `sync_final`
//! (enforced by the equivalence tests) — under every fabric backend,
//! because both modes drive the same subsystem interfaces.
//!
//! The next observable event comes from two sources: the O(banks)
//! [`Machine::channel_horizon`] over the buses, banks and deferred-image
//! due time, and the [`schedule::Calendar`] over per-processor wake
//! deadlines, each refreshed in O(1) as its processor steps. A cached
//! wake is always a **lower bound** on the processor's true next event:
//! waking too early merely steps a quiet cycle (bit-identical by the
//! quiet-cycle invariant), while waking late would miss an event — so
//! every mutation that can pull an event earlier (a program completing,
//! an oracle broadcast touching every image, a recovery rung) re-arms
//! the affected wakes. Debug builds cross-check every jump against the
//! retained linear-scan oracle ([`Machine::scan_horizon`]).
//!
//! Liveness under faults: on top of the precise [`Machine::deadlocked`]
//! check, a **progress watchdog** tracks the last cycle on which the
//! machine did anything observable (retired an instruction, performed a
//! transaction, applied an image update, dispatched). If no progress is
//! made for a bound derived from the configured latencies and fault
//! magnitudes, the run fails with [`SimError::Deadlock`] describing the
//! livelock — so even runs the precise checker cannot classify (e.g.
//! processors spinning on images that faults keep stale) terminate
//! detectably rather than burning cycles until `max_cycles`.

mod cache;
mod dispatch;
mod exec;
pub mod fabric;
mod memory;
mod recovery_engine;
mod schedule;
mod workload;

pub use fabric::{DedicatedBus, IdealFabric, SharedDataBus, SyncFabric};
pub use workload::{DispatchMode, Workload};

use crate::config::{FabricKind, MachineConfig, MemoryModel};
use crate::events::{EventRing, SimEventKind};
use crate::faults::FaultClass;
use crate::metrics::RunMetrics;
use crate::program::{Pred, SyncVar};
use crate::rng::SplitMix64;
use crate::stats::{ProcBreakdown, RunStats};
use crate::trace::Trace;
use cache::CacheSystem;
use dispatch::Dispatcher;
use fabric::SyncState;
use memory::{DataReqKind, MemorySystem};
use recovery_engine::RecoveryEngine;
use schedule::Calendar;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No processor can ever make progress again.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Processors stuck spinning.
        spinning: Vec<usize>,
        /// Human-readable description of each stuck processor.
        detail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    Timeout {
        /// The configured cap.
        max_cycles: u64,
    },
    /// Invalid configuration.
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, spinning, detail } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: processors {spinning:?} spin forever ({})",
                    detail.join("; ")
                )
            }
            SimError::Timeout { max_cycles } => write!(f, "exceeded {max_cycles} cycles"),
            SimError::BadConfig(msg) => write!(f, "invalid machine config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// The note trace.
    pub trace: Trace,
    /// Final values of all synchronization variables.
    pub sync_final: Vec<u64>,
    /// Derived metrics (always collected; see [`RunMetrics`]).
    pub metrics: RunMetrics,
    /// Structured events — empty unless recording was turned on with
    /// [`Machine::enable_events`].
    pub events: EventRing,
}

/// Runs a workload to completion on a machine.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] for invalid configurations,
/// [`SimError::Deadlock`] when synchronization can never be satisfied and
/// [`SimError::Timeout`] past `max_cycles`.
pub fn run(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    Machine::new(config, workload).run_to_completion()
}

/// Runs a workload with the per-cycle reference stepper (the executable
/// specification the fast-forward kernel must match bit for bit).
///
/// # Errors
///
/// See [`run`].
pub fn run_reference(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    let mut m = Machine::new(config, workload);
    m.set_mode(StepMode::Reference);
    m.run_to_completion()
}

/// How the run loop advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Event-driven: jump over provably-quiet cycles directly to the
    /// next observable event, bulk-charging the skipped cycles to the
    /// correct stat buckets. Bit-identical to [`StepMode::Reference`].
    #[default]
    FastForward,
    /// One cycle per step — the executable specification. Kept for the
    /// equivalence tests and as the trusted baseline for `datasync perf`.
    Reference,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpinPhase {
    WaitingResult,
    Backoff { until: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcState {
    Idle,
    Ready,
    Computing {
        remaining: u32,
    },
    BlockedData,
    BlockedSync,
    SpinLocal {
        var: SyncVar,
        pred: Pred,
    },
    /// Busy-wait through shared memory: `retry` is re-issued after each
    /// backoff until it succeeds.
    SpinMem {
        retry: DataReqKind,
        phase: SpinPhase,
    },
}

/// Per-processor state in struct-of-arrays layout: one lane per field,
/// so the per-cycle loops and the fast-forward bulk-charge walk
/// contiguous memory instead of striding over a `Vec` of processor
/// structs.
///
/// The `state` and `dead` lanes are private: every transition must go
/// through [`ProcLanes::set_state`] / [`ProcLanes::set_current`] /
/// [`ProcLanes::kill`], which maintain the cached population counters
/// (`engaged`, `active`, `computing`) that make [`Machine::finished`],
/// [`Machine::deadlocked`] and the watchdog's progressing test O(1) on
/// the fast path.
#[derive(Debug)]
pub(crate) struct ProcLanes {
    state: Vec<ProcState>,
    current: Vec<Option<usize>>,
    pub(crate) ip: Vec<usize>,
    /// Index of the instruction execution would resume from if this
    /// program had to move to another processor right now: everything
    /// before it has fully retired (re-running it would duplicate side
    /// effects), nothing at or after it has (skipping it would lose
    /// work). Maintained at dispatch and at every instruction issue;
    /// the fail-stop rescue rung reads it when reclaiming work.
    pub(crate) resume_ip: Vec<usize>,
    pub(crate) stats: Vec<ProcBreakdown>,
    /// Per-processor injected-stall end cycle (0 = not stalled).
    pub(crate) stall_until: Vec<u64>,
    /// Per-processor cycle of the next stall onset (`u64::MAX` when
    /// stalls are disabled).
    pub(crate) next_stall: Vec<u64>,
    /// Per-processor planned fail-stop cycle (`u64::MAX` = never).
    pub(crate) fail_at: Vec<u64>,
    /// Fail-stop flag: a dead processor never steps, dispatches or
    /// answers the sync bus again; its cycles accrue to `dead`.
    dead: Vec<bool>,
    /// One bit per processor: set when a lane write may have moved the
    /// processor's wake deadline, cleared when the fast-forward stepper
    /// re-arms it. Wakes are *absolute* cycles (a computing processor's
    /// retire cycle, a spinner's NACK deadline), so a processor whose
    /// bit is clear still has a live, correct calendar entry — the
    /// stepper only recomputes wakes for dirtied processors instead of
    /// all P every cycle.
    wake_dirty: Vec<u64>,
    /// Processors (dead or alive) that are not (`Idle` with no program):
    /// 0 is the processor side of [`Machine::finished`].
    engaged: usize,
    /// Live processors in `Ready`/`Computing`/`Blocked*` — states that
    /// by themselves rule out a deadlock verdict.
    active: usize,
    /// Live processors in `Computing` — each notes progress every
    /// cycle, which is what the watchdog's progressing test wants.
    computing: usize,
}

impl ProcLanes {
    fn new(p: usize, next_stall: Vec<u64>, fail_at: Vec<u64>) -> Self {
        // Every bit starts dirty so the first stepped cycle arms every
        // wake (processors that never transition — idle with no work —
        // would otherwise keep their initial cycle-0 deadline forever).
        let mut wake_dirty = vec![u64::MAX; p.div_ceil(64)];
        if !p.is_multiple_of(64) {
            *wake_dirty.last_mut().expect("at least one word") = (1u64 << (p % 64)) - 1;
        }
        Self {
            state: vec![ProcState::Idle; p],
            current: vec![None; p],
            ip: vec![0; p],
            resume_ip: vec![0; p],
            stats: vec![ProcBreakdown::default(); p],
            stall_until: vec![0; p],
            next_stall,
            fail_at,
            dead: vec![false; p],
            wake_dirty,
            engaged: 0,
            active: 0,
            computing: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.state.len()
    }

    #[inline]
    pub(crate) fn state(&self, p: usize) -> ProcState {
        self.state[p]
    }

    #[inline]
    pub(crate) fn current(&self, p: usize) -> Option<usize> {
        self.current[p]
    }

    #[inline]
    pub(crate) fn is_dead(&self, p: usize) -> bool {
        self.dead[p]
    }

    /// This processor's contribution to the cached counters under its
    /// current lanes.
    #[inline]
    fn contrib(&self, p: usize) -> (usize, usize, usize) {
        let engaged =
            usize::from(!(matches!(self.state[p], ProcState::Idle) && self.current[p].is_none()));
        if self.dead[p] {
            return (engaged, 0, 0);
        }
        match self.state[p] {
            ProcState::Ready | ProcState::BlockedData | ProcState::BlockedSync => (engaged, 1, 0),
            ProcState::Computing { .. } => (engaged, 1, 1),
            _ => (engaged, 0, 0),
        }
    }

    #[inline]
    fn retract(&mut self, p: usize) {
        let (e, a, c) = self.contrib(p);
        self.engaged -= e;
        self.active -= a;
        self.computing -= c;
    }

    #[inline]
    fn restore(&mut self, p: usize) {
        let (e, a, c) = self.contrib(p);
        self.engaged += e;
        self.active += a;
        self.computing += c;
    }

    /// Flags `p`'s wake deadline as needing recomputation at the end of
    /// the current stepped cycle.
    #[inline]
    pub(crate) fn mark_wake(&mut self, p: usize) {
        self.wake_dirty[p / 64] |= 1 << (p % 64);
    }

    #[inline]
    pub(crate) fn set_state(&mut self, p: usize, s: ProcState) {
        self.mark_wake(p);
        self.retract(p);
        self.state[p] = s;
        self.restore(p);
    }

    /// Advances a `Computing` processor to `left` remaining cycles
    /// (reaching `Ready` at zero). Both transitions keep the processor
    /// engaged and active, so only the `computing` counter can change —
    /// this is the hottest state write in both stepping modes, and it
    /// skips the full retract/restore recount of [`Self::set_state`].
    /// It also leaves the wake bit clean: the processor's wake is the
    /// absolute cycle it issues again (retire + 1 while computing, the
    /// same cycle once `Ready`), which ticking never moves.
    #[inline]
    pub(crate) fn tick_computing(&mut self, p: usize, left: u32) {
        debug_assert!(matches!(self.state[p], ProcState::Computing { .. }));
        if left == 0 {
            self.state[p] = ProcState::Ready;
            self.computing -= usize::from(!self.dead[p]);
        } else {
            self.state[p] = ProcState::Computing { remaining: left };
        }
    }

    #[inline]
    pub(crate) fn set_current(&mut self, p: usize, cur: Option<usize>) {
        self.mark_wake(p);
        self.retract(p);
        self.current[p] = cur;
        self.restore(p);
    }

    /// Marks processor `p` fail-stopped (never un-killed).
    pub(crate) fn kill(&mut self, p: usize) {
        self.mark_wake(p);
        self.retract(p);
        self.dead[p] = true;
        self.restore(p);
    }
}

/// The machine state (see [`run`] for the one-shot entry point).
///
/// Borrows its configuration and workload: sweeps running thousands of
/// configurations share one `Workload` without re-allocating every
/// `Program` vector per run.
#[derive(Debug)]
pub struct Machine<'a> {
    pub(crate) config: &'a MachineConfig,
    pub(crate) workload: &'a Workload,
    mode: StepMode,
    pub(crate) cycle: u64,
    /// Per-processor state, one lane per field (see [`ProcLanes`]).
    pub(crate) procs: ProcLanes,
    /// The synchronization-fabric backend (stateless; selected by
    /// `config.sync_fabric`).
    pub(crate) fabric: &'static dyn SyncFabric,
    /// Synchronization-transport state (global values, images, queue).
    pub(crate) sync: SyncState,
    /// Data-bus arbitration state and the memory banks behind it.
    pub(crate) mem: MemorySystem,
    /// Private per-processor caches in front of the bus (inert under
    /// [`crate::config::CacheModel::None`]).
    pub(crate) cache: CacheSystem,
    /// Iteration dispatch state.
    pub(crate) disp: Dispatcher,
    /// Self-healing ladder state and wait-episode bookkeeping.
    pub(crate) rec: RecoveryEngine,
    /// Calendar queue over per-processor wake deadlines — the
    /// fast-forward kernel's next-event index (unused by the reference
    /// stepper).
    sched: Calendar,
    pub(crate) stats: RunStats,
    pub(crate) trace: Trace,
    /// Fault-decision stream (seeded by `config.faults.seed`; untouched
    /// on fault-free runs, so they remain bit-identical to a machine
    /// without fault support).
    pub(crate) rng: SplitMix64,
    /// Last cycle on which the machine observably progressed.
    last_progress: u64,
    /// Progress-watchdog bound (cycles of silence tolerated).
    watchdog_limit: u64,
    /// Always-on derived metrics (cheap counters, no allocation per
    /// event). Updated only at stepped cycles — part of the equivalence
    /// contract.
    pub(crate) metrics: RunMetrics,
    /// Structured event ring; disabled (capacity 0) unless
    /// [`Machine::enable_events`] was called.
    pub(crate) events: EventRing,
}

impl<'a> Machine<'a> {
    /// Builds a machine with all processors idle.
    pub fn new(config: &'a MachineConfig, workload: &'a Workload) -> Self {
        let p = config.processors;
        let n_vars = workload.n_sync_vars();
        let n_banks = match config.memory_model {
            MemoryModel::BusHeld => 0,
            MemoryModel::Banked { banks } => banks,
        };
        let f = config.faults;
        let mut rng = SplitMix64::new(f.seed);
        let next_stall: Vec<u64> = (0..p)
            .map(|_| {
                if f.stall_mean_interval > 0 {
                    1 + rng.below(2 * u64::from(f.stall_mean_interval))
                } else {
                    u64::MAX
                }
            })
            .collect();
        // Fail-stop victims and kill cycles, drawn only when the class
        // is armed (plans without it leave the fault stream untouched).
        // The victim count is clamped to P - 1 so at least one processor
        // always survives to run the rescued work.
        let mut fail_at = vec![u64::MAX; p];
        if f.fail_stop_procs > 0 && p > 1 {
            let victims = (f.fail_stop_procs as usize).min(p - 1);
            let window = u64::from(f.fail_stop_window.max(1));
            let mut chosen = 0;
            while chosen < victims {
                let v = rng.below(p as u64) as usize;
                if fail_at[v] == u64::MAX {
                    fail_at[v] = 1 + rng.below(window);
                    chosen += 1;
                }
            }
        }
        // Longest legitimate silent stretch: a held (possibly delayed /
        // jittered) transaction, a spin backoff, a stall or a stale
        // window. Generously padded — tripping it means livelock. The
        // P-scaled term covers queue-drain at scale: with P processors
        // contending, a single waiter can legitimately sit behind P
        // whole bus transactions, so the silence bound must grow with
        // the machine, not stay flat.
        // Two-level delivery stretches legitimate silences and delivery
        // paths by the coalescing window plus the bridge tenure (and a
        // cross-cluster waiter can sit behind a bridge queue that grows
        // with the cluster count).
        let (n_clusters, bridge_path) = match config.sync_fabric {
            FabricKind::Clustered { clusters, bridge_latency, coalesce_window } => {
                (u64::from(clusters.max(1)), u64::from(bridge_latency + coalesce_window))
            }
            _ => (1, 0),
        };
        let watchdog_limit = 256
            + 8 * (u64::from(
                config.spin_retry
                    + config.dispatch_latency
                    + config.data_bus_latency
                    + config.memory_latency
                    + config.sync_bus_latency
                    + f.broadcast_delay_max
                    + f.data_jitter_max
                    + f.stall_max
                    + f.stale_window_max,
            ) + bridge_path)
            + 2 * (p as u64)
                * u64::from(
                    config.sync_bus_latency + config.data_bus_latency + config.memory_latency,
                );
        // A waiter suspects a gap only after the longest legitimate
        // delivery path (bus grant + injected delay + stale window, plus
        // the window-flush + bridge hop and its queueing when clustered)
        // has comfortably elapsed; by construction this is well under
        // the watchdog limit, so all NACK tries fit before escalation.
        let nack_delay = 32
            + 4 * (u64::from(config.sync_bus_latency + f.broadcast_delay_max + f.stale_window_max)
                + bridge_path)
            + 2 * (n_clusters - 1);
        let mut sync = SyncState::new(p, n_vars);
        if let FabricKind::Clustered { clusters, bridge_latency, coalesce_window } =
            config.sync_fabric
        {
            sync.install_clusters(clusters, bridge_latency, coalesce_window);
        }
        Self {
            procs: ProcLanes::new(p, next_stall, fail_at),
            cycle: 0,
            fabric: config.sync_fabric.backend(),
            sync,
            mem: MemorySystem::new(n_banks),
            cache: CacheSystem::new(&config.cache, p, config.memory_latency),
            disp: Dispatcher::new(workload, p),
            rec: RecoveryEngine::new(p, nack_delay, config.recovery.repairs()),
            sched: Calendar::new(p),
            stats: RunStats { procs: vec![ProcBreakdown::default(); p], ..Default::default() },
            trace: Trace::new(),
            metrics: RunMetrics::new(p, n_vars),
            events: EventRing::disabled(),
            rng,
            last_progress: 0,
            watchdog_limit,
            mode: StepMode::FastForward,
            config,
            workload,
        }
    }

    /// Selects the stepping strategy (fast-forward by default).
    pub fn set_mode(&mut self, mode: StepMode) {
        self.mode = mode;
    }

    /// Turns on structured event recording, keeping the most recent
    /// `capacity` events (0 leaves it disabled). Recording changes
    /// nothing observable: stats, trace, metrics and final sync values
    /// are bit-identical with it on or off.
    ///
    /// # Panics
    ///
    /// Panics if the machine already ran.
    pub fn enable_events(&mut self, capacity: usize) {
        assert_eq!(self.cycle, 0, "enable_events must be called before running");
        self.events = EventRing::with_capacity(capacity);
    }

    /// The progress watchdog's silence bound (cycles without observable
    /// progress tolerated before the run fails as a livelock).
    pub fn watchdog_limit(&self) -> u64 {
        self.watchdog_limit
    }

    /// Marks the current cycle as having made observable progress.
    pub(crate) fn note_progress(&mut self) {
        self.last_progress = self.cycle;
    }

    /// Overrides the initial value of a synchronization variable
    /// (before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the machine already ran.
    pub fn preset_sync(&mut self, var: SyncVar, val: u64) {
        assert_eq!(self.cycle, 0, "preset_sync must be called before running");
        if var >= self.sync.n_vars() {
            self.sync.resize_vars(var + 1);
            self.metrics.sync_vars.resize(var + 1, Default::default());
        }
        self.sync.vars.global[var] = val;
        self.sync.var_images_mut(var).fill(val);
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run_to_completion(mut self) -> Result<RunOutcome, SimError> {
        self.events
            .record(self.cycle, SimEventKind::WatchdogArm { limit: self.watchdog_limit });
        loop {
            if self.finished() {
                let mut stats = std::mem::take(&mut self.stats);
                stats.makespan = self.cycle;
                stats.procs.copy_from_slice(&self.procs.stats);
                return Ok(RunOutcome {
                    stats,
                    trace: std::mem::take(&mut self.trace),
                    sync_final: std::mem::take(&mut self.sync.vars.global),
                    metrics: std::mem::take(&mut self.metrics),
                    events: std::mem::take(&mut self.events),
                });
            }
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout { max_cycles: self.config.max_cycles });
            }
            if let Some(dead) = self.deadlocked() {
                // Before declaring the wedge fatal, try the rescue rung:
                // unretired work stranded on fail-stopped processors (or
                // already sitting in the rescue pool) can be reclaimed
                // and reissued to the survivor quorum. This hangs off the
                // precise detector, not just watchdog silence, because
                // memory-polling survivors keep the bus busy — their
                // polls count as progress — so a dead producer under the
                // shared-memory transport never trips the watchdog.
                if self.rec.on && self.watchdog_rescue() {
                    self.refresh_all_wakes_now();
                    continue;
                }
                if self.rec.on && self.rescue_settling() {
                    // Rescued work is pending but every would-be swap
                    // victim still has a busy-wait poll queued or in
                    // flight (unsafe to preempt: the late completion
                    // would clobber its new state). Step until the polls
                    // settle into backoff — bounded by the bus service
                    // latency — then the rescue is retried.
                    match self.mode {
                        StepMode::Reference => self.step(),
                        StepMode::FastForward => self.fast_step(),
                    }
                    continue;
                }
                let mut detail = self.stuck_detail(&dead);
                if self.rec.on {
                    // Unhealable by construction (deadlocked() treats
                    // globally-satisfied spins as healable): attach the
                    // wait-for proof so the caller can justify degrading.
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                return Err(SimError::Deadlock { cycle: self.cycle, spinning: dead, detail });
            }
            if self.cycle.saturating_sub(self.last_progress) > self.watchdog_limit {
                // The escalation point: with recovery armed, try the
                // repair rung first — force-sync healable images from the
                // global state and keep running instead of failing.
                if self.rec.on && self.watchdog_repair() {
                    self.refresh_all_wakes_now();
                    continue;
                }
                // Repair can't help (no gapped-but-satisfied image). If
                // the diagnosis says the producer is *dead* rather than
                // the value lost in flight, take the rescue rung:
                // reclaim the fail-stopped processors' unretired work
                // and reissue it to the survivor quorum.
                if self.rec.on && self.watchdog_rescue() {
                    self.refresh_all_wakes_now();
                    continue;
                }
                // Livelock: cycles are being burned (spins, redeliveries,
                // stalls) but nothing observable has happened for longer
                // than any legitimate quiet period. Upgrade to a detected
                // deadlock instead of burning until max_cycles.
                self.events.record(
                    self.cycle,
                    SimEventKind::WatchdogFire { silent_for: self.cycle - self.last_progress },
                );
                let spinning: Vec<usize> = (0..self.procs.len())
                    .filter(|&i| {
                        matches!(
                            self.procs.state(i),
                            ProcState::SpinLocal { .. } | ProcState::SpinMem { .. }
                        )
                    })
                    .collect();
                let mut detail = vec![format!(
                    "livelock: no forward progress for {} cycles (watchdog limit)",
                    self.cycle - self.last_progress
                )];
                if self.rec.on {
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                detail.extend(self.stuck_detail(&spinning));
                return Err(SimError::Deadlock { cycle: self.cycle, spinning, detail });
            }
            match self.mode {
                StepMode::Reference => self.step(),
                StepMode::FastForward => self.fast_step(),
            }
        }
    }

    /// Human-readable description of each stuck processor.
    fn stuck_detail(&self, stuck: &[usize]) -> Vec<String> {
        stuck
            .iter()
            .map(|&i| {
                let at = if self.procs.is_dead(i) {
                    "fail-stopped (unretired work stranded)".to_string()
                } else {
                    match self.procs.state(i) {
                        ProcState::SpinLocal { var, pred } => {
                            format!(
                                "waiting {var} {pred} (image {}, global {})",
                                self.sync.image(i, var),
                                self.sync.vars.global[var]
                            )
                        }
                        ProcState::SpinMem { retry, .. } => format!("retrying {retry:?}"),
                        _ => "?".to_string(),
                    }
                };
                format!(
                    "proc {i}: program {:?} ip {} {at}",
                    self.procs.current(i),
                    self.procs.ip[i]
                )
            })
            .collect()
    }

    fn finished(&self) -> bool {
        // `engaged == 0` is the cached form of "every processor is Idle
        // with no program" — O(1) instead of an O(P) scan per loop turn.
        self.procs.engaged == 0
            && self.mem.active.is_none()
            && self.sync.active.is_none()
            && self.mem.queue.is_empty()
            && self.sync.queue.is_empty()
            && self.sync.clusters_idle()
            && self.cache.pending_count == 0
            && !self.mem.banks_pending()
            && !self.disp.dynamic_left(self.workload)
            && self.disp.all_drained()
    }

    /// If the machine can provably never progress, the spinning culprits.
    fn deadlocked(&self) -> Option<Vec<usize>> {
        // O(1) early-outs first, so the O(P + banks) scans below only run
        // at genuinely quiet points: a held transaction, a queued
        // broadcast or a deferred image update still in flight is pending
        // activity, not deadlock. The exception is a *futile* spin
        // re-issue — a poll or keyed attempt whose condition fails even
        // on the authoritative global state. Memory-transport waiters
        // whose producer fail-stopped re-poll forever, keeping the bus
        // busy; treating those as activity would hide the wedge until
        // the cycle cap. A satisfiable poll still suppresses the verdict
        // via the per-processor scan below.
        let futile_spin = |kind: DataReqKind| match kind {
            DataReqKind::Poll { var, pred } => !pred.eval(self.sync.vars.global[var]),
            DataReqKind::KeyedAttempt { var, geq } => self.sync.vars.global[var] < geq,
            _ => false,
        };
        if self.sync.active.is_some()
            || !self.sync.queue.is_empty()
            || !self.sync.clusters_idle()
            || self.sync.due_min != u64::MAX
        {
            return None;
        }
        // A live Ready/Computing/Blocked processor rules the verdict out
        // before any per-processor walk — the cached counter keeps the
        // no-fault fast path O(1) here.
        if self.procs.active > 0 {
            return None;
        }
        if self.mem.active.is_some_and(|(req, _)| !futile_spin(req.kind)) {
            return None;
        }
        let any_active = self.mem.queue.iter().any(|r| !futile_spin(r.kind))
            || self.mem.banks.iter().any(|b| {
                b.active.is_some_and(|(req, _)| !futile_spin(req.kind))
                    || b.queue.iter().any(|r| !futile_spin(r.kind))
            });
        if any_active {
            return None;
        }
        // Cache-hit completions still pending are activity unless they
        // are themselves futile polls (a spinner hitting forever in its
        // own cache burns no bus traffic but also makes no progress —
        // the per-processor scan below diagnoses its SpinMem state).
        if self.cache.pending_count > 0
            && self.cache.pending.iter().flatten().any(|&(req, _)| !futile_spin(req.kind))
        {
            return None;
        }
        let mut spinning = Vec::new();
        for i in 0..self.procs.len() {
            // A dead processor neither progresses nor blocks others from
            // being diagnosed; skip it (stranded work is handled below).
            if self.procs.is_dead(i) {
                continue;
            }
            match self.procs.state(i) {
                // A spin whose condition already holds will succeed on its
                // next check — that is progress, not deadlock.
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.image(i, var)) {
                        return None;
                    }
                    // With recovery armed, a spin satisfied *globally* is
                    // a healable sequence gap, not a deadlock: the NACK /
                    // watchdog-repair ladder will refresh the image.
                    if self.rec.on && pred.eval(self.sync.vars.global[var]) {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::SpinMem { retry, .. } => {
                    let satisfiable = match retry {
                        DataReqKind::Poll { var, pred } => pred.eval(self.sync.vars.global[var]),
                        DataReqKind::KeyedAttempt { var, geq } => self.sync.vars.global[var] >= geq,
                        _ => true,
                    };
                    if satisfiable {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::Idle if !self.disp.can_claim(i, self.workload) => {}
                // `active == 0` above rules out Ready/Computing/Blocked;
                // only a claimable Idle reaches here.
                _ => return None,
            }
        }
        // Pending polls only re-read values no one will write again.
        // Unretired work stranded on dead processors wedges the run
        // even with every survivor idle; dead holders are reported as
        // culprits alongside any spinning survivors. (With recovery on,
        // the caller's rescue rung reclaims the stranded work instead
        // of failing.)
        let mut stranded: Vec<usize> = (0..self.procs.len())
            .filter(|&i| {
                self.procs.is_dead(i)
                    && (self.procs.current(i).is_some() || !self.disp.queues[i].is_empty())
            })
            .collect();
        if spinning.is_empty() && stranded.is_empty() {
            None
        } else {
            spinning.append(&mut stranded);
            Some(spinning)
        }
    }

    /// `true` when a rescue is pending (work in the pool) but some live
    /// survivor is mid-poll: the deadlock verdict should wait for the
    /// poll to settle into backoff so the rescue rung gets a safe swap
    /// victim. Once the rescue rung has exhausted its futility budget it
    /// can never act again, so settling would defer the verdict until
    /// the cycle cap — report unsettled and let the wedge surface.
    fn rescue_settling(&self) -> bool {
        !self.disp.rescue.is_empty()
            && self.rec.rescue_futile < self.rescue_cap()
            && (0..self.procs.len()).any(|i| {
                !self.procs.is_dead(i)
                    && matches!(
                        self.procs.state(i),
                        ProcState::SpinMem { phase: SpinPhase::WaitingResult, .. }
                    )
            })
    }

    fn step(&mut self) {
        self.apply_deferred_images();
        self.complete_transactions();
        self.grant_transactions();
        let ff = matches!(self.mode, StepMode::FastForward);
        self.disp.dirty = false;
        self.sync.images_touched = false;
        for p in 0..self.procs.len() {
            self.step_proc(p);
        }
        if ff {
            if self.disp.dirty || self.sync.images_touched {
                // A program completed (making parked work claimable) or an
                // oracle broadcast rewrote every image mid-loop: wakes
                // cached before the change could now be too late — re-arm
                // them all.
                self.refresh_all_wakes();
            } else {
                // Only processors whose lanes were written this cycle can
                // have moved their (absolute) wake deadline.
                self.drain_dirty_wakes();
            }
        }
        self.cycle += 1;
    }

    /// Data-path completions first, then the fabric's broadcast
    /// completion — the same per-cycle order the monolithic stepper had.
    fn complete_transactions(&mut self) {
        self.complete_data();
        let fabric = self.fabric;
        fabric.complete(self);
    }

    /// Data grant first (data traffic has priority on a shared bus),
    /// then the fabric's broadcast grant.
    fn grant_transactions(&mut self) {
        self.grant_data();
        let fabric = self.fabric;
        fabric.grant(self);
    }

    /// The channel half of the quiet test: `None` when a bus, bank or
    /// deferred-image update acts this cycle, else the earliest future
    /// cycle one will (`u64::MAX` if all idle). O(banks), no per-proc
    /// walk — processor wakes live in the calendar.
    fn channel_horizon(&self) -> Option<u64> {
        let c = self.cycle;
        let mut next = u64::MAX;
        // Deferred image updates wake local spinners when due.
        if self.sync.due_min <= c {
            return None;
        }
        next = next.min(self.sync.due_min);
        // Pending cache-hit completions.
        if self.cache.pending_min <= c {
            return None;
        }
        next = next.min(self.cache.pending_min);
        // Data bus: a completion is an event; an idle bus with a queued
        // request grants this cycle.
        if let Some((_, end)) = self.mem.active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.mem.queue.is_empty() {
            return None;
        }
        // Memory banks, same shape.
        for b in &self.mem.banks {
            if let Some((_, end)) = b.active {
                if end <= c {
                    return None;
                }
                next = next.min(end);
            } else if !b.queue.is_empty() {
                return None;
            }
        }
        // Sync bus.
        if let Some((_, end)) = self.sync.active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.sync.queue.is_empty() {
            return None;
        }
        // Clustered fabric: per-cluster buses, the coalescing window and
        // the bridge channel are all delivery deadlines FF must honour.
        // `inflight` gates the walk so flat fabrics (and a drained
        // clustered one) pay one branch here.
        if let Some(cl) = self.sync.cluster.as_deref() {
            if cl.inflight > 0 {
                for (active, queue) in cl.actives.iter().zip(&cl.queues) {
                    if let Some((_, end)) = active {
                        if *end <= c {
                            return None;
                        }
                        next = next.min(*end);
                    } else if !queue.is_empty() {
                        return None;
                    }
                }
                let wmin = cl.window_min();
                if wmin <= c {
                    return None;
                }
                next = next.min(wmin);
                if let Some((_, end)) = cl.bridge_active {
                    if end <= c {
                        return None;
                    }
                    next = next.min(end);
                } else if !cl.bridge_queue.is_empty() {
                    return None;
                }
            }
        }
        Some(next)
    }

    /// The earliest cycle at or after `c1` at which processor `p` can do
    /// anything observable — `u64::MAX` if it never will on its own.
    /// `c1` is the first cycle the wake could land on: `cycle + 1` when
    /// evaluated at the end of a stepped cycle (the per-step refresh),
    /// `cycle` itself when the current cycle has not been stepped yet (a
    /// recovery rung healed state mid-loop). It mirrors
    /// [`Machine::scan_horizon`]'s per-processor clauses; every quantity
    /// it reads is either owned by `p`'s own step or re-armed by the
    /// dirty-flag refreshes in [`Machine::step`].
    fn proc_wake(&self, p: usize, c1: u64) -> u64 {
        if self.procs.is_dead(p) {
            return u64::MAX;
        }
        let mut wake = self.procs.fail_at[p];
        if self.config.faults.stall_mean_interval > 0 {
            let until = self.procs.stall_until[p];
            if c1 < until {
                // Frozen mid-stall; only a Ready processor (which drains
                // trace notes every stalled cycle) steps sooner.
                if matches!(self.procs.state(p), ProcState::Ready) {
                    return wake.min(c1);
                }
                return wake.min(until);
            }
            wake = wake.min(self.procs.next_stall[p]);
        }
        match self.procs.state(p) {
            ProcState::Idle => {
                if self.disp.can_claim(p, self.workload) {
                    wake.min(c1)
                } else {
                    wake
                }
            }
            ProcState::Ready => wake.min(c1),
            ProcState::Computing { remaining } => wake.min(c1 + u64::from(remaining)),
            ProcState::BlockedData | ProcState::BlockedSync => wake,
            ProcState::SpinLocal { var, pred } => {
                if pred.eval(self.sync.image(p, var)) {
                    wake.min(c1)
                } else {
                    // The gap check may have come due while this
                    // processor was frozen in a stall: it runs at the
                    // first unfrozen cycle, never in the past.
                    wake.min(self.rec.nack_due[p].max(c1))
                }
            }
            ProcState::SpinMem { phase, .. } => match phase {
                // A backoff that expired during a stall freeze re-issues
                // at the first unfrozen cycle (same clamp as above).
                SpinPhase::Backoff { until } => wake.min(until.max(c1)),
                // The pending transaction bounds the next event; the
                // channel horizon carries it.
                SpinPhase::WaitingResult => wake,
            },
        }
    }

    #[inline]
    fn refresh_wake(&mut self, p: usize) {
        let wake = self.proc_wake(p, self.cycle + 1);
        self.sched.schedule(p, wake);
    }

    /// Re-arms the wake deadline of every processor whose lanes were
    /// written this cycle (and only those): a clean bit means the
    /// processor's wake is an absolute deadline (retire cycle, NACK due
    /// cycle, stall end) that the cycle did not move, so its calendar
    /// entry is still live and exact.
    fn drain_dirty_wakes(&mut self) {
        for w in 0..self.procs.wake_dirty.len() {
            let mut word = std::mem::take(&mut self.procs.wake_dirty[w]);
            while word != 0 {
                let p = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                self.refresh_wake(p);
            }
        }
    }

    /// Clears every wake-dirty bit — called by the refresh-all paths,
    /// which recompute every processor's wake unconditionally.
    fn clear_wake_dirty(&mut self) {
        self.procs.wake_dirty.fill(0);
    }

    /// Re-arms every processor's wake deadline at the end of a stepped
    /// cycle — the companion to the dirty-bit refresh for mid-loop
    /// dirtying events (a program completing, an oracle broadcast) that
    /// mutate state for processors that already stepped this cycle.
    fn refresh_all_wakes(&mut self) {
        if !matches!(self.mode, StepMode::FastForward) {
            return;
        }
        self.clear_wake_dirty();
        for p in 0..self.procs.len() {
            self.refresh_wake(p);
        }
    }

    /// Re-arms every wake from *outside* a step — after a recovery rung
    /// (watchdog repair / rescue) healed state at a cycle that has not
    /// been stepped yet, so a satisfied spinner must wake this very
    /// cycle, not the next.
    fn refresh_all_wakes_now(&mut self) {
        if !matches!(self.mode, StepMode::FastForward) {
            return;
        }
        self.clear_wake_dirty();
        for p in 0..self.procs.len() {
            let wake = self.proc_wake(p, self.cycle);
            self.sched.schedule(p, wake);
        }
    }

    /// The retained linear-scan oracle: recomputes the quiet horizon the
    /// way the pre-calendar kernel did, in O(P). `None` means the cycle
    /// must be stepped; `Some(next)` that nothing observable happens
    /// before `next`. Debug builds cross-check every fast-forward jump
    /// against it.
    #[cfg(debug_assertions)]
    fn scan_horizon(&self) -> Option<u64> {
        let c = self.cycle;
        let mut next = self.channel_horizon()?;
        let stalls_on = self.config.faults.stall_mean_interval > 0;
        for p in 0..self.procs.len() {
            // Dead processors contribute no events: their stalls, spins
            // and compute remainders can never perform. A *pending* kill
            // is an event — it must land at a stepped cycle so both step
            // modes record it identically.
            if self.procs.is_dead(p) {
                continue;
            }
            if self.procs.fail_at[p] <= c {
                return None; // the fail-stop lands this cycle
            }
            next = next.min(self.procs.fail_at[p]);
            if stalls_on {
                if c >= self.procs.stall_until[p] && c >= self.procs.next_stall[p] {
                    return None; // stall onset draws RNG this cycle
                }
                if c < self.procs.stall_until[p] {
                    // Frozen until the stall ends — except that a stalled
                    // Ready processor drains trace notes every cycle.
                    if matches!(self.procs.state(p), ProcState::Ready) {
                        return None;
                    }
                    next = next.min(self.procs.stall_until[p]);
                    continue;
                }
                next = next.min(self.procs.next_stall[p]);
            }
            match self.procs.state(p) {
                ProcState::Idle => {
                    if self.disp.can_claim(p, self.workload) {
                        return None;
                    }
                }
                ProcState::Ready => return None,
                ProcState::Computing { remaining } => next = next.min(c + u64::from(remaining)),
                ProcState::BlockedData | ProcState::BlockedSync => {}
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync.image(p, var)) {
                        return None; // the spin succeeds this cycle
                    }
                    if self.rec.nack_due[p] <= c {
                        return None; // the gap check runs this cycle
                    }
                    next = next.min(self.rec.nack_due[p]);
                }
                ProcState::SpinMem { phase, .. } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if c >= until {
                            return None; // re-issues the poll this cycle
                        }
                        next = next.min(until);
                    }
                    // WaitingResult: the pending transaction bounds `next`.
                }
            }
        }
        Some(next)
    }

    /// One fast-forward advance: step normally through event cycles, and
    /// jump a whole quiet span at once, bulk-charging the skipped cycles
    /// to exactly the stat buckets the reference stepper would have
    /// ticked one by one. The next event is the minimum of the channel
    /// horizon and the calendar's earliest processor wake — no O(P)
    /// scan.
    fn fast_step(&mut self) {
        let cal_next = self.sched.earliest(self.cycle);
        let channels = self.channel_horizon();
        #[cfg(debug_assertions)]
        {
            let fast = match channels {
                _ if cal_next <= self.cycle => None,
                None => None,
                Some(h) => Some(cal_next.min(h)),
            };
            match (fast, self.scan_horizon()) {
                (Some(_), None) => {
                    unreachable!("fast-forward would skip an event at cycle {}", self.cycle)
                }
                (Some(t), Some(h)) => {
                    debug_assert!(t <= h, "fast-forward overshoots the horizon: {t} > {h}");
                }
                (None, _) => {}
            }
        }
        let next_event = match channels {
            _ if cal_next <= self.cycle => {
                // A processor wake is due now: step the cycle for real.
                self.step();
                return;
            }
            None => {
                self.step();
                return;
            }
            Some(h) => cal_next.min(h),
        };
        // Land exactly on `max_cycles` so the timeout check fires with
        // the same cycle as per-cycle stepping.
        let mut target = next_event.min(self.config.max_cycles);
        // A computing processor notes progress every cycle; only when
        // none is running can the watchdog's silence bound bind. A dead
        // processor's frozen Computing state is not progress. Without
        // stall injection the cached counter answers in O(1); with it,
        // stalled computing processors must be excluded the slow way.
        let stalls_on = self.config.faults.stall_mean_interval > 0;
        let progressing = if stalls_on {
            (0..self.procs.len()).any(|p| {
                !self.procs.is_dead(p)
                    && self.cycle >= self.procs.stall_until[p]
                    && matches!(self.procs.state(p), ProcState::Computing { .. })
            })
        } else {
            self.procs.computing > 0
        };
        if !progressing {
            target = target.min(self.last_progress.saturating_add(self.watchdog_limit + 1));
        }
        debug_assert!(target > self.cycle, "quiet horizon must move time forward");
        let delta = target - self.cycle;
        for p in 0..self.procs.len() {
            if self.procs.is_dead(p) {
                self.procs.stats[p].dead += delta;
                continue;
            }
            if self.cycle < self.procs.stall_until[p] {
                self.procs.stats[p].stalled += delta;
                continue;
            }
            match self.procs.state(p) {
                ProcState::Idle => self.procs.stats[p].idle += delta,
                ProcState::Computing { remaining } => {
                    self.procs.stats[p].busy += delta;
                    // delta <= remaining by the horizon bound.
                    self.procs.tick_computing(p, remaining - delta as u32);
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs.stats[p].blocked += delta;
                }
                ProcState::SpinLocal { .. } | ProcState::SpinMem { .. } => {
                    self.procs.stats[p].spin += delta;
                }
                ProcState::Ready => unreachable!("a ready processor is never quiet"),
            }
        }
        if progressing {
            self.last_progress = target - 1;
        }
        self.cycle = target;
    }

    pub(crate) fn unblock(&mut self, proc: usize) {
        self.close_wait(proc);
        self.procs.set_state(proc, ProcState::Ready);
        if self.procs.is_dead(proc) {
            // An in-flight transaction still performs after its issuer
            // fail-stops (it was already in the interconnect), but the
            // dead processor never steps again to witness it: record
            // its trailing trace notes at the completion cycle, exactly
            // when a live processor would have retired them.
            self.drain_notes(proc);
        }
    }

    /// Records an injected fault in both the note trace and the event
    /// ring.
    #[cold]
    #[inline(never)]
    pub(crate) fn record_fault(&mut self, proc: Option<usize>, class: FaultClass, magnitude: u64) {
        self.trace.record_fault(self.cycle, proc, class, magnitude);
        self.events.record(self.cycle, SimEventKind::Fault { class, proc, magnitude });
    }
}

#[cfg(test)]
mod tests;

//! Workloads: the programs a machine runs and how they are handed out.

use crate::program::Program;

/// How iteration programs are handed to processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchMode {
    /// Processor self-scheduling (the paper's assumed policy): free
    /// processors claim the lowest unclaimed program, paying
    /// `dispatch_latency` cycles per claim.
    Dynamic,
    /// A fixed assignment: `assignment[p]` is the ordered list of program
    /// indices processor `p` runs. Used for phase-structured workloads
    /// (barriers, wavefronts).
    Static(Vec<Vec<usize>>),
}

/// A set of programs plus the dispatch policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The programs (for Doacross loops: one per iteration, in order).
    pub programs: Vec<Program>,
    /// Dispatch policy.
    pub dispatch: DispatchMode,
}

impl Workload {
    /// A dynamic (self-scheduled) workload.
    pub fn dynamic(programs: Vec<Program>) -> Self {
        Self { programs, dispatch: DispatchMode::Dynamic }
    }

    /// A statically assigned workload with **cyclic** (interleaved)
    /// iteration order: processor `p` runs programs `p, p+P, p+2P, …` —
    /// the classic Doacross assignment.
    pub fn static_cyclic(programs: Vec<Program>, procs: usize) -> Self {
        let assignment = (0..procs).map(|p| (p..programs.len()).step_by(procs).collect()).collect();
        Self::static_assigned(programs, assignment)
    }

    /// A statically assigned workload with **blocked** iteration order:
    /// processor `p` runs a contiguous chunk. For Doacross loops with
    /// backward dependences this serializes the processors — the
    /// scheduling-order effect of the paper's reference [23].
    pub fn static_blocked(programs: Vec<Program>, procs: usize) -> Self {
        let n = programs.len();
        let chunk = n.div_ceil(procs.max(1));
        let assignment = (0..procs)
            .map(|p| {
                let lo = (p * chunk).min(n);
                let hi = ((p + 1) * chunk).min(n);
                (lo..hi).collect()
            })
            .collect();
        Self::static_assigned(programs, assignment)
    }

    /// A statically assigned workload.
    ///
    /// # Panics
    ///
    /// Panics if an assignment references a missing program.
    pub fn static_assigned(programs: Vec<Program>, assignment: Vec<Vec<usize>>) -> Self {
        for q in &assignment {
            for &ix in q {
                assert!(ix < programs.len(), "assignment references program {ix}");
            }
        }
        Self { programs, dispatch: DispatchMode::Static(assignment) }
    }

    /// Number of synchronization variables required.
    pub fn n_sync_vars(&self) -> usize {
        self.programs
            .iter()
            .filter_map(Program::max_sync_var)
            .max()
            .map_or(0, |v| v + 1)
    }
}

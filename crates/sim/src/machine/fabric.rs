//! The synchronization fabric: how sync-variable writes reach the
//! global state and every processor's local image.
//!
//! The paper's §6 argues for a **dedicated** synchronization bus with
//! per-processor local images. This module makes that interconnect a
//! swappable backend behind the [`SyncFabric`] trait:
//!
//! * [`DedicatedBus`] — the paper's hardware and the default: a
//!   separate bus, posted broadcasts, local-image spinning at zero
//!   traffic. Bit-identical to the pre-fabric simulator.
//! * [`SharedDataBus`] — no dedicated hardware: broadcasts arbitrate
//!   against data traffic for the one physical bus (data has priority,
//!   and a broadcast in flight blocks data grants). Quantifies what §6's
//!   dedicated bus actually buys.
//! * [`IdealFabric`] — a zero-latency oracle: posts and RMWs perform
//!   globally and in every image the instant they issue, at zero
//!   occupancy and immune to sync-path faults. The upper bound any
//!   interconnect could approach.
//! * [`ClusteredFabric`] — a two-level hierarchy for large P: per-cluster
//!   dedicated buses with independent arbitration deliver to their own
//!   cluster's images, then submit the variable to a bridge that batches
//!   same-variable updates within a coalescing window before forwarding
//!   one broadcast to every cluster. Because sync variables are monotone
//!   counters and the bridge re-reads the global value at delivery,
//!   folding partial barrier/SC/PC counts into one forward is lossless —
//!   the aggregation that keeps the bridge off the critical path at
//!   P=1024+.
//!
//! Backends are stateless: all transport state (global values, images,
//! the broadcast queue, deferred image updates, sequence tags) lives in
//! [`SyncState`], owned by the machine, so the fast-forward and
//! reference steppers dispatch through one interface and the
//! equivalence suite proves them bit-identical per fabric. Sync-path
//! fault injection (drops, delays, reorders, stale/lost images) and the
//! NACK/retransmit recovery path operate on the queued-broadcast
//! machinery and therefore apply to the bus backends only; the oracle
//! has no queue to fault. On the clustered fabric the queue faults hit
//! the per-cluster buses, and the per-image loss/stale faults apply to
//! both cluster-local and bridge deliveries, so the recovery ladder is
//! exercised across the bridge too.

use super::Machine;
use crate::config::FabricKind;
use crate::events::SimEventKind;
use crate::faults::FaultClass;
use crate::program::SyncVar;
use std::collections::VecDeque;

/// A queued synchronization operation.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SyncReq {
    Post { proc: usize, var: SyncVar, val: u64 },
    Rmw { proc: usize, var: SyncVar },
}

/// A sync-bus message with its fault-injection bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedSync {
    pub(crate) req: SyncReq,
    /// Issue-order tag. Broadcast hardware stamps messages so a stale
    /// redelivery or reordered grant of an *older* write can be
    /// recognized and discarded instead of clobbering a newer value
    /// (sync variables are monotonic counters in every scheme; a
    /// regression would wedge every waiter past the lost value).
    pub(crate) seq: u64,
    /// Times this message was dropped and re-queued (capped by
    /// `FaultPlan::max_redeliveries`, so delivery is eventual).
    pub(crate) redeliveries: u32,
    /// Cycle of the first grant — or, for a message overtaken by a
    /// reordered grant, the cycle it *would* have been granted — used to
    /// measure recovery latency.
    pub(crate) first_grant: Option<u64>,
    /// Whether any fault touched this message (only faulted messages
    /// contribute to recovery-latency stats).
    pub(crate) faulted: bool,
    /// A NACK-triggered re-broadcast. A refresh carries no payload of
    /// its own: it re-reads the *current* global value at delivery time
    /// (a value captured at NACK time could be overtaken by an RMW
    /// granted in between and would regress the variable), and it is
    /// never a coalescing target (folding a real post into a refresh
    /// would discard the post's value).
    pub(crate) refresh: bool,
}

impl QueuedSync {
    pub(crate) fn new(req: SyncReq, seq: u64) -> Self {
        Self { req, seq, redeliveries: 0, first_grant: None, faulted: false, refresh: false }
    }
}

/// Per-variable synchronization state in struct-of-arrays layout: one
/// lane per field, indexed by [`SyncVar`].
#[derive(Debug)]
pub(crate) struct VarLanes {
    /// Globally-performed value of each synchronization variable.
    pub(crate) global: Vec<u64>,
    /// Per-variable tag of the last applied sync write; an arriving
    /// message with an older tag is a stale redelivery and is discarded.
    pub(crate) applied_seq: Vec<u64>,
}

/// Two-level transport state for the [`ClusteredFabric`]: the
/// per-cluster broadcast queues/buses and the bridge between them.
/// `None` on flat fabrics (allocated once at machine setup).
///
/// The bridge pipeline per completed cluster broadcast:
/// cluster bus → coalescing `window` (folds same-variable followers) →
/// `bridge_queue` → `bridge_active` (one forward at a time, delivering
/// the *current* global value to every image).
#[derive(Debug)]
pub(crate) struct ClusterState {
    /// Number of per-cluster buses.
    pub(crate) clusters: usize,
    /// Processors per cluster (`procs / clusters`).
    pub(crate) cluster_size: usize,
    /// Cycles the bridge holds its channel per forward.
    pub(crate) bridge_latency: u64,
    /// Cycles a first submission waits for same-variable followers.
    pub(crate) coalesce_window: u64,
    /// Broadcasts waiting for each cluster's bus.
    pub(crate) queues: Vec<VecDeque<QueuedSync>>,
    /// The broadcast holding each cluster's bus, with its end cycle.
    pub(crate) actives: Vec<Option<(QueuedSync, u64)>>,
    /// Coalescing window: `(var, flush_cycle)` in submission order.
    /// Flush cycles are non-decreasing (every entry waits the same
    /// window), so the front is always the earliest.
    pub(crate) window: VecDeque<(SyncVar, u64)>,
    /// Variables flushed from the window, waiting for the bridge.
    pub(crate) bridge_queue: VecDeque<SyncVar>,
    /// The forward holding the bridge, with its end cycle.
    pub(crate) bridge_active: Option<(SyncVar, u64)>,
    /// Per-variable flag: a forward of this variable is pending
    /// somewhere in window/queue/active, so a new submission folds into
    /// it (O(1) membership instead of scanning the pipeline).
    pub(crate) bridge_pending: Vec<bool>,
    /// Total entries across queues, actives, window, bridge queue and
    /// bridge active — 0 iff the whole two-level transport is idle,
    /// giving `finished`/`deadlocked`/the fast-forward horizon an O(1)
    /// idle check.
    pub(crate) inflight: usize,
}

impl ClusterState {
    fn new(procs: usize, n_vars: usize, clusters: u32, bridge_latency: u32, window: u32) -> Self {
        let clusters = (clusters as usize).max(1);
        debug_assert!(procs.is_multiple_of(clusters), "validate() guarantees clusters divides P");
        Self {
            clusters,
            cluster_size: procs / clusters,
            bridge_latency: u64::from(bridge_latency.max(1)),
            coalesce_window: u64::from(window),
            queues: vec![VecDeque::new(); clusters], // alloc-ok: setup
            actives: vec![None; clusters],           // alloc-ok: setup
            window: VecDeque::new(),
            bridge_queue: VecDeque::new(),
            bridge_active: None,
            bridge_pending: vec![false; n_vars], // alloc-ok: setup
            inflight: 0,
        }
    }

    /// Cluster owning processor `p`.
    #[inline]
    pub(crate) fn cluster_of(&self, p: usize) -> usize {
        p / self.cluster_size
    }

    /// Earliest window flush cycle (`u64::MAX` when the window is
    /// empty).
    #[inline]
    pub(crate) fn window_min(&self) -> u64 {
        self.window.front().map_or(u64::MAX, |&(_, flush)| flush)
    }
}

/// All synchronization-transport state: the authoritative global
/// values, per-processor local images, the broadcast queue, and the
/// deferred-image and sequence-tag machinery faults and recovery hang
/// off. Owned by the machine; backends are stateless.
///
/// Local images live in one flat **var-major** block
/// (`images[var * procs + p]`), so a broadcast delivery to all P
/// consumers is one contiguous lane fill instead of P strided stores —
/// see [`Machine::write_sync`].
#[derive(Debug)]
pub(crate) struct SyncState {
    /// Per-variable lanes (global values, applied sequence tags).
    pub(crate) vars: VarLanes,
    /// Flat var-major per-processor local images.
    images: Vec<u64>,
    /// Processor count (the images' minor stride).
    procs: usize,
    /// Broadcasts waiting for the sync bus.
    pub(crate) queue: VecDeque<QueuedSync>,
    /// The broadcast currently holding the bus, with its end cycle.
    pub(crate) active: Option<(QueuedSync, u64)>,
    /// Next sync-message issue tag (see [`QueuedSync::seq`]).
    pub(crate) seq: u64,
    /// Deferred local-image updates per processor: `(apply_cycle, var,
    /// val)` in FIFO order, so one image always sees writes in the order
    /// they were performed globally, just late.
    pub(crate) defer: Vec<VecDeque<(u64, SyncVar, u64)>>,
    /// Total entries across all `defer` queues; 0 lets
    /// [`Machine::write_sync`] take the batched lane-fill path.
    defer_len: usize,
    /// Earliest due cycle across all `defer` queues (`u64::MAX` when
    /// every queue is empty), so quiescent processors cost nothing in
    /// [`Machine::apply_deferred_images`].
    pub(crate) due_min: u64,
    /// Set when the [`IdealFabric`] oracle rewrites every image
    /// mid-cycle (during the processor loop): wakes cached by
    /// already-stepped spinners may now be too late, so the stepper must
    /// re-arm them. Cleared by the stepper each cycle.
    pub(crate) images_touched: bool,
    /// Two-level transport state ([`ClusteredFabric`] only; `None` on
    /// flat fabrics, whose behaviour is untouched).
    pub(crate) cluster: Option<Box<ClusterState>>,
}

impl SyncState {
    /// Fresh transport state for `p` processors and `n_vars` variables.
    pub(crate) fn new(p: usize, n_vars: usize) -> Self {
        Self {
            vars: VarLanes { global: vec![0; n_vars], applied_seq: vec![0; n_vars] }, // alloc-ok: setup
            images: vec![0; n_vars * p], // alloc-ok: setup
            procs: p,
            queue: VecDeque::new(),
            active: None,
            seq: 0,
            defer: vec![VecDeque::new(); p], // alloc-ok: setup
            defer_len: 0,
            due_min: u64::MAX,
            images_touched: false,
            cluster: None,
        }
    }

    /// Installs the two-level transport state for a
    /// [`FabricKind::Clustered`] machine (setup only).
    pub(crate) fn install_clusters(&mut self, clusters: u32, bridge_latency: u32, window: u32) {
        let n_vars = self.n_vars();
        self.cluster =
            Some(Box::new(ClusterState::new(self.procs, n_vars, clusters, bridge_latency, window)));
        // alloc-ok: setup
    }

    /// True when the two-level transport (if any) holds no in-flight
    /// work. Always true on flat fabrics.
    #[inline]
    pub(crate) fn clusters_idle(&self) -> bool {
        self.cluster.as_ref().is_none_or(|cl| cl.inflight == 0)
    }

    /// Number of synchronization variables.
    pub(crate) fn n_vars(&self) -> usize {
        self.vars.global.len()
    }

    /// Processor `p`'s local image of `var`.
    #[inline]
    pub(crate) fn image(&self, p: usize, var: SyncVar) -> u64 {
        self.images[var * self.procs + p]
    }

    #[inline]
    pub(crate) fn set_image(&mut self, p: usize, var: SyncVar, val: u64) {
        self.images[var * self.procs + p] = val;
    }

    /// All P images of `var` as one contiguous lane.
    #[inline]
    pub(crate) fn var_images_mut(&mut self, var: SyncVar) -> &mut [u64] {
        let p = self.procs;
        &mut self.images[var * p..(var + 1) * p]
    }

    /// Grows the per-variable lanes (and the image block) to `n` vars.
    pub(crate) fn resize_vars(&mut self, n: usize) {
        self.vars.global.resize(n, 0); // alloc-ok: setup
        self.vars.applied_seq.resize(n, 0); // alloc-ok: setup
        self.images.resize(n * self.procs, 0); // alloc-ok: setup
        if let Some(cl) = &mut self.cluster {
            cl.bridge_pending.resize(n, false); // alloc-ok: setup
        }
    }

    /// Queues a deferred image update, maintaining the count and the
    /// due-time minimum. All deferral paths must go through here so the
    /// batched-broadcast guard (`defer_len == 0`) stays truthful.
    pub(crate) fn push_defer(&mut self, p: usize, when: u64, var: SyncVar, val: u64) {
        self.defer[p].push_back((when, var, val));
        self.defer_len += 1;
        self.due_min = self.due_min.min(when);
    }

    /// Pops processor `p`'s oldest deferred update, if any (callers
    /// recompute `due_min` when they stop popping).
    pub(crate) fn pop_defer(&mut self, p: usize) -> Option<(u64, SyncVar, u64)> {
        let e = self.defer[p].pop_front();
        if e.is_some() {
            self.defer_len -= 1;
        }
        e
    }
}

/// A synchronization-fabric backend: the transport that carries
/// dedicated-transport sync operations (posted writes and atomic
/// fetch-increments) to the global state and the local images.
///
/// Backends are stateless unit structs ([`FabricKind::backend`] hands
/// out `&'static` instances); all mutable transport state lives in the
/// machine's [`SyncState`]. Every method runs only at stepped
/// (non-quiet) cycles, which is what keeps the fast-forward and
/// reference steppers bit-identical per fabric.
pub trait SyncFabric: std::fmt::Debug + Sync {
    /// The configuration tag this backend implements.
    fn kind(&self) -> FabricKind;

    /// Whether sync grants contend with data traffic for one physical
    /// bus (no dedicated sync hardware).
    fn shares_data_bus(&self) -> bool {
        false
    }

    /// Issues a posted write of `val` to `var` from `proc`. Posted
    /// writes never block the issuing processor.
    fn post(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar, val: u64);

    /// Issues an atomic fetch-increment on `var` from `proc`. Returns
    /// `true` when the operation completed instantly (the processor
    /// does not block on the sync bus).
    fn rmw(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar) -> bool;

    /// Arbitrates pending broadcasts for this cycle, granting at most
    /// one.
    fn grant(&self, m: &mut Machine<'_>);

    /// Completes a broadcast whose bus tenure ends this cycle,
    /// delivering it (or re-queueing it under an injected drop).
    fn complete(&self, m: &mut Machine<'_>) {
        m.complete_sync();
    }
}

/// The paper's §6 hardware: a dedicated synchronization bus, physically
/// separate from the data bus, broadcasting posted writes to
/// per-processor local images.
#[derive(Debug)]
pub struct DedicatedBus;

impl SyncFabric for DedicatedBus {
    fn kind(&self) -> FabricKind {
        FabricKind::Dedicated
    }

    fn post(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar, val: u64) {
        m.post_sync_write(proc, var, val);
    }

    fn rmw(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar) -> bool {
        m.enqueue_rmw(proc, var);
        false
    }

    fn grant(&self, m: &mut Machine<'_>) {
        m.grant_sync_queue(false);
    }
}

/// No dedicated hardware: broadcasts ride the one physical bus and
/// arbitrate against data traffic (data has priority; an in-flight
/// broadcast blocks data grants and vice versa). A granted broadcast's
/// tenure is charged to both bus-occupancy counters — there is only one
/// bus, and those cycles are unavailable to data traffic.
#[derive(Debug)]
pub struct SharedDataBus;

impl SyncFabric for SharedDataBus {
    fn kind(&self) -> FabricKind {
        FabricKind::Shared
    }

    fn shares_data_bus(&self) -> bool {
        true
    }

    fn post(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar, val: u64) {
        m.post_sync_write(proc, var, val);
    }

    fn rmw(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar) -> bool {
        m.enqueue_rmw(proc, var);
        false
    }

    fn grant(&self, m: &mut Machine<'_>) {
        // Data traffic was granted first this cycle (priority); the
        // bus must be entirely free for a broadcast to start.
        if m.mem.active.is_some() {
            return;
        }
        m.grant_sync_queue(true);
    }
}

/// A zero-latency oracle: posts and RMWs perform globally and in every
/// local image the instant they issue. No queue, no occupancy, no RNG
/// draws, immune to sync-path faults — the upper bound on what any sync
/// interconnect could achieve.
#[derive(Debug)]
pub struct IdealFabric;

impl SyncFabric for IdealFabric {
    fn kind(&self) -> FabricKind {
        FabricKind::Ideal
    }

    fn post(&self, m: &mut Machine<'_>, _proc: usize, var: SyncVar, val: u64) {
        m.metrics.sync_vars[var].posts += 1;
        m.apply_instantly(var, val);
    }

    fn rmw(&self, m: &mut Machine<'_>, _proc: usize, var: SyncVar) -> bool {
        let val = m.sync.vars.global[var] + 1;
        m.stats.rmw_ops += 1;
        m.apply_instantly(var, val);
        true
    }

    fn grant(&self, m: &mut Machine<'_>) {
        debug_assert!(m.sync.queue.is_empty(), "the oracle never queues broadcasts");
    }

    fn complete(&self, m: &mut Machine<'_>) {
        debug_assert!(m.sync.active.is_none(), "the oracle never holds a bus");
    }
}

/// The two-level hierarchy for large P: per-cluster dedicated buses
/// joined by a coalescing bridge (see [`ClusterState`] for the
/// pipeline). Like every backend it is stateless — the geometry
/// (cluster count, bridge latency, coalescing window) is read from the
/// machine's [`FabricKind::Clustered`] config at setup and lives in
/// [`SyncState::cluster`].
#[derive(Debug)]
pub struct ClusteredFabric;

impl SyncFabric for ClusteredFabric {
    fn kind(&self) -> FabricKind {
        // Representative tag: the live geometry is per-machine config,
        // not backend state.
        FabricKind::clustered(4)
    }

    fn post(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar, val: u64) {
        m.post_sync_clustered(proc, var, val);
    }

    fn rmw(&self, m: &mut Machine<'_>, proc: usize, var: SyncVar) -> bool {
        m.enqueue_rmw_clustered(proc, var);
        false
    }

    fn grant(&self, m: &mut Machine<'_>) {
        m.grant_clustered();
    }

    fn complete(&self, m: &mut Machine<'_>) {
        m.complete_clustered();
    }
}

static DEDICATED: DedicatedBus = DedicatedBus;
static SHARED: SharedDataBus = SharedDataBus;
static IDEAL: IdealFabric = IdealFabric;
static CLUSTERED: ClusteredFabric = ClusteredFabric;

impl FabricKind {
    /// The stateless backend instance implementing this kind.
    pub(crate) fn backend(self) -> &'static dyn SyncFabric {
        match self {
            FabricKind::Dedicated => &DEDICATED,
            FabricKind::Shared => &SHARED,
            FabricKind::Ideal => &IDEAL,
            FabricKind::Clustered { .. } => &CLUSTERED,
        }
    }
}

impl<'a> Machine<'a> {
    pub(crate) fn next_sync_seq(&mut self) -> u64 {
        self.sync.seq += 1;
        self.sync.seq
    }

    /// Queues a posted sync write, coalescing into an already-queued
    /// post to the same variable from the same processor when enabled
    /// (Section 6 optimization).
    pub(crate) fn post_sync_write(&mut self, proc: usize, var: SyncVar, val: u64) {
        self.metrics.sync_vars[var].posts += 1;
        self.stats.sync_ops_issued += 1;
        let seq = self.next_sync_seq();
        if self.config.coalesce_sync_writes {
            for pending in self.sync.queue.iter_mut() {
                if pending.refresh {
                    // Never fold a real post into a refresh: the refresh
                    // re-reads global at delivery and would drop `val`.
                    continue;
                }
                if let SyncReq::Post { proc: p, var: v, val: pv } = &mut pending.req {
                    if *p == proc && *v == var {
                        *pv = val;
                        // The coalesced message now carries the newest
                        // write: retag it so it is not discarded as stale.
                        pending.seq = seq;
                        self.stats.coalesced_writes += 1;
                        return;
                    }
                }
            }
        }
        self.sync
            .queue
            .push_back(QueuedSync::new(SyncReq::Post { proc, var, val }, seq));
    }

    /// Queues an atomic fetch-increment broadcast from `proc`.
    pub(crate) fn enqueue_rmw(&mut self, proc: usize, var: SyncVar) {
        self.stats.sync_ops_issued += 1;
        let seq = self.next_sync_seq();
        self.sync.queue.push_back(QueuedSync::new(SyncReq::Rmw { proc, var }, seq));
    }

    /// Performs a sync write instantly — globally and in every image —
    /// for the [`IdealFabric`] oracle. Bypasses the queue, the faults
    /// and the deferral machinery entirely (the oracle cannot lose or
    /// lag an update), but still counts the delivery so traffic columns
    /// stay comparable across fabrics.
    pub(crate) fn apply_instantly(&mut self, var: SyncVar, val: u64) {
        self.stats.sync_ops_issued += 1;
        self.stats.sync_broadcasts += 1;
        self.sync.vars.global[var] = val;
        self.sync.var_images_mut(var).fill(val);
        self.sync.images_touched = true;
        self.events
            .record(self.cycle, SimEventKind::SyncDeliver { var, val, stale: false });
        self.note_progress();
    }

    /// Grants the sync bus to the next queued broadcast, modelling the
    /// faulty-arbiter reordering and injected grant delays. With
    /// `shared_bus`, the grant's tenure is also charged to the data-bus
    /// occupancy counter — it is the same physical bus.
    pub(crate) fn grant_sync_queue(&mut self, shared_bus: bool) {
        if self.sync.active.is_some() {
            return;
        }
        let f = self.config.faults;
        let picked = if f.broadcast_reorder_pct > 0
            && self.sync.queue.len() >= 2
            && self.rng.chance_pct(f.broadcast_reorder_pct)
        {
            // Faulty arbiter: grant a younger message. The overtaken
            // head is marked faulted with its counterfactual grant
            // cycle, so its recovery latency is measured end-to-end.
            self.stats.faults.reordered_broadcasts += 1;
            self.record_fault(None, FaultClass::BroadcastReorder, 0);
            if let Some(head) = self.sync.queue.front_mut() {
                head.faulted = true;
                head.first_grant.get_or_insert(self.cycle);
            }
            let ix = self.rng.range_usize(1, self.sync.queue.len() - 1);
            self.sync.queue.remove(ix)
        } else {
            self.sync.queue.pop_front()
        };
        if let Some(mut entry) = picked {
            // Recovery refreshes occupy the bus but are not counted as
            // broadcasts: they re-deliver an already-performed value,
            // and counting them would break the conservation identity
            // (issued == broadcasts + coalesced) whenever a legitimate
            // fault-free NACK fires.
            if !entry.refresh {
                self.stats.sync_broadcasts += 1;
            }
            if let SyncReq::Rmw { .. } = entry.req {
                self.stats.rmw_ops += 1;
            }
            entry.first_grant.get_or_insert(self.cycle);
            let mut dur = u64::from(self.config.sync_bus_latency);
            if f.broadcast_delay_pct > 0 && self.rng.chance_pct(f.broadcast_delay_pct) {
                let extra = u64::from(self.rng.range_u32(1, f.broadcast_delay_max));
                dur += extra;
                entry.faulted = true;
                self.stats.faults.delayed_broadcasts += 1;
                self.stats.faults.delay_cycles += extra;
                self.record_fault(None, FaultClass::BroadcastDelay, extra);
            }
            let (var, rmw) = match entry.req {
                SyncReq::Post { var, .. } => (var, false),
                SyncReq::Rmw { var, .. } => (var, true),
            };
            self.metrics.sync_bus_busy += dur;
            if shared_bus {
                // One physical bus: these cycles are lost to data
                // traffic too.
                self.metrics.data_bus_busy += dur;
            }
            self.events.record(self.cycle, SimEventKind::SyncGrant { var, rmw, dur });
            self.sync.active = Some((entry, self.cycle + dur));
            self.note_progress();
        }
    }

    /// Completes the broadcast whose bus tenure ends this cycle:
    /// re-queues it under an injected drop, discards it as stale if a
    /// newer write already performed, or delivers it (a refresh
    /// re-reading the current global value).
    pub(crate) fn complete_sync(&mut self) {
        let Some((entry, end)) = self.sync.active else { return };
        if end != self.cycle {
            return;
        }
        self.sync.active = None;
        let f = self.config.faults;
        if f.broadcast_drop_pct > 0
            && entry.redeliveries < f.max_redeliveries
            && self.rng.chance_pct(f.broadcast_drop_pct)
        {
            // Lost broadcast: re-queue for (bounded) redelivery.
            self.stats.faults.dropped_broadcasts += 1;
            self.record_fault(None, FaultClass::BroadcastDrop, 0);
            self.sync.queue.push_back(QueuedSync {
                redeliveries: entry.redeliveries + 1,
                faulted: true,
                ..entry
            });
        } else {
            if entry.faulted {
                if let Some(first) = entry.first_grant {
                    let fault_free = first + u64::from(self.config.sync_bus_latency);
                    let rec = self.cycle.saturating_sub(fault_free);
                    self.stats.faults.recovery_cycles += rec;
                    self.stats.faults.recovery_max = self.stats.faults.recovery_max.max(rec);
                }
            }
            match entry.req {
                SyncReq::Post { var, .. } if entry.refresh => {
                    // A refresh heals images from the *current* global
                    // value (a payload captured at NACK time could have
                    // been overtaken by an RMW granted since, and
                    // re-applying it would regress the counter). It is
                    // not a write: it never advances `applied_seq` — a
                    // refresh outrunning an older-seq real post still in
                    // flight would otherwise get that post discarded as
                    // stale, losing the write — and cannot itself be
                    // stale.
                    let val = self.sync.vars.global[var];
                    self.events
                        .record(self.cycle, SimEventKind::SyncDeliver { var, val, stale: false });
                    self.write_sync(var, val);
                }
                SyncReq::Post { var, val, .. } => {
                    let stale = entry.seq <= self.sync.vars.applied_seq[var];
                    self.events.record(self.cycle, SimEventKind::SyncDeliver { var, val, stale });
                    if !stale {
                        self.sync.vars.applied_seq[var] = entry.seq;
                        self.write_sync(var, val);
                    } else {
                        // A drop or reorder let a newer write to
                        // this variable perform first: this late
                        // delivery is stale and must be discarded,
                        // not applied (sync variables are
                        // monotonic counters; regressing one would
                        // wedge every waiter past the lost value).
                        self.stats.faults.stale_deliveries_discarded += 1;
                    }
                }
                SyncReq::Rmw { proc, var } => {
                    self.sync.vars.applied_seq[var] =
                        self.sync.vars.applied_seq[var].max(entry.seq);
                    let v = self.sync.vars.global[var] + 1;
                    self.events.record(
                        self.cycle,
                        SimEventKind::SyncDeliver { var, val: v, stale: false },
                    );
                    self.write_sync(var, v);
                    self.unblock(proc);
                }
            }
            self.note_progress();
        }
    }

    /// Queues a posted sync write on the issuing processor's cluster
    /// bus, coalescing into an already-queued post to the same variable
    /// from the same processor on that bus when enabled. The clustered
    /// counterpart of [`Machine::post_sync_write`].
    pub(crate) fn post_sync_clustered(&mut self, proc: usize, var: SyncVar, val: u64) {
        self.metrics.sync_vars[var].posts += 1;
        self.stats.sync_ops_issued += 1;
        let seq = self.next_sync_seq();
        let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
        let c = cl.cluster_of(proc);
        if self.config.coalesce_sync_writes {
            for pending in cl.queues[c].iter_mut() {
                if pending.refresh {
                    // Never fold a real post into a refresh (see
                    // post_sync_write).
                    continue;
                }
                if let SyncReq::Post { proc: p, var: v, val: pv } = &mut pending.req {
                    if *p == proc && *v == var {
                        *pv = val;
                        pending.seq = seq;
                        self.stats.coalesced_writes += 1;
                        return;
                    }
                }
            }
        }
        cl.queues[c].push_back(QueuedSync::new(SyncReq::Post { proc, var, val }, seq));
        cl.inflight += 1;
    }

    /// Queues an atomic fetch-increment on the issuing processor's
    /// cluster bus.
    pub(crate) fn enqueue_rmw_clustered(&mut self, proc: usize, var: SyncVar) {
        self.stats.sync_ops_issued += 1;
        let seq = self.next_sync_seq();
        let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
        let c = cl.cluster_of(proc);
        cl.queues[c].push_back(QueuedSync::new(SyncReq::Rmw { proc, var }, seq));
        cl.inflight += 1;
    }

    /// Queues a broadcast on `proc`'s transport: its cluster bus when
    /// clustered, the flat sync queue otherwise. Recovery retransmissions
    /// go through here so a NACKing processor's refresh rides its own
    /// cluster's bus.
    pub(crate) fn push_sync_for_proc(&mut self, proc: usize, msg: QueuedSync) {
        match self.sync.cluster.as_mut() {
            Some(cl) => {
                let c = cl.cluster_of(proc);
                cl.queues[c].push_back(msg);
                cl.inflight += 1;
            }
            None => self.sync.queue.push_back(msg),
        }
    }

    /// One arbitration pass of the two-level transport: flush the
    /// coalescing window, grant each idle cluster bus, then grant the
    /// bridge. Clusters arbitrate independently — this is where the
    /// flat bus's P-wide serialization disappears.
    pub(crate) fn grant_clustered(&mut self) {
        let cl = self.sync.cluster.as_ref().expect("clustered fabric state");
        if cl.inflight == 0 {
            return;
        }
        let clusters = cl.clusters;
        self.flush_bridge_window();
        for c in 0..clusters {
            self.grant_cluster_bus(c);
        }
        self.grant_bridge();
    }

    /// Moves window entries whose coalescing window has elapsed to the
    /// bridge queue (in submission order).
    fn flush_bridge_window(&mut self) {
        let cycle = self.cycle;
        let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
        while let Some(&(var, flush)) = cl.window.front() {
            if flush > cycle {
                break;
            }
            cl.window.pop_front();
            cl.bridge_queue.push_back(var);
        }
    }

    /// Grants cluster `c`'s bus to its next queued broadcast, modelling
    /// the same faulty-arbiter reordering and grant delays as the flat
    /// bus (each cluster bus has its own arbiter and draws its own
    /// faults).
    fn grant_cluster_bus(&mut self, c: usize) {
        if self.sync.cluster.as_ref().expect("clustered fabric state").actives[c].is_some() {
            return;
        }
        let f = self.config.faults;
        let queued = self.sync.cluster.as_ref().expect("clustered fabric state").queues[c].len();
        let picked = if f.broadcast_reorder_pct > 0
            && queued >= 2
            && self.rng.chance_pct(f.broadcast_reorder_pct)
        {
            self.stats.faults.reordered_broadcasts += 1;
            self.record_fault(None, FaultClass::BroadcastReorder, 0);
            let cycle = self.cycle;
            let ix = self.rng.range_usize(1, queued - 1);
            let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
            if let Some(head) = cl.queues[c].front_mut() {
                head.faulted = true;
                head.first_grant.get_or_insert(cycle);
            }
            cl.queues[c].remove(ix)
        } else {
            self.sync.cluster.as_mut().expect("clustered fabric state").queues[c].pop_front()
        };
        if let Some(mut entry) = picked {
            // Recovery refreshes occupy the bus but are not counted as
            // broadcasts: they re-deliver an already-performed value,
            // and counting them would break the conservation identity
            // (issued == broadcasts + coalesced) whenever a legitimate
            // fault-free NACK fires.
            if !entry.refresh {
                self.stats.sync_broadcasts += 1;
            }
            if let SyncReq::Rmw { .. } = entry.req {
                self.stats.rmw_ops += 1;
            }
            entry.first_grant.get_or_insert(self.cycle);
            let mut dur = u64::from(self.config.sync_bus_latency);
            if f.broadcast_delay_pct > 0 && self.rng.chance_pct(f.broadcast_delay_pct) {
                let extra = u64::from(self.rng.range_u32(1, f.broadcast_delay_max));
                dur += extra;
                entry.faulted = true;
                self.stats.faults.delayed_broadcasts += 1;
                self.stats.faults.delay_cycles += extra;
                self.record_fault(None, FaultClass::BroadcastDelay, extra);
            }
            let (var, rmw) = match entry.req {
                SyncReq::Post { var, .. } => (var, false),
                SyncReq::Rmw { var, .. } => (var, true),
            };
            // Summed over parallel cluster buses (can exceed makespan,
            // like bank_busy).
            self.metrics.sync_bus_busy += dur;
            self.events.record(self.cycle, SimEventKind::SyncGrant { var, rmw, dur });
            self.sync.cluster.as_mut().expect("clustered fabric state").actives[c] =
                Some((entry, self.cycle + dur));
            self.note_progress();
        }
    }

    /// Grants the bridge to the next flushed variable. One forward at a
    /// time: the bridge is a single shared channel, but aggregation
    /// (see [`Machine::bridge_submit`]) keeps its queue short.
    fn grant_bridge(&mut self) {
        let cycle = self.cycle;
        let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
        if cl.bridge_active.is_some() {
            return;
        }
        let Some(var) = cl.bridge_queue.pop_front() else { return };
        let dur = cl.bridge_latency;
        cl.bridge_active = Some((var, cycle + dur));
        self.stats.bridge_broadcasts += 1;
        self.metrics.bridge_busy += dur;
        self.events.record(cycle, SimEventKind::BridgeForward { var, dur });
        self.note_progress();
    }

    /// Completes every broadcast whose tenure ends this cycle: each
    /// cluster bus in index order (deterministic in both stepping
    /// modes), then the bridge — so a forward ending this cycle
    /// delivers a global value that already includes this cycle's
    /// cluster completions.
    pub(crate) fn complete_clustered(&mut self) {
        let cl = self.sync.cluster.as_ref().expect("clustered fabric state");
        if cl.inflight == 0 {
            return;
        }
        let clusters = cl.clusters;
        for c in 0..clusters {
            let due = match self.sync.cluster.as_ref().expect("clustered fabric state").actives[c] {
                Some((entry, end)) if end == self.cycle => Some(entry),
                _ => None,
            };
            if let Some(entry) = due {
                self.sync.cluster.as_mut().expect("clustered fabric state").actives[c] = None;
                self.complete_cluster_entry(c, entry);
            }
        }
        let due = match self.sync.cluster.as_ref().expect("clustered fabric state").bridge_active {
            Some((var, end)) if end == self.cycle => Some(var),
            _ => None,
        };
        if let Some(var) = due {
            {
                let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
                cl.bridge_active = None;
                cl.bridge_pending[var] = false;
                cl.inflight -= 1;
            }
            // The forward carries no payload: it re-reads the current
            // global value, so every update folded into it since it was
            // submitted is delivered too (monotone counters make the
            // newer value satisfy every waiter of the older ones).
            let val = self.sync.vars.global[var];
            self.events
                .record(self.cycle, SimEventKind::SyncDeliver { var, val, stale: false });
            let procs = self.sync.procs;
            self.deliver_images(var, val, 0, procs);
            self.note_progress();
        }
    }

    /// Terminal handling of a cluster-bus broadcast: re-queue under an
    /// injected drop, deliver to the cluster's own images, and submit
    /// the variable to the bridge. The clustered counterpart of
    /// [`Machine::complete_sync`].
    fn complete_cluster_entry(&mut self, c: usize, entry: QueuedSync) {
        let f = self.config.faults;
        if f.broadcast_drop_pct > 0
            && entry.redeliveries < f.max_redeliveries
            && self.rng.chance_pct(f.broadcast_drop_pct)
        {
            self.stats.faults.dropped_broadcasts += 1;
            self.record_fault(None, FaultClass::BroadcastDrop, 0);
            self.sync.cluster.as_mut().expect("clustered fabric state").queues[c].push_back(
                QueuedSync { redeliveries: entry.redeliveries + 1, faulted: true, ..entry },
            );
            return;
        }
        if entry.faulted {
            if let Some(first) = entry.first_grant {
                let fault_free = first + u64::from(self.config.sync_bus_latency);
                let rec = self.cycle.saturating_sub(fault_free);
                self.stats.faults.recovery_cycles += rec;
                self.stats.faults.recovery_max = self.stats.faults.recovery_max.max(rec);
            }
        }
        let size = self.sync.cluster.as_ref().expect("clustered fabric state").cluster_size;
        let (lo, hi) = (c * size, (c + 1) * size);
        match entry.req {
            SyncReq::Post { var, .. } if entry.refresh => {
                // A refresh heals this cluster's images from the current
                // global value and never forwards. It is not a write: it
                // must not advance `applied_seq` — cross-cluster
                // overtaking is routine here (a refresh on an idle
                // cluster bus can beat an older-seq real post queued on
                // a busy one), and bumping the sequence would get that
                // post discarded as stale, losing the write for good —
                // and it cannot itself be stale.
                let val = self.sync.vars.global[var];
                self.events
                    .record(self.cycle, SimEventKind::SyncDeliver { var, val, stale: false });
                self.deliver_images(var, val, lo, hi);
            }
            SyncReq::Post { var, val, .. } => {
                let stale = entry.seq <= self.sync.vars.applied_seq[var];
                self.events.record(self.cycle, SimEventKind::SyncDeliver { var, val, stale });
                if !stale {
                    self.sync.vars.applied_seq[var] = entry.seq;
                    self.sync.vars.global[var] = val;
                    self.deliver_images(var, val, lo, hi);
                } else if entry.faulted {
                    self.stats.faults.stale_deliveries_discarded += 1;
                }
                // else: fault-free cross-cluster overtaking — an older
                // post completed after a newer same-variable one on
                // another cluster's bus. Monotone counters make the
                // discard harmless, and it is not a fault.
                //
                // Delivered or stale, every real completion submits to
                // the bridge: this keeps the two-level conservation
                // identity exact on fault-free runs (sync_broadcasts ==
                // bridge_broadcasts + bridge_coalesced).
                self.bridge_submit(var);
            }
            SyncReq::Rmw { proc, var } => {
                self.sync.vars.applied_seq[var] = self.sync.vars.applied_seq[var].max(entry.seq);
                let v = self.sync.vars.global[var] + 1;
                self.events
                    .record(self.cycle, SimEventKind::SyncDeliver { var, val: v, stale: false });
                self.sync.vars.global[var] = v;
                self.deliver_images(var, v, lo, hi);
                self.unblock(proc);
                self.bridge_submit(var);
            }
        }
        self.sync.cluster.as_mut().expect("clustered fabric state").inflight -= 1;
        self.note_progress();
    }

    /// Submits a variable to the bridge after a cluster-bus completion.
    /// If a forward of the same variable is already pending anywhere in
    /// the bridge pipeline, the submission folds into it — the
    /// barrier/SC/PC aggregation that collapses P partial-count updates
    /// into one global broadcast.
    fn bridge_submit(&mut self, var: SyncVar) {
        let cycle = self.cycle;
        let cl = self.sync.cluster.as_mut().expect("clustered fabric state");
        if cl.bridge_pending[var] {
            self.stats.bridge_coalesced += 1;
            return;
        }
        cl.bridge_pending[var] = true;
        let flush = cycle + cl.coalesce_window;
        cl.window.push_back((var, flush));
        cl.inflight += 1;
    }

    /// Performs a sync write globally and broadcasts it to every local
    /// image.
    pub(crate) fn write_sync(&mut self, var: SyncVar, val: u64) {
        self.sync.vars.global[var] = val;
        let procs = self.sync.procs;
        self.deliver_images(var, val, 0, procs);
    }

    /// Delivers `val` to the local images of processors `lo..hi` (a
    /// cluster's broadcast domain, or `0..procs` for a flat or bridge
    /// broadcast), subject to the per-image loss and staleness faults.
    ///
    /// With no image faults armed and no deferred update pending
    /// anywhere, every image takes the value unconditionally: the
    /// delivery is one batched fill of the variable's contiguous image
    /// lane, and the fault stream is untouched (the faulted path draws
    /// zero RNG under the same conditions, so the two are bit-identical).
    pub(crate) fn deliver_images(&mut self, var: SyncVar, val: u64, lo: usize, hi: usize) {
        let f = self.config.faults;
        if f.broadcast_loss_pct == 0 && f.stale_image_pct == 0 && self.sync.defer_len == 0 {
            self.sync.var_images_mut(var)[lo..hi].fill(val);
            return;
        }
        self.deliver_images_faulted(var, val, lo, hi);
    }

    /// The per-processor delivery walk for runs with image faults armed
    /// or deferred updates in flight. Not `#[cold]`: chaos sweeps live
    /// here.
    fn deliver_images_faulted(&mut self, var: SyncVar, val: u64, lo: usize, hi: usize) {
        let f = self.config.faults;
        for p in lo..hi {
            if f.broadcast_loss_pct > 0 && self.rng.chance_pct(f.broadcast_loss_pct) {
                // The write performed globally but this processor's image
                // tap missed it *permanently* — the one unbounded fault.
                // Only the recovery ladder (NACK refresh or watchdog
                // repair) can re-deliver the value to this image.
                self.stats.faults.lost_image_updates += 1;
                self.record_fault(Some(p), FaultClass::BroadcastLoss, 0);
                continue;
            }
            let pending = self.sync.defer[p].back().map(|&(when, _, _)| when);
            if f.stale_image_pct > 0 && self.rng.chance_pct(f.stale_image_pct) {
                // This image lags the global write by a bounded window.
                let window = u64::from(self.rng.range_u32(1, f.stale_window_max));
                let when = (self.cycle + window).max(pending.unwrap_or(0));
                self.stats.faults.stale_image_updates += 1;
                self.record_fault(Some(p), FaultClass::StaleImage, window);
                self.sync.push_defer(p, when, var, val);
            } else if let Some(pending) = pending {
                // A fresh update must not overtake an older deferred one:
                // queue behind it so each image sees writes in global
                // order, merely late.
                self.sync.push_defer(p, pending, var, val);
            } else {
                self.sync.set_image(p, var, val);
            }
        }
    }

    /// Applies deferred (stale-window) local-image updates that are due.
    /// `due_min` makes this O(1) whenever nothing is due (due times are
    /// non-decreasing within each queue, so fronts are the minima).
    pub(crate) fn apply_deferred_images(&mut self) {
        if self.sync.due_min > self.cycle {
            return;
        }
        let mut next_due = u64::MAX;
        for p in 0..self.sync.defer.len() {
            while let Some(&(when, var, val)) = self.sync.defer[p].front() {
                if when > self.cycle {
                    break;
                }
                self.sync.pop_defer(p);
                self.sync.set_image(p, var, val);
                self.note_progress();
            }
            if let Some(&(when, _, _)) = self.sync.defer[p].front() {
                next_due = next_due.min(when);
            }
        }
        self.sync.due_min = next_due;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_resolves_to_its_backend() {
        for kind in FabricKind::ALL {
            assert_eq!(kind.backend().kind(), kind);
        }
        assert!(!FabricKind::Dedicated.backend().shares_data_bus());
        assert!(FabricKind::Shared.backend().shares_data_bus());
        assert!(!FabricKind::Ideal.backend().shares_data_bus());
        // Any clustered geometry resolves to the one stateless backend
        // (the live geometry is per-machine config, not backend state).
        let b =
            FabricKind::Clustered { clusters: 8, bridge_latency: 3, coalesce_window: 0 }.backend();
        assert!(b.kind().is_clustered());
        assert!(!b.shares_data_bus());
    }

    #[test]
    fn cluster_state_geometry_and_idle_tracking() {
        let mut s = SyncState::new(8, 2);
        assert!(s.clusters_idle(), "flat state is trivially idle");
        s.install_clusters(4, 2, 4);
        assert!(s.clusters_idle());
        let cl = s.cluster.as_ref().unwrap();
        assert_eq!((cl.clusters, cl.cluster_size), (4, 2));
        assert_eq!(cl.cluster_of(0), 0);
        assert_eq!(cl.cluster_of(1), 0);
        assert_eq!(cl.cluster_of(2), 1);
        assert_eq!(cl.cluster_of(7), 3);
        assert_eq!(cl.window_min(), u64::MAX);
        // Growing the variable space grows the bridge-pending lane too.
        s.resize_vars(5);
        assert_eq!(s.cluster.as_ref().unwrap().bridge_pending.len(), 5);
        let cl = s.cluster.as_mut().unwrap();
        cl.window.push_back((3, 17));
        cl.inflight += 1;
        assert_eq!(cl.window_min(), 17);
        assert!(!s.clusters_idle());
    }

    #[test]
    fn sync_state_starts_quiescent() {
        let s = SyncState::new(3, 2);
        assert_eq!(s.vars.global, vec![0, 0]);
        assert_eq!(s.n_vars(), 2);
        for p in 0..3 {
            for var in 0..2 {
                assert_eq!(s.image(p, var), 0);
            }
        }
        assert!(s.queue.is_empty() && s.active.is_none());
        assert_eq!(s.due_min, u64::MAX);
        assert_eq!(s.vars.applied_seq, vec![0, 0]);
    }

    #[test]
    fn image_lanes_are_var_major_and_resizable() {
        let mut s = SyncState::new(2, 1);
        s.set_image(1, 0, 7);
        assert_eq!((s.image(0, 0), s.image(1, 0)), (0, 7));
        s.resize_vars(3);
        assert_eq!(s.n_vars(), 3);
        // Existing images survive the resize; new vars start zeroed.
        assert_eq!((s.image(0, 0), s.image(1, 0)), (0, 7));
        s.var_images_mut(2).fill(9);
        assert_eq!((s.image(0, 2), s.image(1, 2)), (9, 9));
        assert_eq!((s.image(0, 1), s.image(1, 1)), (0, 0));
    }
}

//! The dispatch subsystem: hands loop-iteration programs to free
//! processors, either by self-scheduling (the paper's assumed policy)
//! or from a fixed per-processor assignment.

use super::workload::{DispatchMode, Workload};
use super::{Machine, ProcState};
use crate::events::SimEventKind;
use std::collections::VecDeque;

/// Iteration dispatch state: the self-scheduling cursor plus the static
/// per-processor work queues.
#[derive(Debug)]
pub(crate) struct Dispatcher {
    /// Next unclaimed program under [`DispatchMode::Dynamic`].
    pub(crate) next_dynamic: usize,
    /// Per-processor pending program queues under
    /// [`DispatchMode::Static`] (empty under dynamic dispatch).
    pub(crate) queues: Vec<VecDeque<usize>>,
}

impl Dispatcher {
    /// Builds the dispatch state for `p` processors of `workload`.
    pub(crate) fn new(workload: &Workload, p: usize) -> Self {
        let queues = match &workload.dispatch {
            DispatchMode::Dynamic => vec![VecDeque::new(); p],
            DispatchMode::Static(assign) => {
                let mut qs = vec![VecDeque::new(); p];
                for (i, q) in assign.iter().enumerate().take(p) {
                    qs[i] = q.iter().copied().collect();
                }
                qs
            }
        };
        Self { next_dynamic: 0, queues }
    }

    /// Whether the self-scheduling cursor still has unclaimed programs.
    pub(crate) fn dynamic_left(&self, workload: &Workload) -> bool {
        matches!(workload.dispatch, DispatchMode::Dynamic)
            && self.next_dynamic < workload.programs.len()
    }

    /// Whether processor `p` could claim a program right now.
    pub(crate) fn can_claim(&self, p: usize, workload: &Workload) -> bool {
        match workload.dispatch {
            DispatchMode::Dynamic => self.dynamic_left(workload),
            DispatchMode::Static(_) => !self.queues[p].is_empty(),
        }
    }

    /// Claims the next program for processor `p`, if any.
    pub(crate) fn claim(&mut self, p: usize, workload: &Workload) -> Option<usize> {
        match workload.dispatch {
            DispatchMode::Dynamic => {
                if self.next_dynamic >= workload.programs.len() {
                    return None;
                }
                let ix = self.next_dynamic;
                self.next_dynamic += 1;
                Some(ix)
            }
            DispatchMode::Static(_) => self.queues[p].pop_front(),
        }
    }

    /// Whether every static queue is empty.
    pub(crate) fn all_drained(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }
}

impl<'a> Machine<'a> {
    /// Returns `true` if a program was assigned to processor `p`.
    pub(crate) fn try_dispatch(&mut self, p: usize) -> bool {
        let Some(next) = self.disp.claim(p, self.workload) else {
            return false;
        };
        self.stats.dispatched += 1;
        self.note_progress();
        self.events
            .record(self.cycle, SimEventKind::Dispatch { proc: p, program: next });
        self.procs[p].current = Some(next);
        self.procs[p].ip = 0;
        let lat = self.config.dispatch_latency;
        self.procs[p].state =
            if lat == 0 { ProcState::Ready } else { ProcState::Computing { remaining: lat } };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Instr, Program};

    fn programs(n: usize) -> Vec<Program> {
        (0..n).map(|_| Program::from_instrs(vec![Instr::Compute(1)])).collect()
    }

    #[test]
    fn dynamic_claims_lowest_first_from_any_processor() {
        let w = Workload::dynamic(programs(3));
        let mut d = Dispatcher::new(&w, 2);
        assert!(d.dynamic_left(&w));
        assert_eq!(d.claim(1, &w), Some(0));
        assert_eq!(d.claim(0, &w), Some(1));
        assert_eq!(d.claim(0, &w), Some(2));
        assert_eq!(d.claim(1, &w), None);
        assert!(!d.dynamic_left(&w));
    }

    #[test]
    fn static_cyclic_interleaves_claims() {
        let w = Workload::static_cyclic(programs(5), 2);
        let mut d = Dispatcher::new(&w, 2);
        assert_eq!(d.claim(0, &w), Some(0));
        assert_eq!(d.claim(1, &w), Some(1));
        assert_eq!(d.claim(0, &w), Some(2));
        assert_eq!(d.claim(1, &w), Some(3));
        assert_eq!(d.claim(0, &w), Some(4));
        assert!(d.all_drained());
    }

    #[test]
    fn static_blocked_gives_contiguous_chunks() {
        let w = Workload::static_blocked(programs(6), 2);
        let mut d = Dispatcher::new(&w, 2);
        assert!(d.can_claim(0, &w) && d.can_claim(1, &w));
        assert_eq!((d.claim(0, &w), d.claim(0, &w), d.claim(0, &w)), (Some(0), Some(1), Some(2)));
        assert_eq!((d.claim(1, &w), d.claim(1, &w), d.claim(1, &w)), (Some(3), Some(4), Some(5)));
        assert!(!d.can_claim(0, &w));
    }
}

//! The dispatch subsystem: hands loop-iteration programs to free
//! processors, either by self-scheduling (the paper's assumed policy)
//! or from a fixed per-processor assignment.

use super::workload::{DispatchMode, Workload};
use super::{Machine, ProcState};
use crate::events::SimEventKind;
use std::collections::VecDeque;

/// Iteration dispatch state: the self-scheduling cursor plus the static
/// per-processor work queues, plus the rescue pool of work reclaimed
/// from fail-stopped processors.
#[derive(Debug)]
pub(crate) struct Dispatcher {
    /// Next unclaimed program under [`DispatchMode::Dynamic`].
    pub(crate) next_dynamic: usize,
    /// Per-processor pending program queues under
    /// [`DispatchMode::Static`] (empty under dynamic dispatch).
    pub(crate) queues: Vec<VecDeque<usize>>,
    /// Work reclaimed from dead processors: `(program, resume_ip)`
    /// pairs awaiting reissue. Claimed by any live processor with
    /// priority over fresh work (lowest program index first — the
    /// lowest unfinished iteration's producers have all finished, so
    /// reissuing it lowest-first guarantees forward progress).
    pub(crate) rescue: VecDeque<(usize, usize)>,
    /// Static-chain predecessor of each program. Under static dispatch
    /// a queue's programs run in order on their home processor, and
    /// compilers lean on that order as an implicit dependence: a
    /// phase-`k+1` program carries no leading wait — its legality rests
    /// on its queue predecessor, which *ends* with the phase barrier,
    /// having completed. Any path that issues work out of queue order
    /// (rescue reissue, preemptive swaps) must honor the same chain.
    pub(crate) chain_pred: Vec<Option<usize>>,
    /// Programs that have run to completion.
    pub(crate) done: Vec<bool>,
    /// Set when a program completes mid-cycle: parked work may have
    /// become claimable, so cached idle-processor wakes must be
    /// re-armed at the end of the step. Cleared by the stepper.
    pub(crate) dirty: bool,
}

impl Dispatcher {
    /// Builds the dispatch state for `p` processors of `workload`.
    pub(crate) fn new(workload: &Workload, p: usize) -> Self {
        let queues = match &workload.dispatch {
            DispatchMode::Dynamic => vec![VecDeque::new(); p], // alloc-ok: setup
            DispatchMode::Static(assign) => {
                let mut qs = vec![VecDeque::new(); p]; // alloc-ok: setup
                for (i, q) in assign.iter().enumerate().take(p) {
                    qs[i] = q.iter().copied().collect(); // alloc-ok: setup
                }
                qs
            }
        };
        let mut chain_pred = vec![None; workload.programs.len()]; // alloc-ok: setup
        for q in &queues {
            for pair in q.iter().collect::<Vec<_>>().windows(2) {
                // alloc-ok: setup
                chain_pred[*pair[1]] = Some(*pair[0]);
            }
        }
        let done = vec![false; workload.programs.len()]; // alloc-ok: setup
        Self { next_dynamic: 0, queues, rescue: VecDeque::new(), chain_pred, done, dirty: false }
    }

    /// Whether a never-started program may be issued now: its static
    /// chain predecessor (if any) must have completed.
    pub(crate) fn startable(&self, prog: usize) -> bool {
        self.chain_pred[prog].is_none_or(|pred| self.done[pred])
    }

    /// Whether a rescue-pool entry may be (re)issued right now.
    /// Suspended work (`resume > 0`) was already legally started and
    /// resumes freely; never-started work waits for its chain
    /// predecessor like any other fresh issue.
    pub(crate) fn claimable(&self, prog: usize, resume: usize) -> bool {
        resume > 0 || self.startable(prog)
    }

    /// Whether the self-scheduling cursor still has unclaimed programs.
    pub(crate) fn dynamic_left(&self, workload: &Workload) -> bool {
        matches!(workload.dispatch, DispatchMode::Dynamic)
            && self.next_dynamic < workload.programs.len()
    }

    /// Whether processor `p` could claim a program right now.
    pub(crate) fn can_claim(&self, p: usize, workload: &Workload) -> bool {
        if self.rescue.iter().any(|&(prog, resume)| self.claimable(prog, resume)) {
            return true;
        }
        match workload.dispatch {
            DispatchMode::Dynamic => self.dynamic_left(workload),
            DispatchMode::Static(_) => self.queues[p].front().is_some_and(|&h| self.startable(h)),
        }
    }

    /// Pops the claimable rescued `(program, resume_ip)` with the
    /// lowest program index — the reissue order that guarantees
    /// forward progress.
    pub(crate) fn claim_rescue(&mut self) -> Option<(usize, usize)> {
        let pos = self
            .rescue
            .iter()
            .enumerate()
            .filter(|&(_, &(prog, resume))| self.claimable(prog, resume))
            .min_by_key(|(_, (prog, _))| *prog)
            .map(|(i, _)| i)?;
        self.rescue.remove(pos)
    }

    /// Claims the next `(program, resume_ip)` for processor `p`, if any.
    /// Rescued work is reissued before fresh work is handed out.
    pub(crate) fn claim(&mut self, p: usize, workload: &Workload) -> Option<(usize, usize)> {
        if let Some(rescued) = self.claim_rescue() {
            return Some(rescued);
        }
        match workload.dispatch {
            DispatchMode::Dynamic => {
                if self.next_dynamic >= workload.programs.len() {
                    return None;
                }
                let ix = self.next_dynamic;
                self.next_dynamic += 1;
                Some((ix, 0))
            }
            DispatchMode::Static(_) => {
                let head = *self.queues[p].front()?;
                if !self.startable(head) {
                    return None;
                }
                self.queues[p].pop_front().map(|ix| (ix, 0))
            }
        }
    }

    /// Whether every static queue and the rescue pool are empty.
    pub(crate) fn all_drained(&self) -> bool {
        self.rescue.is_empty() && self.queues.iter().all(VecDeque::is_empty)
    }
}

impl<'a> Machine<'a> {
    /// Returns `true` if a program was assigned to processor `p`.
    pub(crate) fn try_dispatch(&mut self, p: usize) -> bool {
        let Some((next, resume)) = self.disp.claim(p, self.workload) else {
            return false;
        };
        self.stats.dispatched += 1;
        self.note_progress();
        self.events
            .record(self.cycle, SimEventKind::Dispatch { proc: p, program: next });
        self.procs.set_current(p, Some(next));
        self.procs.ip[p] = resume;
        self.procs.resume_ip[p] = resume;
        let lat = self.config.dispatch_latency;
        self.procs.set_state(
            p,
            if lat == 0 { ProcState::Ready } else { ProcState::Computing { remaining: lat } },
        );
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Instr, Program};

    fn programs(n: usize) -> Vec<Program> {
        (0..n).map(|_| Program::from_instrs(vec![Instr::Compute(1)])).collect()
    }

    #[test]
    fn dynamic_claims_lowest_first_from_any_processor() {
        let w = Workload::dynamic(programs(3));
        let mut d = Dispatcher::new(&w, 2);
        assert!(d.dynamic_left(&w));
        assert_eq!(d.claim(1, &w), Some((0, 0)));
        assert_eq!(d.claim(0, &w), Some((1, 0)));
        assert_eq!(d.claim(0, &w), Some((2, 0)));
        assert_eq!(d.claim(1, &w), None);
        assert!(!d.dynamic_left(&w));
    }

    /// Pops a claim and marks the program retired, the way the machine
    /// does between successive claims by the same processor.
    fn claim_done(d: &mut Dispatcher, p: usize, w: &Workload) -> Option<(usize, usize)> {
        let got = d.claim(p, w);
        if let Some((prog, _)) = got {
            d.done[prog] = true;
        }
        got
    }

    #[test]
    fn static_cyclic_interleaves_claims() {
        let w = Workload::static_cyclic(programs(5), 2);
        let mut d = Dispatcher::new(&w, 2);
        assert_eq!(claim_done(&mut d, 0, &w), Some((0, 0)));
        assert_eq!(claim_done(&mut d, 1, &w), Some((1, 0)));
        assert_eq!(claim_done(&mut d, 0, &w), Some((2, 0)));
        assert_eq!(claim_done(&mut d, 1, &w), Some((3, 0)));
        assert_eq!(claim_done(&mut d, 0, &w), Some((4, 0)));
        assert!(d.all_drained());
    }

    #[test]
    fn static_blocked_gives_contiguous_chunks() {
        let w = Workload::static_blocked(programs(6), 2);
        let mut d = Dispatcher::new(&w, 2);
        assert!(d.can_claim(0, &w) && d.can_claim(1, &w));
        assert_eq!(
            (claim_done(&mut d, 0, &w), claim_done(&mut d, 0, &w), claim_done(&mut d, 0, &w)),
            (Some((0, 0)), Some((1, 0)), Some((2, 0)))
        );
        assert_eq!(
            (claim_done(&mut d, 1, &w), claim_done(&mut d, 1, &w), claim_done(&mut d, 1, &w)),
            (Some((3, 0)), Some((4, 0)), Some((5, 0)))
        );
        assert!(!d.can_claim(0, &w));
    }

    #[test]
    fn static_chain_order_gates_out_of_order_issue() {
        let w = Workload::static_cyclic(programs(4), 2);
        let mut d = Dispatcher::new(&w, 2);
        // Proc 0's chain is [0, 2]; claiming 0 without completing it
        // must park program 2 (and any rescue reissue of it).
        assert_eq!(d.claim(0, &w), Some((0, 0)));
        assert!(!d.startable(2), "program 2's chain predecessor has not completed");
        assert_eq!(d.claim(0, &w), None, "queue head gated on chain predecessor");
        assert!(!d.can_claim(0, &w));
        // A reclaimed, never-started copy of program 2 is equally gated;
        // the suspended (mid-run) program 0 itself is not.
        d.rescue.push_back((2, 0));
        d.rescue.push_back((0, 5));
        assert_eq!(d.claim_rescue(), Some((0, 5)), "suspended work resumes freely");
        assert_eq!(d.claim_rescue(), None, "never-started work honors the chain");
        d.done[0] = true;
        assert_eq!(d.claim_rescue(), Some((2, 0)), "chain satisfied, reissue allowed");
    }

    #[test]
    fn rescued_work_outranks_fresh_work_and_reissues_lowest_first() {
        let w = Workload::dynamic(programs(6));
        let mut d = Dispatcher::new(&w, 2);
        assert_eq!(d.claim(0, &w), Some((0, 0)));
        d.rescue.push_back((4, 3));
        d.rescue.push_back((2, 1));
        assert!(d.can_claim(1, &w));
        assert!(!d.all_drained(), "a pending rescue pool is undrained work");
        assert_eq!(d.claim(1, &w), Some((2, 1)), "lowest rescued program first");
        assert_eq!(d.claim(1, &w), Some((4, 3)));
        assert_eq!(d.claim(1, &w), Some((1, 0)), "then back to fresh work");
        assert!(d.all_drained());
    }
}

//! The event schedule: a calendar (bucket) queue over per-processor
//! wake deadlines, replacing the fast-forward kernel's O(P) linear scan
//! with an O(occupied-buckets) lookup.
//!
//! Each source (processor) has one **authoritative deadline** in
//! [`Calendar::deadline`] (`u64::MAX` = parked). Scheduling never
//! removes old ring entries; it appends a new one and lets the stale
//! entries die by **lazy invalidation**: an entry is live only while the
//! source's authoritative deadline still falls in the bucket it sits
//! in. Invariants:
//!
//! * every finite authoritative deadline has a live entry (in the ring
//!   if it falls inside the horizon, in the overflow list otherwise);
//! * [`Calendar::earliest`] returns exactly the minimum finite
//!   authoritative deadline (or `u64::MAX`), never a later one — the
//!   fast-forward kernel's safety rests on this never being late;
//! * time only moves forward: `earliest(now)` is called with
//!   non-decreasing `now`, and deadlines are only scheduled at or after
//!   the `now` of the next query, so buckets strictly behind `now` hold
//!   only dead entries and are recycled as the base advances.
//!
//! The ring spans `BUCKETS << BUCKET_SHIFT` cycles; deadlines beyond it
//! (fail-stop windows, watchdog bounds) go to the small overflow list,
//! consulted only when the ring is empty or the horizon reaches
//! [`Calendar::overflow_min`]. A jump past the whole ring (a long quiet
//! stretch) triggers a cold [`Calendar::rebase`] that rebuilds from the
//! authoritative deadlines.

/// Log2 of the bucket width in cycles.
const BUCKET_SHIFT: u32 = 6;
/// Ring length in buckets (power of two).
const BUCKETS: usize = 256;
/// Occupancy-bitmap words (64 buckets per word).
const WORDS: usize = BUCKETS / 64;
/// Source counts at or below this bypass the ring: min-scanning one
/// occupancy word's worth of packed `u64` deadlines is cheaper than the
/// ring's bucket bookkeeping (push, retain, base advance), so small
/// machines read the authoritative lane directly and only large ones
/// pay for — and win from — the calendar structure.
const SCAN_THRESHOLD: usize = 64;

/// Cycle-keyed calendar queue with lazy invalidation (see module docs).
#[derive(Debug)]
pub(crate) struct Calendar {
    /// Authoritative deadline per source (`u64::MAX` = parked).
    deadline: Vec<u64>,
    /// Ring of buckets holding source ids; entries are validated against
    /// `deadline` on inspection (lazy invalidation).
    buckets: Vec<Vec<u32>>,
    /// One occupancy bit per ring slot, so the scan skips empty runs a
    /// word at a time.
    occupied: [u64; WORDS],
    /// Absolute bucket index of the ring's earliest slot.
    base: u64,
    /// Sources whose deadline lay beyond the ring horizon at insert
    /// time. Swept (and re-homed into the ring) only when the horizon
    /// reaches `overflow_min`.
    overflow: Vec<u32>,
    /// Lower bound on the overflow entries' live deadlines.
    overflow_min: u64,
    /// `false` for small machines (≤ [`SCAN_THRESHOLD`] sources):
    /// `earliest` min-scans the deadline lane and the ring structures
    /// stay untouched and empty.
    use_ring: bool,
}

impl Calendar {
    /// A calendar for `n` sources, all initially due at cycle 0.
    pub(crate) fn new(n: usize) -> Self {
        Self::with_ring(n, n > SCAN_THRESHOLD)
    }

    /// Like [`Calendar::new`] with the ring-vs-scan choice forced —
    /// tests use this to drive the ring path at small source counts.
    pub(crate) fn with_ring(n: usize, use_ring: bool) -> Self {
        let mut cal = Self {
            deadline: vec![u64::MAX; n],
            buckets: vec![Vec::new(); BUCKETS],
            occupied: [0; WORDS],
            base: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            use_ring,
        };
        for src in 0..n {
            cal.schedule(src, 0);
        }
        cal
    }

    fn slot(abs: u64) -> usize {
        (abs % BUCKETS as u64) as usize
    }

    fn mark(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1 << (slot % 64);
    }

    fn clear(&mut self, slot: usize) {
        self.buckets[slot].clear();
        self.occupied[slot / 64] &= !(1 << (slot % 64));
    }

    /// Sets `src`'s authoritative deadline to `t` (`u64::MAX` parks it).
    /// Old entries are left behind to die by lazy invalidation.
    pub(crate) fn schedule(&mut self, src: usize, t: u64) {
        if self.deadline[src] == t {
            // The live entry for this exact deadline is already placed.
            return;
        }
        self.deadline[src] = t;
        if t == u64::MAX || !self.use_ring {
            return;
        }
        self.insert(src, t);
    }

    fn insert(&mut self, src: usize, t: u64) {
        let abs = t >> BUCKET_SHIFT;
        if abs >= self.base + BUCKETS as u64 {
            self.overflow.push(src as u32);
            self.overflow_min = self.overflow_min.min(t);
            return;
        }
        // Deadlines behind the base can only arise from a caller bug
        // (time runs forward); clamp into the base bucket so the entry
        // is still found rather than silently lost.
        let abs = abs.max(self.base);
        let slot = Self::slot(abs);
        self.buckets[slot].push(src as u32);
        self.mark(slot);
    }

    /// The minimum finite authoritative deadline, or `u64::MAX` when
    /// every source is parked. `now` must be non-decreasing across
    /// calls; buckets strictly behind it are recycled.
    pub(crate) fn earliest(&mut self, now: u64) -> u64 {
        if !self.use_ring {
            return self.deadline.iter().copied().min().unwrap_or(u64::MAX);
        }
        let now_abs = now >> BUCKET_SHIFT;
        if now_abs >= self.base + BUCKETS as u64 {
            self.rebase(now_abs);
        } else {
            while self.base < now_abs {
                let slot = Self::slot(self.base);
                let word = self.occupied[slot / 64] >> (slot % 64);
                if word == 0 {
                    // Rest of this bitmap word is empty; like the scan
                    // below, the skip stops at the word boundary so it
                    // never crosses the ring seam mid-word.
                    self.base = (self.base + (64 - slot % 64) as u64).min(now_abs);
                    continue;
                }
                let hop = u64::from(word.trailing_zeros());
                if hop > 0 {
                    self.base = (self.base + hop).min(now_abs);
                    continue;
                }
                self.clear(slot);
                self.base += 1;
            }
        }
        let mut swept = if self.overflow_min >> BUCKET_SHIFT < self.base + BUCKETS as u64 {
            self.sweep_overflow();
            true
        } else {
            false
        };
        loop {
            let end = self.base + BUCKETS as u64;
            let mut abs = self.base;
            while abs < end {
                let slot = Self::slot(abs);
                let word = self.occupied[slot / 64] >> (slot % 64);
                if word == 0 {
                    // The rest of this bitmap word is empty; slots wrap
                    // only at word boundaries, so the skip never crosses
                    // the ring seam mid-word.
                    abs += 64 - (slot % 64) as u64;
                    continue;
                }
                let hop = u64::from(word.trailing_zeros());
                if hop > 0 {
                    abs += hop;
                    continue;
                }
                if let Some(min) = self.inspect(abs) {
                    return min;
                }
                abs += 1;
            }
            // Nothing live in the ring: the answer is the overflow's
            // minimum. `overflow_min` is only a lower bound (entries
            // rescheduled later leave it stale-low), so sweep once to
            // tighten it — the sweep may also re-home entries into the
            // ring, in which case the rescan above finds them.
            if swept || self.overflow.is_empty() {
                return self.overflow_min;
            }
            self.sweep_overflow();
            swept = true;
        }
    }

    /// Minimum live deadline in the bucket at absolute index `abs`,
    /// dropping dead entries; clears the bucket if none are live.
    fn inspect(&mut self, abs: u64) -> Option<u64> {
        let slot = Self::slot(abs);
        let mut min = u64::MAX;
        let deadline = &self.deadline;
        self.buckets[slot].retain(|&src| {
            let d = deadline[src as usize];
            let live = d >> BUCKET_SHIFT == abs;
            if live {
                min = min.min(d);
            }
            live
        });
        if self.buckets[slot].is_empty() {
            self.clear(slot);
        }
        (min != u64::MAX).then_some(min)
    }

    /// Re-homes overflow entries whose deadline now falls inside the
    /// ring horizon; drops dead ones and recomputes `overflow_min`.
    #[cold]
    fn sweep_overflow(&mut self) {
        let horizon = self.base + BUCKETS as u64;
        let mut kept = std::mem::take(&mut self.overflow);
        let mut min = u64::MAX;
        kept.retain(|&src| {
            let d = self.deadline[src as usize];
            if d == u64::MAX || d >> BUCKET_SHIFT < self.base {
                return false; // dead (rescheduled or parked)
            }
            if d >> BUCKET_SHIFT < horizon {
                let slot = Self::slot(d >> BUCKET_SHIFT);
                self.buckets[slot].push(src);
                self.occupied[slot / 64] |= 1 << (slot % 64);
                return false;
            }
            min = min.min(d);
            true
        });
        self.overflow = kept;
        self.overflow_min = min;
    }

    /// A jump past the whole ring: rebuild every structure from the
    /// authoritative deadlines. Cold — only long fully-quiet stretches
    /// (watchdog-scale silences) reach it.
    #[cold]
    fn rebase(&mut self, now_abs: u64) {
        for slot in 0..BUCKETS {
            self.buckets[slot].clear();
        }
        self.occupied = [0; WORDS];
        self.overflow.clear();
        self.overflow_min = u64::MAX;
        self.base = now_abs;
        for src in 0..self.deadline.len() {
            let d = self.deadline[src];
            if d != u64::MAX {
                self.insert(src, d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// The retained linear-scan oracle: the minimum authoritative
    /// deadline, computed the way the old O(P) quiet-horizon scan did.
    fn oracle(deadlines: &[u64]) -> u64 {
        deadlines.iter().copied().min().unwrap_or(u64::MAX)
    }

    #[test]
    fn starts_with_every_source_due_at_zero() {
        let mut cal = Calendar::with_ring(4, true);
        assert_eq!(cal.earliest(0), 0);
    }

    #[test]
    fn tracks_simple_schedules_and_cancellations() {
        let mut cal = Calendar::with_ring(3, true);
        cal.schedule(0, 10);
        cal.schedule(1, 7);
        cal.schedule(2, u64::MAX);
        assert_eq!(cal.earliest(1), 7);
        // Reschedule (NACK refresh style): the old entry dies lazily.
        cal.schedule(1, 40);
        assert_eq!(cal.earliest(2), 10);
        // Cancellation (fail-stop style): parking removes the source.
        cal.schedule(0, u64::MAX);
        assert_eq!(cal.earliest(3), 40);
        cal.schedule(1, u64::MAX);
        assert_eq!(cal.earliest(4), u64::MAX);
    }

    #[test]
    fn far_deadlines_take_the_overflow_path_and_migrate_back() {
        let mut cal = Calendar::with_ring(2, true);
        let far = (BUCKETS as u64) << (BUCKET_SHIFT + 2); // well past the horizon
        cal.schedule(0, far);
        cal.schedule(1, u64::MAX);
        assert_eq!(cal.earliest(0), far);
        // Advancing near the far deadline re-homes it into the ring.
        assert_eq!(cal.earliest(far - 5), far);
        assert_eq!(cal.earliest(far), far);
    }

    #[test]
    fn jump_past_the_whole_ring_rebases_correctly() {
        let mut cal = Calendar::with_ring(3, true);
        let span = (BUCKETS as u64) << BUCKET_SHIFT;
        cal.schedule(0, 3 * span + 17);
        cal.schedule(1, 5 * span + 1);
        cal.schedule(2, u64::MAX);
        assert_eq!(cal.earliest(3 * span), 3 * span + 17);
        cal.schedule(0, u64::MAX);
        assert_eq!(cal.earliest(3 * span + 20), 5 * span + 1);
    }

    /// Property test: across seeded random schedules — including
    /// rescheduled deadlines (watchdog re-arm, NACK refresh), parked
    /// sources (fail-stop) and big time jumps — the calendar and the
    /// linear-scan oracle always pick the same next event.
    #[test]
    fn matches_linear_scan_oracle_on_random_schedules() {
        for case in 0..40u64 {
            // Even cases force the bucket ring at small source counts
            // (the default would min-scan); odd cases take the default
            // path, covering the scan bypass too.
            let (seed, force_ring) = (case / 2, case % 2 == 0);
            let mut rng = SplitMix64::new(0xCA1E_0000 + seed);
            let n = 1 + rng.below(24) as usize;
            let mut cal = Calendar::with_ring(n, force_ring || n > SCAN_THRESHOLD);
            let mut shadow = vec![0u64; n];
            let mut now = 0u64;
            for _ in 0..400 {
                match rng.below(10) {
                    // Advance time to (at most) the next event, the way
                    // the fast-forward kernel does, sometimes far past.
                    0..=3 => {
                        let next = oracle(&shadow);
                        let jump = match rng.below(4) {
                            0 => 1 + rng.below(16),
                            1 => 1 + rng.below(1 << 10),
                            2 => 1 + rng.below(1 << 15), // past the ring
                            _ => 1 + rng.below(64),
                        };
                        now = now.max(next.min(now + jump));
                        // Sources that came due get rescheduled forward,
                        // as a stepped cycle refreshes every wake.
                        for (src, slot) in shadow.iter_mut().enumerate() {
                            if *slot <= now {
                                let t = now + 1 + rng.below(1 << 8);
                                *slot = t;
                                cal.schedule(src, t);
                            }
                        }
                    }
                    // Reschedule a live source (earlier or later).
                    4..=6 => {
                        let src = rng.below(n as u64) as usize;
                        let t = now + 1 + rng.below(1 << 12);
                        shadow[src] = t;
                        cal.schedule(src, t);
                    }
                    // Park (cancel) a source, fail-stop style.
                    7 => {
                        let src = rng.below(n as u64) as usize;
                        shadow[src] = u64::MAX;
                        cal.schedule(src, u64::MAX);
                    }
                    // Far-future deadline (fail window / watchdog bound).
                    _ => {
                        let src = rng.below(n as u64) as usize;
                        let t = now + 1 + rng.below(1 << 22);
                        shadow[src] = t;
                        cal.schedule(src, t);
                    }
                }
                assert_eq!(
                    cal.earliest(now),
                    oracle(&shadow),
                    "calendar diverged from the linear-scan oracle (seed {seed}, now {now})"
                );
            }
        }
    }
}

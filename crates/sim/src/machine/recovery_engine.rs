//! The recovery engine: the self-healing ladder behind the sync fabric
//! (gap NACKs → refresh retransmission → watchdog repair) plus the
//! per-processor wait-episode bookkeeping the ladder hangs off.
//!
//! The ladder operates on the fabric's queued-broadcast machinery: a
//! local-image waiter that can prove a sequence gap (its predicate holds
//! on the global variable but not on its image) NACKs, queueing a
//! refresh broadcast; a persistently lossy image tap escalates to the
//! watchdog's force-sync repair rung. It draws no RNG and acts only at
//! stepped cycles, so arming it preserves fast-forward/reference
//! equivalence; with [`crate::recovery::RecoveryPolicy::Off`] it is
//! bit-inert.

use super::fabric::{QueuedSync, SyncReq};
use super::memory::DataReqKind;
use super::{Machine, ProcState};
use crate::events::SimEventKind;
use crate::program::{Instr, Pred, SyncVar};
use crate::recovery::WaitEdge;

/// Gap NACKs allowed per wait episode before the waiter falls silent
/// and escalates to the watchdog repair rung.
const NACK_TRIES_MAX: u32 = 4;

/// Self-healing ladder state plus wait-episode bookkeeping.
#[derive(Debug)]
pub(crate) struct RecoveryEngine {
    /// Whether the ladder (gap NACKs, retransmission, watchdog repair)
    /// is armed. Derived from [`crate::config::MachineConfig::recovery`];
    /// with it off the machine behaves bit-identically to one without
    /// recovery support.
    pub(crate) on: bool,
    /// Cycles a local-image waiter tolerates before suspecting a
    /// sequence gap (derived from the configured latencies and fault
    /// magnitudes; always well below the watchdog limit).
    pub(crate) nack_delay: u64,
    /// Per-processor cycle of the next gap check (`u64::MAX` when the
    /// processor is not in a local spin or has spent its NACK budget).
    pub(crate) nack_due: Vec<u64>,
    /// Per-processor NACKs issued in the current wait episode.
    pub(crate) nack_tries: Vec<u32>,
    /// Watchdog repair rungs taken this run (event numbering).
    pub(crate) repairs_done: u32,
    /// Watchdog rescue rungs taken this run (event numbering).
    pub(crate) rescues_done: u32,
    /// Rescue rungs taken since the machine last made observable
    /// progress — the runaway bound: capped at `2 * programs + P` so a
    /// pathological fault mix cannot swap work between survivors
    /// forever. Any retired instruction or dispatch resets it, so a
    /// rescue sequence that keeps the machine moving is never starved
    /// of rungs no matter how many it needs.
    pub(crate) rescue_futile: u32,
    /// Progress marker sampled at the last rescue (see
    /// [`Machine::rescue_progress_marker`]).
    pub(crate) rescue_marker: u64,
    /// Per-processor open wait episode: `(begin_cycle, var,
    /// through_memory)` from spin entry until satisfaction.
    pub(crate) wait_since: Vec<Option<(u64, SyncVar, bool)>>,
}

impl RecoveryEngine {
    /// Fresh ladder state for `p` processors.
    pub(crate) fn new(p: usize, nack_delay: u64, on: bool) -> Self {
        Self {
            on,
            nack_delay,
            nack_due: vec![u64::MAX; p],
            nack_tries: vec![0; p],
            repairs_done: 0,
            rescues_done: 0,
            rescue_futile: 0,
            rescue_marker: 0,
            wait_since: vec![None; p],
        }
    }
}

impl<'a> Machine<'a> {
    /// Closes processor `p`'s open wait episode, if any, recording its
    /// duration in the per-processor histogram and the event ring.
    /// Never inlined: this runs once per episode, not per cycle, and
    /// inlining it bloats `step_proc`'s per-cycle spin loop.
    #[inline(never)]
    pub(crate) fn close_wait(&mut self, p: usize) {
        if let Some((start, var, _)) = self.rec.wait_since[p].take() {
            let waited = self.cycle - start;
            self.metrics.wait[p].record(waited);
            self.events.record(self.cycle, SimEventKind::WaitEnd { proc: p, var, waited });
            if self.rec.nack_tries[p] > 0 {
                // The episode needed recovery intervention: its full
                // duration is the heal latency.
                self.stats.recovery.healed_waits += 1;
                self.stats.recovery.heal_latency_total += waited;
                self.stats.recovery.heal_latency_max =
                    self.stats.recovery.heal_latency_max.max(waited);
            }
        }
        self.rec.nack_due[p] = u64::MAX;
        self.rec.nack_tries[p] = 0;
    }

    /// Opens a wait episode for processor `p` on `var`.
    #[inline(never)]
    pub(crate) fn begin_wait(&mut self, p: usize, var: SyncVar, through_memory: bool) {
        self.rec.wait_since[p] = Some((self.cycle, var, through_memory));
        if self.rec.on && !through_memory {
            // Local-image spins arm the gap detector; memory polls read
            // the global variable directly and cannot gap.
            self.rec.nack_due[p] = self.cycle + self.rec.nack_delay;
            self.rec.nack_tries[p] = 0;
        }
        self.events
            .record(self.cycle, SimEventKind::WaitBegin { proc: p, var, through_memory });
    }

    /// Rung 1–2 of the recovery ladder: a local-image waiter whose
    /// deadline passed checks for a sequence gap (its predicate holds on
    /// the global variable but not on its image) and, if proven, NACKs —
    /// queueing a refresh broadcast of the global value. After
    /// [`NACK_TRIES_MAX`] NACKs the waiter falls silent so a persistently
    /// lossy tap escalates to the watchdog repair rung instead of
    /// re-NACKing forever (each refresh grant is bus progress, so
    /// unbounded NACKing would disarm the watchdog while healing
    /// nothing). Draws no RNG; runs only at stepped cycles.
    #[inline(never)]
    pub(crate) fn check_gap(&mut self, p: usize, var: SyncVar, pred: Pred) {
        if !pred.eval(self.sync.vars.global[var]) {
            // No gap: the awaited value has not performed globally yet.
            // Keep watching — the producer may still be on its way.
            self.rec.nack_due[p] = self.cycle + self.rec.nack_delay;
            return;
        }
        self.rec.nack_tries[p] += 1;
        let tries = self.rec.nack_tries[p];
        self.stats.recovery.gap_nacks += 1;
        self.events.record(self.cycle, SimEventKind::GapNack { proc: p, var, tries });
        let val = self.sync.vars.global[var];
        let seq = self.next_sync_seq();
        self.stats.recovery.retransmits += 1;
        self.events.record(self.cycle, SimEventKind::Retransmit { var, val });
        // Pushed directly (never coalesced into) and subject to the same
        // faults as any broadcast — a retransmission can itself be lost.
        // On the clustered fabric the refresh rides the NACKing
        // processor's own cluster bus (it heals that cluster's images;
        // other clusters' gaps raise their own NACKs).
        let mut msg = QueuedSync::new(SyncReq::Post { proc: p, var, val }, seq);
        msg.refresh = true;
        self.push_sync_for_proc(p, msg);
        self.rec.nack_due[p] = if tries >= NACK_TRIES_MAX {
            u64::MAX // budget spent: silence lets the watchdog escalate
        } else {
            self.cycle + self.rec.nack_delay
        };
    }

    /// The wait-for state of every local-image spinner, with the
    /// controller's verdict on whether re-broadcasting the global state
    /// would wake it. This is both the repair-rung trigger and the proof
    /// attached to unrecoverable failures.
    pub(crate) fn wait_diagnosis(&self) -> Vec<WaitEdge> {
        // "Producer is dead" verdict: unretired work is stranded on a
        // fail-stopped processor (or reclaimed but not yet finished), so
        // an unhealable wait is explained by the lost producer rather
        // than a value lost in flight.
        let producer_lost = !self.disp.rescue.is_empty()
            || (0..self.procs.len()).any(|i| {
                self.procs.is_dead(i)
                    && (self.procs.current(i).is_some() || !self.disp.queues[i].is_empty())
            });
        let mut edges = Vec::new();
        for i in 0..self.procs.len() {
            // A dead processor's own parked spin waits on nothing any
            // more — it neither needs repair nor proves a wedge.
            if self.procs.is_dead(i) {
                continue;
            }
            if let ProcState::SpinLocal { var, pred } = self.procs.state(i) {
                let image = self.sync.image(i, var);
                let global = self.sync.vars.global[var];
                let healable = pred.eval(global) && !pred.eval(image);
                edges.push(WaitEdge {
                    proc: i,
                    var,
                    need: pred.to_string(),
                    image,
                    global,
                    healable,
                    producer_dead: !healable && producer_lost,
                });
            }
        }
        edges
    }

    /// Rung 3: the watchdog's repair action. If any spinner is healable
    /// (satisfied globally, gapped locally), flush every deferred image
    /// update in order and force-sync all images from the global state —
    /// the controller re-broadcasting its state wholesale. Sound because
    /// sync variables are monotone counters and the global variable is
    /// the authoritative newest value. Returns `false` when nothing is
    /// healable, letting the caller fire the watchdog for real.
    #[cold]
    #[inline(never)]
    pub(crate) fn watchdog_repair(&mut self) -> bool {
        if !self.wait_diagnosis().iter().any(|e| e.healable) {
            return false;
        }
        let mut healed = 0u64;
        // Apply what was already in flight in its original order…
        for p in 0..self.procs.len() {
            while let Some((_, var, val)) = self.sync.pop_defer(p) {
                self.sync.set_image(p, var, val);
            }
        }
        // …then bring every cell up to the authoritative value, one
        // contiguous image lane per variable.
        for v in 0..self.sync.n_vars() {
            let g = self.sync.vars.global[v];
            for cell in self.sync.var_images_mut(v) {
                if *cell != g {
                    *cell = g;
                    healed += 1;
                }
            }
        }
        self.sync.due_min = u64::MAX;
        self.rec.repairs_done += 1;
        self.stats.recovery.watchdog_repairs += 1;
        self.stats.recovery.images_repaired += healed;
        self.events.record(
            self.cycle,
            SimEventKind::WatchdogRepair { rung: self.rec.repairs_done, healed },
        );
        self.note_progress();
        true
    }

    /// The bound on consecutive *futile* rescues (rungs fired with no
    /// observable machine progress in between): generous enough for a
    /// full reshuffle of every program across the survivor quorum, small
    /// enough that a genuinely wedged pool fails fast.
    pub(crate) fn rescue_cap(&self) -> u32 {
        (self.workload.programs.len() * 2 + self.procs.len()) as u32
    }

    /// A monotone marker that advances whenever the machine does real
    /// work: any retired instruction moves at least one of these
    /// counters (computes burn busy cycles; accesses, RMWs and sync
    /// posts count transactions; a completed program's successor claim
    /// counts a dispatch). Sampled at each rescue so the runaway bound
    /// only counts rescues that achieved nothing.
    fn rescue_progress_marker(&self) -> u64 {
        self.stats.dispatched
            + self.stats.data_transactions
            + self.stats.rmw_ops
            + self.stats.sync_broadcasts
            + self.stats.coalesced_writes
            + self.procs.stats.iter().map(|s| s.busy).sum::<u64>()
    }

    /// Rung 4: the rescue (reconfigure) action for fail-stopped
    /// processors. Reclaims every unretired program a dead processor
    /// holds — its in-flight program at the provably-safe resume point,
    /// plus never-started static-queue assignments — into the dispatch
    /// rescue pool, where survivors claim it with priority over fresh
    /// work. If work is pending but no survivor is idle, a spinning
    /// survivor whose own wait is globally unsatisfiable (it cannot
    /// progress on its own) is preempted to run a rescued program —
    /// preferring one whose resume instruction can execute right now,
    /// so each preemption buys real progress; the victim's own program
    /// is suspended back into the pool.
    ///
    /// Fires only at quiescent points (the precise deadlock detector or
    /// the silence watchdog), so no reclaimed processor has a
    /// transaction in flight and no duplicated side effect is possible.
    /// Draws no RNG. Returns `false` when there is nothing to rescue,
    /// letting the caller fail the run for real.
    #[cold]
    #[inline(never)]
    pub(crate) fn watchdog_rescue(&mut self) -> bool {
        // Progress since the last rescue proves the rungs are working:
        // reset the futility counter so a long but productive rescue
        // sequence (every program reshuffled through a two-survivor
        // quorum, say) is never cut short. Only back-to-back rescues
        // with nothing retired in between count against the cap.
        let marker = self.rescue_progress_marker();
        if marker != self.rec.rescue_marker {
            self.rec.rescue_marker = marker;
            self.rec.rescue_futile = 0;
        }
        if self.rec.rescue_futile >= self.rescue_cap() {
            return false;
        }
        // Reclaim stranded work off every dead processor.
        let mut reclaimed = 0u64;
        for d in 0..self.procs.len() {
            if !self.procs.is_dead(d) {
                continue;
            }
            if let Some(prog) = self.procs.current(d) {
                self.procs.set_current(d, None);
                debug_assert!(
                    !matches!(self.procs.state(d), ProcState::BlockedData | ProcState::BlockedSync),
                    "dead processor holds an in-flight transaction at rescue time"
                );
                let resume = match self.procs.state(d) {
                    // Ready: the instruction at `ip` has not issued yet.
                    ProcState::Ready => self.procs.ip[d],
                    // Every other parked state re-executes the
                    // interrupted (unretired) instruction.
                    _ => self.procs.resume_ip[d],
                };
                self.procs.ip[d] = 0;
                self.procs.resume_ip[d] = 0;
                self.procs.set_state(d, ProcState::Idle);
                self.disp.rescue.push_back((prog, resume));
                self.events.record(
                    self.cycle,
                    SimEventKind::WorkReclaimed { from: d, program: prog, resume },
                );
                reclaimed += 1;
            }
            while let Some(prog) = self.disp.queues[d].pop_front() {
                self.disp.rescue.push_back((prog, 0));
                self.events.record(
                    self.cycle,
                    SimEventKind::WorkReclaimed { from: d, program: prog, resume: 0 },
                );
                reclaimed += 1;
            }
            // A dead processor's open wait episode can never close;
            // drop its bookkeeping without recording a satisfaction.
            self.rec.wait_since[d] = None;
            self.rec.nack_due[d] = u64::MAX;
            self.rec.nack_tries[d] = 0;
        }
        self.stats.recovery.programs_reclaimed += reclaimed;
        let mut acted = reclaimed > 0;
        // Reissue: an idle survivor claims from the pool on its next
        // step. With none idle, preempt a spinning survivor — but only
        // one parked in a pure, resumable state (a local-image spin or a
        // memory-poll backoff with nothing queued; preempting a proc
        // with a poll in flight would let the late completion clobber
        // its new state) whose own wait is globally unsatisfiable, so
        // the preemption costs no progress the victim could have made.
        // Waits run backward as well as forward (a barrier's lowest
        // iteration waits on arrivals from the highest), so eligibility
        // is judged by satisfiability, not program order. Highest
        // program first (furthest from runnable), ties to the lowest id.
        let any_idle = (0..self.procs.len())
            .any(|i| !self.procs.is_dead(i) && matches!(self.procs.state(i), ProcState::Idle));
        if !any_idle {
            let victim = (0..self.procs.len())
                .filter(|&i| !self.procs.is_dead(i))
                .filter(|&i| match self.procs.state(i) {
                    ProcState::SpinLocal { var, pred } => !pred.eval(self.sync.vars.global[var]),
                    ProcState::SpinMem { phase: super::SpinPhase::Backoff { .. }, retry } => {
                        match retry {
                            DataReqKind::Poll { var, pred } => {
                                !pred.eval(self.sync.vars.global[var])
                            }
                            DataReqKind::KeyedAttempt { var, geq } => {
                                self.sync.vars.global[var] < geq
                            }
                            _ => false,
                        }
                    }
                    _ => false,
                })
                .max_by_key(|&i| (self.procs.current(i), std::cmp::Reverse(i)));
            if let Some((v, (prog, resume))) =
                victim.and_then(|v| self.claim_runnable_rescue().map(|work| (v, work)))
            {
                let own = self.procs.current(v).expect("victim runs a program");
                // Spin states resume at the interrupted wait, so the
                // suspended program picks up exactly where it parked.
                self.disp.rescue.push_back((own, self.procs.resume_ip[v]));
                self.procs.set_current(v, Some(prog));
                self.procs.ip[v] = resume;
                self.procs.resume_ip[v] = resume;
                self.procs.set_state(v, ProcState::Ready);
                // The preempted wait episode is abandoned, not
                // satisfied: clear it without recording a WaitEnd.
                self.rec.wait_since[v] = None;
                self.rec.nack_due[v] = u64::MAX;
                self.rec.nack_tries[v] = 0;
                self.stats.recovery.rescue_swaps += 1;
                self.events.record(
                    self.cycle,
                    SimEventKind::WorkReissued { to: v, program: prog, resume },
                );
                acted = true;
            }
        }
        if !acted {
            return false;
        }
        self.rec.rescues_done += 1;
        self.rec.rescue_futile += 1;
        self.stats.recovery.fail_stop_rescues += 1;
        self.events.record(
            self.cycle,
            SimEventKind::WatchdogRescue { rung: self.rec.rescues_done, reclaimed },
        );
        self.note_progress();
        true
    }

    /// Pops the work item to reissue at a preemptive swap. Candidates
    /// are every rescue-pool entry plus the head of every live
    /// processor's static queue: reissuing rescued work ahead of fresh
    /// work can park a survivor's own next-phase program (whose barrier
    /// arrivals the rescued work waits on) behind it in its queue, so a
    /// swap restricted to the pool alone can starve. Every candidate
    /// must honor the static chain order ([`Dispatcher::claimable`]) —
    /// a never-started program whose queue predecessor is incomplete
    /// would run ahead of the phase barrier that predecessor ends with.
    /// Prefers the lowest program whose resume instruction can execute
    /// *right now* (judged against the global sync state — any non-wait
    /// instruction, or a wait already globally satisfied), so the swap
    /// is guaranteed to buy forward progress; falls back to the lowest
    /// program outright when every candidate is parked on an
    /// unsatisfied wait — re-parking is still bounded by the futility
    /// cap.
    fn claim_runnable_rescue(&mut self) -> Option<(usize, usize)> {
        let runnable = |prog: usize, resume: usize| -> bool {
            match self.workload.programs[prog].instrs.get(resume) {
                Some(Instr::SyncWait { var, pred }) => pred.eval(self.sync.vars.global[*var]),
                Some(Instr::KeyedAccess { var, geq }) => self.sync.vars.global[*var] >= *geq,
                _ => true,
            }
        };
        // (pool position) or (queue owner): where to pop the winner from.
        enum Source {
            Pool(usize),
            Queue(usize),
        }
        let mut best: Option<(bool, usize, usize, Source)> = None;
        let mut offer = |parked: bool, prog: usize, resume: usize, src: Source| {
            if best.as_ref().is_none_or(|&(p, g, _, _)| (parked, prog) < (p, g)) {
                best = Some((parked, prog, resume, src));
            }
        };
        for (i, &(prog, resume)) in self.disp.rescue.iter().enumerate() {
            if self.disp.claimable(prog, resume) {
                offer(!runnable(prog, resume), prog, resume, Source::Pool(i));
            }
        }
        for q in 0..self.disp.queues.len() {
            if self.procs.is_dead(q) {
                continue; // dead queues were reclaimed into the pool
            }
            if let Some(&prog) = self.disp.queues[q].front() {
                if self.disp.startable(prog) {
                    offer(!runnable(prog, 0), prog, 0, Source::Queue(q));
                }
            }
        }
        let (_, prog, resume, src) = best?;
        match src {
            Source::Pool(i) => self.disp.rescue.remove(i),
            Source::Queue(q) => {
                self.disp.queues[q].pop_front();
                Some((prog, resume))
            }
        }
    }
}

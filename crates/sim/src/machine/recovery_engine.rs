//! The recovery engine: the self-healing ladder behind the sync fabric
//! (gap NACKs → refresh retransmission → watchdog repair) plus the
//! per-processor wait-episode bookkeeping the ladder hangs off.
//!
//! The ladder operates on the fabric's queued-broadcast machinery: a
//! local-image waiter that can prove a sequence gap (its predicate holds
//! on the global variable but not on its image) NACKs, queueing a
//! refresh broadcast; a persistently lossy image tap escalates to the
//! watchdog's force-sync repair rung. It draws no RNG and acts only at
//! stepped cycles, so arming it preserves fast-forward/reference
//! equivalence; with [`crate::recovery::RecoveryPolicy::Off`] it is
//! bit-inert.

use super::fabric::{QueuedSync, SyncReq};
use super::{Machine, ProcState};
use crate::events::SimEventKind;
use crate::program::{Pred, SyncVar};
use crate::recovery::WaitEdge;

/// Gap NACKs allowed per wait episode before the waiter falls silent
/// and escalates to the watchdog repair rung.
const NACK_TRIES_MAX: u32 = 4;

/// Self-healing ladder state plus wait-episode bookkeeping.
#[derive(Debug)]
pub(crate) struct RecoveryEngine {
    /// Whether the ladder (gap NACKs, retransmission, watchdog repair)
    /// is armed. Derived from [`crate::config::MachineConfig::recovery`];
    /// with it off the machine behaves bit-identically to one without
    /// recovery support.
    pub(crate) on: bool,
    /// Cycles a local-image waiter tolerates before suspecting a
    /// sequence gap (derived from the configured latencies and fault
    /// magnitudes; always well below the watchdog limit).
    pub(crate) nack_delay: u64,
    /// Per-processor cycle of the next gap check (`u64::MAX` when the
    /// processor is not in a local spin or has spent its NACK budget).
    pub(crate) nack_due: Vec<u64>,
    /// Per-processor NACKs issued in the current wait episode.
    pub(crate) nack_tries: Vec<u32>,
    /// Watchdog repair rungs taken this run (event numbering).
    pub(crate) repairs_done: u32,
    /// Per-processor open wait episode: `(begin_cycle, var,
    /// through_memory)` from spin entry until satisfaction.
    pub(crate) wait_since: Vec<Option<(u64, SyncVar, bool)>>,
}

impl RecoveryEngine {
    /// Fresh ladder state for `p` processors.
    pub(crate) fn new(p: usize, nack_delay: u64, on: bool) -> Self {
        Self {
            on,
            nack_delay,
            nack_due: vec![u64::MAX; p],
            nack_tries: vec![0; p],
            repairs_done: 0,
            wait_since: vec![None; p],
        }
    }
}

impl<'a> Machine<'a> {
    /// Closes processor `p`'s open wait episode, if any, recording its
    /// duration in the per-processor histogram and the event ring.
    /// Never inlined: this runs once per episode, not per cycle, and
    /// inlining it bloats `step_proc`'s per-cycle spin loop.
    #[inline(never)]
    pub(crate) fn close_wait(&mut self, p: usize) {
        if let Some((start, var, _)) = self.rec.wait_since[p].take() {
            let waited = self.cycle - start;
            self.metrics.wait[p].record(waited);
            self.events.record(self.cycle, SimEventKind::WaitEnd { proc: p, var, waited });
            if self.rec.nack_tries[p] > 0 {
                // The episode needed recovery intervention: its full
                // duration is the heal latency.
                self.stats.recovery.healed_waits += 1;
                self.stats.recovery.heal_latency_total += waited;
                self.stats.recovery.heal_latency_max =
                    self.stats.recovery.heal_latency_max.max(waited);
            }
        }
        self.rec.nack_due[p] = u64::MAX;
        self.rec.nack_tries[p] = 0;
    }

    /// Opens a wait episode for processor `p` on `var`.
    #[inline(never)]
    pub(crate) fn begin_wait(&mut self, p: usize, var: SyncVar, through_memory: bool) {
        self.rec.wait_since[p] = Some((self.cycle, var, through_memory));
        if self.rec.on && !through_memory {
            // Local-image spins arm the gap detector; memory polls read
            // the global variable directly and cannot gap.
            self.rec.nack_due[p] = self.cycle + self.rec.nack_delay;
            self.rec.nack_tries[p] = 0;
        }
        self.events
            .record(self.cycle, SimEventKind::WaitBegin { proc: p, var, through_memory });
    }

    /// Rung 1–2 of the recovery ladder: a local-image waiter whose
    /// deadline passed checks for a sequence gap (its predicate holds on
    /// the global variable but not on its image) and, if proven, NACKs —
    /// queueing a refresh broadcast of the global value. After
    /// [`NACK_TRIES_MAX`] NACKs the waiter falls silent so a persistently
    /// lossy tap escalates to the watchdog repair rung instead of
    /// re-NACKing forever (each refresh grant is bus progress, so
    /// unbounded NACKing would disarm the watchdog while healing
    /// nothing). Draws no RNG; runs only at stepped cycles.
    #[inline(never)]
    pub(crate) fn check_gap(&mut self, p: usize, var: SyncVar, pred: Pred) {
        if !pred.eval(self.sync.global[var]) {
            // No gap: the awaited value has not performed globally yet.
            // Keep watching — the producer may still be on its way.
            self.rec.nack_due[p] = self.cycle + self.rec.nack_delay;
            return;
        }
        self.rec.nack_tries[p] += 1;
        let tries = self.rec.nack_tries[p];
        self.stats.recovery.gap_nacks += 1;
        self.events.record(self.cycle, SimEventKind::GapNack { proc: p, var, tries });
        let val = self.sync.global[var];
        let seq = self.next_sync_seq();
        self.stats.recovery.retransmits += 1;
        self.events.record(self.cycle, SimEventKind::Retransmit { var, val });
        // Pushed directly (never coalesced into) and subject to the same
        // faults as any broadcast — a retransmission can itself be lost.
        let mut msg = QueuedSync::new(SyncReq::Post { proc: p, var, val }, seq);
        msg.refresh = true;
        self.sync.queue.push_back(msg);
        self.rec.nack_due[p] = if tries >= NACK_TRIES_MAX {
            u64::MAX // budget spent: silence lets the watchdog escalate
        } else {
            self.cycle + self.rec.nack_delay
        };
    }

    /// The wait-for state of every local-image spinner, with the
    /// controller's verdict on whether re-broadcasting the global state
    /// would wake it. This is both the repair-rung trigger and the proof
    /// attached to unrecoverable failures.
    pub(crate) fn wait_diagnosis(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            if let ProcState::SpinLocal { var, pred } = p.state {
                let image = self.sync.images[i][var];
                let global = self.sync.global[var];
                edges.push(WaitEdge {
                    proc: i,
                    var,
                    need: pred.to_string(),
                    image,
                    global,
                    healable: pred.eval(global) && !pred.eval(image),
                });
            }
        }
        edges
    }

    /// Rung 3: the watchdog's repair action. If any spinner is healable
    /// (satisfied globally, gapped locally), flush every deferred image
    /// update in order and force-sync all images from the global state —
    /// the controller re-broadcasting its state wholesale. Sound because
    /// sync variables are monotone counters and the global variable is
    /// the authoritative newest value. Returns `false` when nothing is
    /// healable, letting the caller fire the watchdog for real.
    #[cold]
    #[inline(never)]
    pub(crate) fn watchdog_repair(&mut self) -> bool {
        if !self.wait_diagnosis().iter().any(|e| e.healable) {
            return false;
        }
        let mut healed = 0u64;
        for p in 0..self.sync.images.len() {
            // Apply what was already in flight in its original order…
            while let Some((_, var, val)) = self.sync.defer[p].pop_front() {
                self.sync.images[p][var] = val;
            }
            // …then bring every cell up to the authoritative value.
            for v in 0..self.sync.global.len() {
                if self.sync.images[p][v] != self.sync.global[v] {
                    self.sync.images[p][v] = self.sync.global[v];
                    healed += 1;
                }
            }
        }
        self.sync.due_min = u64::MAX;
        self.rec.repairs_done += 1;
        self.stats.recovery.watchdog_repairs += 1;
        self.stats.recovery.images_repaired += healed;
        self.events.record(
            self.cycle,
            SimEventKind::WatchdogRepair { rung: self.rec.repairs_done, healed },
        );
        self.note_progress();
        true
    }
}

//! Machine-level integration tests: correctness of the instruction set,
//! determinism, fault injection, fast-forward/reference equivalence,
//! recovery, and the fabric backends.

use super::*;
use crate::config::{FabricKind, SyncTransport};
use crate::program::{pack_pc, Instr, Label, Program};

fn cfg(p: usize) -> MachineConfig {
    MachineConfig::with_processors(p)
}

#[test]
fn single_compute_program_runs() {
    let w = Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(10)])]);
    let out = run(&cfg(1), &w).unwrap();
    // dispatch_latency (2) + compute (10), all busy.
    assert_eq!(out.stats.procs[0].busy, 12);
    assert_eq!(out.stats.dispatched, 1);
    assert!(out.stats.makespan >= 12);
}

#[test]
fn notes_are_free_and_traced() {
    let l1 = Label { pid: 0, stmt: 0, start: true };
    let l2 = Label { pid: 0, stmt: 0, start: false };
    let w = Workload::dynamic(vec![Program::from_instrs(vec![
        Instr::Note(l1),
        Instr::Compute(5),
        Instr::Note(l2),
    ])]);
    let out = run(&cfg(1), &w).unwrap();
    let ev = out.trace.events();
    assert_eq!(ev.len(), 2);
    assert_eq!(ev[1].cycle - ev[0].cycle, 5);
}

#[test]
fn data_accesses_serialize_on_the_bus() {
    // Two processors each issue one access at the same time; the second
    // must wait for the first to release the bus.
    let prog = Program::from_instrs(vec![Instr::Access { addr: 0, write: true }]);
    let w = Workload::static_assigned(vec![prog.clone(), prog], vec![vec![0], vec![1]]);
    let mut c = cfg(2);
    c.dispatch_latency = 0;
    let out = run(&c, &w).unwrap();
    assert_eq!(out.stats.data_transactions, 2);
    // Total service time = 2 * (bus 2 + mem 4) = 12 > single access 6.
    assert!(out.stats.makespan >= 12);
    // The loser blocked longer than the winner.
    let blocked: Vec<u64> = out.stats.procs.iter().map(|p| p.blocked).collect();
    assert_ne!(blocked[0], blocked[1]);
}

#[test]
fn dedicated_bus_wait_satisfied_by_broadcast() {
    // Proc 0 computes then posts var0 = 1; proc 1 waits for it.
    let producer =
        Program::from_instrs(vec![Instr::Compute(20), Instr::SyncSet { var: 0, val: 1 }]);
    let consumer = Program::from_instrs(vec![
        Instr::SyncWait { var: 0, pred: Pred::Geq(1) },
        Instr::Compute(1),
    ]);
    let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
    let out = run(&cfg(2), &w).unwrap();
    assert_eq!(out.stats.sync_broadcasts, 1);
    assert_eq!(out.stats.spin_polls, 0, "local-image spinning makes no traffic");
    assert!(out.stats.procs[1].spin > 0);
    assert_eq!(out.sync_final[0], 1);
}

#[test]
fn shared_memory_wait_costs_polls() {
    let producer =
        Program::from_instrs(vec![Instr::Compute(60), Instr::SyncSet { var: 0, val: 1 }]);
    let consumer = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
    let c = cfg(2).transport(SyncTransport::SharedMemory);
    let out = run(&c, &w).unwrap();
    assert!(out.stats.spin_polls > 2, "polling traffic expected, got {}", out.stats.spin_polls);
}

#[test]
fn coalescing_merges_queued_writes() {
    // Saturate the sync bus with a competing stream so proc 0's two
    // posted writes to the same var are both queued simultaneously.
    let noisy = Program::from_instrs(vec![
        Instr::SyncSet { var: 1, val: 1 },
        Instr::SyncSet { var: 2, val: 1 },
        Instr::SyncSet { var: 3, val: 1 },
    ]);
    let writer = Program::from_instrs(vec![
        Instr::SyncSet { var: 0, val: 1 },
        Instr::SyncSet { var: 0, val: 2 },
    ]);
    let w = Workload::static_assigned(vec![noisy, writer], vec![vec![0], vec![1]]);
    let on = run(&cfg(2).coalescing(true), &w).unwrap();
    assert_eq!(on.stats.coalesced_writes, 1);
    assert_eq!(on.sync_final[0], 2, "latest value must win");
    let off = run(&cfg(2).coalescing(false), &w).unwrap();
    assert_eq!(off.stats.coalesced_writes, 0);
    assert_eq!(off.stats.sync_broadcasts, on.stats.sync_broadcasts + 1);
    assert_eq!(off.sync_final[0], 2);
}

#[test]
fn rmw_increments_atomically() {
    let prog = Program::from_instrs(vec![Instr::SyncRmw { var: 0 }, Instr::SyncRmw { var: 0 }]);
    let w = Workload::static_assigned(vec![prog.clone(), prog], vec![vec![0], vec![1]]);
    for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
        let out = run(&cfg(2).transport(transport), &w).unwrap();
        assert_eq!(out.sync_final[0], 4, "transport {transport:?}");
        assert_eq!(out.stats.rmw_ops, 4);
    }
}

#[test]
fn deadlock_detected() {
    let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let w = Workload::dynamic(vec![stuck]);
    match run(&cfg(1), &w) {
        Err(SimError::Deadlock { spinning, .. }) => assert_eq!(spinning, vec![0]),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn shared_memory_deadlock_detected() {
    let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let w = Workload::dynamic(vec![stuck]);
    let c = cfg(1).transport(SyncTransport::SharedMemory);
    match run(&c, &w) {
        Err(SimError::Deadlock { .. }) | Err(SimError::Timeout { .. }) => {}
        other => panic!("expected failure, got {other:?}"),
    }
}

#[test]
fn dynamic_dispatch_claims_in_order() {
    // 4 programs, 2 procs: all get executed, dispatched == 4.
    let prog = Program::from_instrs(vec![Instr::Compute(5)]);
    let w = Workload::dynamic(vec![prog.clone(), prog.clone(), prog.clone(), prog]);
    let out = run(&cfg(2), &w).unwrap();
    assert_eq!(out.stats.dispatched, 4);
    assert!(out.stats.makespan < 4 * (5 + 2) + 4, "two procs should overlap");
}

#[test]
fn preset_sync_applies_to_images() {
    let consumer =
        Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(pack_pc(1, 0)) }]);
    let w = Workload::dynamic(vec![consumer]);
    let c = cfg(1);
    let mut m = Machine::new(&c, &w);
    m.preset_sync(0, pack_pc(1, 0));
    let out = m.run_to_completion().unwrap();
    assert_eq!(out.sync_final[0], pack_pc(1, 0));
}

#[test]
fn determinism_same_run_same_stats() {
    let prog =
        |c| Program::from_instrs(vec![Instr::Compute(c), Instr::Access { addr: 1, write: true }]);
    let w = Workload::dynamic(vec![prog(3), prog(9), prog(1), prog(7), prog(5)]);
    let a = run(&cfg(3), &w).unwrap();
    let b = run(&cfg(3), &w).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn keyed_access_orders_and_increments() {
    // Proc 1's keyed access (rank 1) must wait for proc 0's (rank 0).
    let first = Program::from_instrs(vec![
        Instr::Compute(30),
        Instr::KeyedAccess { var: 0, geq: 0 },
        Instr::SyncSet { var: 1, val: 1 },
    ]);
    let second = Program::from_instrs(vec![Instr::KeyedAccess { var: 0, geq: 1 }]);
    let w = Workload::static_assigned(vec![first, second], vec![vec![0], vec![1]]);
    for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
        let out = run(&cfg(2).transport(transport), &w).unwrap();
        assert_eq!(out.sync_final[0], 2, "both accesses increment ({transport:?})");
        assert!(out.stats.rmw_ops >= 2);
    }
}

#[test]
fn keyed_access_failed_attempts_cost_memory_traffic() {
    let slow =
        Program::from_instrs(vec![Instr::Compute(100), Instr::KeyedAccess { var: 0, geq: 0 }]);
    let eager = Program::from_instrs(vec![Instr::KeyedAccess { var: 0, geq: 1 }]);
    let w = Workload::static_assigned(vec![slow, eager], vec![vec![0], vec![1]]);
    let out = run(&cfg(2).transport(SyncTransport::SharedMemory), &w).unwrap();
    // The eager processor's failed attempts are bus transactions.
    assert!(out.stats.data_transactions > 3, "got {}", out.stats.data_transactions);
}

#[test]
fn banked_memory_overlaps_accesses() {
    use crate::config::MemoryModel;
    // 4 procs each make 4 accesses to different banks: with banking
    // the memory latencies overlap, so the banked makespan beats the
    // bus-held one.
    let progs: Vec<Program> = (0..4u64)
        .map(|p| {
            Program::from_instrs(
                (0..4).map(|k| Instr::Access { addr: p * 4 + k, write: false }).collect(),
            )
        })
        .collect();
    let w = Workload::static_assigned(progs, (0..4).map(|p| vec![p]).collect());
    let mut held = cfg(4);
    held.dispatch_latency = 0;
    let mut banked = held.clone();
    banked.memory_model = MemoryModel::Banked { banks: 8 };
    let out_held = run(&held, &w).unwrap();
    let out_banked = run(&banked, &w).unwrap();
    assert!(
        out_banked.stats.makespan < out_held.stats.makespan,
        "banked {} should beat bus-held {}",
        out_banked.stats.makespan,
        out_held.stats.makespan
    );
    assert_eq!(out_banked.stats.data_transactions, 16);
}

#[test]
fn single_bank_conflicts_serialize() {
    use crate::config::MemoryModel;
    // All accesses hit bank 0: banking cannot help beyond the bus
    // pipelining of the request phase.
    let progs: Vec<Program> = (0..2u64)
        .map(|_| {
            Program::from_instrs(
                (0..3).map(|k| Instr::Access { addr: k * 4, write: true }).collect(),
            )
        })
        .collect();
    let w = Workload::static_assigned(progs, vec![vec![0], vec![1]]);
    let mut c = cfg(2);
    c.dispatch_latency = 0;
    c.memory_model = MemoryModel::Banked { banks: 4 };
    let out = run(&c, &w).unwrap();
    // 6 accesses through one bank: at least 6 * memory_latency cycles.
    assert!(out.stats.makespan >= 6 * 4, "makespan {}", out.stats.makespan);
}

#[test]
fn banked_sync_ops_still_correct() {
    use crate::config::MemoryModel;
    let producer =
        Program::from_instrs(vec![Instr::Compute(30), Instr::SyncSet { var: 3, val: 1 }]);
    let consumer = Program::from_instrs(vec![
        Instr::SyncWait { var: 3, pred: Pred::Geq(1) },
        Instr::SyncRmw { var: 3 },
    ]);
    let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
    let c = cfg(2).transport(SyncTransport::SharedMemory);
    let mut c = c;
    c.memory_model = MemoryModel::Banked { banks: 4 };
    let out = run(&c, &w).unwrap();
    assert_eq!(out.sync_final[3], 2);
}

#[test]
fn cyclic_and_blocked_assignments_cover_everything() {
    let prog = |c| Program::from_instrs(vec![Instr::Compute(c)]);
    let programs: Vec<Program> = (1..=7).map(prog).collect();
    for w in [
        Workload::static_cyclic(programs.clone(), 3),
        Workload::static_blocked(programs.clone(), 3),
    ] {
        let out = run(&cfg(3), &w).unwrap();
        assert_eq!(out.stats.dispatched, 7);
    }
}

#[test]
fn per_proc_cycle_accounting_conserves() {
    // Every processor ticks exactly one breakdown category per cycle,
    // so busy + spin + blocked + idle == makespan for each.
    let prog = |c| {
        Program::from_instrs(vec![
            Instr::Compute(c),
            Instr::Access { addr: u64::from(c), write: true },
            Instr::SyncSet { var: 0, val: u64::from(c) },
        ])
    };
    let w = Workload::dynamic((1..12).map(prog).collect());
    let out = run(&cfg(3), &w).unwrap();
    for (i, p) in out.stats.procs.iter().enumerate() {
        assert_eq!(p.total(), out.stats.makespan, "proc {i}: {p:?}");
    }
}

#[test]
fn timeout_enforced() {
    let mut c = cfg(1);
    c.max_cycles = 5;
    let w = Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(100)])]);
    assert!(matches!(run(&c, &w), Err(SimError::Timeout { .. })));
}

// ---- fault injection ----

use crate::faults::FaultPlan;

/// A producer/consumer chain that exercises broadcasts, waits and
/// data accesses.
fn chain_workload(n: usize) -> Workload {
    let progs = (0..n)
        .map(|i| {
            let mut instrs = Vec::new();
            if i > 0 {
                instrs.push(Instr::SyncWait { var: 0, pred: Pred::Geq(i as u64) });
            }
            instrs.push(Instr::Compute(3));
            instrs.push(Instr::Access { addr: i as u64, write: true });
            instrs.push(Instr::SyncSet { var: 0, val: i as u64 + 1 });
            Program::from_instrs(instrs)
        })
        .collect();
    Workload::dynamic(progs)
}

#[test]
fn fault_free_run_unchanged_by_fault_support() {
    // A zero plan injects nothing: all fault counters stay zero.
    let out = run(&cfg(3), &chain_workload(8)).unwrap();
    assert_eq!(out.stats.faults.total(), 0);
    assert_eq!(out.stats.faults.recovery_cycles, 0);
    assert!(out.trace.fault_events().is_empty());
    assert!(out.stats.procs.iter().all(|p| p.stalled == 0));
}

#[test]
fn faulted_run_is_deterministic() {
    let c = cfg(3).with_faults(FaultPlan::chaos(42, 60));
    let a = run(&c, &chain_workload(10)).unwrap();
    let b = run(&c, &chain_workload(10)).unwrap();
    assert_eq!(a.stats, b.stats, "same seed must give byte-identical stats");
    assert_eq!(a.trace, b.trace);
    assert!(a.stats.faults.total() > 0, "chaos at 60 must inject something");
    // A different seed shakes the machine differently.
    let c2 = cfg(3).with_faults(FaultPlan::chaos(43, 60));
    let other = run(&c2, &chain_workload(10)).unwrap();
    assert_ne!(a.stats.faults, other.stats.faults, "seeds 42/43 should differ");
}

#[test]
fn dropped_broadcasts_are_redelivered() {
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastDrop, 7, 80));
    let out = run(&c, &chain_workload(8)).unwrap();
    assert!(out.stats.faults.dropped_broadcasts > 0, "80% drop must fire");
    assert_eq!(out.sync_final[0], 8, "every broadcast must eventually deliver");
    assert!(out.stats.faults.recovery_cycles > 0, "drops have recovery latency");
}

#[test]
fn delayed_broadcasts_cost_recovery_latency() {
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastDelay, 3, 100));
    let out = run(&c, &chain_workload(6)).unwrap();
    assert!(out.stats.faults.delayed_broadcasts > 0);
    assert!(out.stats.faults.delay_cycles > 0);
    assert!(out.stats.faults.recovery_max >= 1);
    assert_eq!(out.sync_final[0], 6);
}

#[test]
fn stale_images_preserve_per_image_write_order() {
    // The consumer leaves only once its (lagging) image reaches the
    // final value; order-preserving deferral means it never sees a
    // newer value before an older one, and the run still completes.
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::StaleImage, 11, 90));
    let out = run(&c, &chain_workload(8)).unwrap();
    assert!(out.stats.faults.stale_image_updates > 0);
    assert_eq!(out.sync_final[0], 8);
}

#[test]
fn stalls_freeze_and_account() {
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::ProcStall, 5, 80));
    let out = run(&c, &chain_workload(8)).unwrap();
    assert!(out.stats.faults.stalls > 0);
    let stalled: u64 = out.stats.procs.iter().map(|p| p.stalled).sum();
    // A stall that straddles the end of the run is charged in full to
    // stall_cycles but only partially ticked.
    assert!(stalled > 0 && stalled <= out.stats.faults.stall_cycles);
    for (i, p) in out.stats.procs.iter().enumerate() {
        assert_eq!(p.total(), out.stats.makespan, "proc {i} conservation with stalls");
    }
}

#[test]
fn data_jitter_slows_the_data_path() {
    let plain = run(&cfg(2), &chain_workload(8)).unwrap();
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::DataJitter, 9, 100));
    let out = run(&c, &chain_workload(8)).unwrap();
    assert!(out.stats.faults.jittered_transactions > 0);
    assert!(out.stats.faults.jitter_cycles > 0);
    assert!(out.stats.makespan > plain.stats.makespan, "jitter must cost cycles");
}

#[test]
fn reorder_still_delivers_everything() {
    // Six processors post simultaneously so the sync queue is deep at
    // grant time; every variable must still reach its value.
    let writers: Vec<Program> = (0..6)
        .map(|v| Program::from_instrs(vec![Instr::SyncSet { var: v, val: 1 }]))
        .collect();
    let assign: Vec<Vec<usize>> = (0..6).map(|p| vec![p]).collect();
    let w = Workload::static_assigned(writers, assign);
    let mut c = cfg(6).with_faults(FaultPlan::only(FaultClass::BroadcastReorder, 13, 100));
    c.coalesce_sync_writes = false;
    let out = run(&c, &w).unwrap();
    assert!(out.stats.faults.reordered_broadcasts > 0);
    assert_eq!(out.sync_final, vec![1; 6]);
}

#[test]
fn deadlock_still_detected_under_chaos() {
    // An unsatisfiable wait must be *detected* (deadlock), not burn
    // until max_cycles, even while faults keep shaking the machine.
    let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(9) }]);
    let mut c = cfg(1).with_faults(FaultPlan::chaos(21, 50));
    c.max_cycles = 2_000_000;
    match run(&c, &Workload::dynamic(vec![stuck])) {
        Err(SimError::Deadlock { cycle, .. }) => {
            assert!(cycle < 100_000, "detection must be prompt, took {cycle}");
        }
        other => panic!("expected detected deadlock, got {other:?}"),
    }
}

// ---- fast-forward vs reference equivalence ----

/// Runs with an explicit step mode and event recording on.
fn run_mode(
    config: &MachineConfig,
    w: &Workload,
    mode: StepMode,
    capacity: usize,
) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    let mut m = Machine::new(config, w);
    m.set_mode(mode);
    m.enable_events(capacity);
    m.run_to_completion()
}

/// Asserts the fast-forward kernel is bit-identical to per-cycle
/// stepping — stats, trace, metrics, final sync values — and that
/// turning event recording on changes nothing observable while
/// producing the same event sequence in both modes.
fn assert_equivalent(config: &MachineConfig, w: &Workload) {
    let fast = run(config, w);
    let slow = run_reference(config, w);
    match (fast, slow) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.stats, b.stats, "stats diverge");
            assert_eq!(a.trace, b.trace, "trace diverges");
            assert_eq!(a.sync_final, b.sync_final, "sync_final diverges");
            assert_eq!(a.metrics, b.metrics, "metrics diverge");
            let ta = run_mode(config, w, StepMode::FastForward, 1 << 16).unwrap();
            let tb = run_mode(config, w, StepMode::Reference, 1 << 16).unwrap();
            assert_eq!(ta.events, tb.events, "event streams diverge");
            assert_eq!(ta.stats, a.stats, "recording must not change stats");
            assert_eq!(tb.stats, b.stats, "recording must not change stats");
            assert_eq!(ta.metrics, a.metrics, "recording must not change metrics");
            assert_eq!(ta.trace, a.trace, "recording must not change the trace");
        }
        (fast, slow) => assert_eq!(fast.err(), slow.err(), "outcomes diverge"),
    }
}

#[test]
fn fast_forward_matches_reference_fault_free() {
    for procs in [1, 2, 3] {
        assert_equivalent(&cfg(procs), &chain_workload(10));
    }
    let mut banked = cfg(3);
    banked.memory_model = crate::config::MemoryModel::Banked { banks: 4 };
    assert_equivalent(&banked, &chain_workload(10));
    assert_equivalent(&cfg(2).transport(SyncTransport::SharedMemory), &chain_workload(6));
}

#[test]
fn fast_forward_matches_reference_under_every_fault_class() {
    for class in FaultClass::ALL {
        for seed in [1u64, 7, 42] {
            let c = cfg(3).with_faults(FaultPlan::only(class, seed, 70));
            assert_equivalent(&c, &chain_workload(8));
        }
    }
    for seed in [3u64, 11] {
        assert_equivalent(&cfg(3).with_faults(FaultPlan::chaos(seed, 55)), &chain_workload(8));
    }
}

#[test]
fn fast_forward_matches_reference_on_failures() {
    // Deadlock: both modes must report the same detection cycle.
    let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    assert_equivalent(&cfg(1), &Workload::dynamic(vec![stuck.clone()]));
    // Livelock via the watchdog (shared-memory re-polling forever).
    let c = cfg(1).transport(SyncTransport::SharedMemory);
    assert_equivalent(&c, &Workload::dynamic(vec![stuck]));
    // Timeout at an arbitrary cap.
    let mut t = cfg(1);
    t.max_cycles = 37;
    assert_equivalent(
        &t,
        &Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(500)])]),
    );
}

#[test]
fn fast_forward_jumps_long_spins() {
    // One producer computes 100k cycles while the consumer spins on
    // its local image: the reference stepper burns a cycle per spin,
    // the kernel jumps the whole span — results must match exactly.
    let producer =
        Program::from_instrs(vec![Instr::Compute(100_000), Instr::SyncSet { var: 0, val: 1 }]);
    let consumer = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
    let config = cfg(2);
    assert_equivalent(&config, &w);
    let out = run(&config, &w).unwrap();
    assert!(out.stats.procs[1].spin > 90_000, "consumer must spin through the compute");
    for (i, p) in out.stats.procs.iter().enumerate() {
        assert_eq!(p.total(), out.stats.makespan, "proc {i} conservation after jumps");
    }
}

// ---- observability: events, metrics, watchdog boundary ----

#[test]
fn watchdog_fires_at_exactly_limit_plus_one_in_both_modes() {
    // One processor spins on a local image whose update is deferred
    // to `due`. due == limit is the last cycle the watchdog
    // tolerates; due == limit + 1 loses the race by exactly one
    // cycle — in BOTH step modes, at the same cycle.
    let wait = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
    let w = Workload::dynamic(vec![wait]);
    let mut c = cfg(1);
    c.dispatch_latency = 0;
    let limit = Machine::new(&c, &w).watchdog_limit();
    for mode in [StepMode::FastForward, StepMode::Reference] {
        // due == limit: the image applies just in time.
        let mut m = Machine::new(&c, &w);
        m.set_mode(mode);
        m.sync.push_defer(0, limit, 0, 1);
        let out = m.run_to_completion().unwrap_or_else(|e| panic!("{mode:?} at limit: {e}"));
        assert!(out.stats.makespan > limit, "{mode:?}: spun through the quiet span");
        // due == limit + 1: the watchdog fires first, at limit + 1.
        let mut m = Machine::new(&c, &w);
        m.set_mode(mode);
        m.sync.push_defer(0, limit + 1, 0, 1);
        match m.run_to_completion() {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                assert_eq!(cycle, limit + 1, "{mode:?} watchdog fire cycle");
                assert!(detail[0].contains("livelock"), "{mode:?}: {detail:?}");
            }
            other => panic!("{mode:?}: expected watchdog deadlock, got {other:?}"),
        }
    }
}

#[test]
fn event_recording_does_not_perturb_stats() {
    for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
        let c = cfg(3).transport(transport);
        let w = chain_workload(8);
        let plain = run(&c, &w).unwrap();
        let traced = run_mode(&c, &w, StepMode::FastForward, 4096).unwrap();
        assert_eq!(plain.stats, traced.stats, "{transport:?}");
        assert_eq!(plain.metrics, traced.metrics, "{transport:?}");
        assert_eq!(plain.sync_final, traced.sync_final, "{transport:?}");
        assert!(plain.events.is_empty(), "recording is off by default");
        assert!(!traced.events.is_empty());
    }
}

#[test]
fn event_ring_captures_run_lifecycle() {
    let c = cfg(2);
    let w = chain_workload(4);
    let out = run_mode(&c, &w, StepMode::FastForward, 1 << 12).unwrap();
    assert_eq!(out.events.dropped(), 0, "ring large enough for the whole run");
    let kinds: Vec<SimEventKind> = out.events.iter().map(|e| e.kind).collect();
    assert!(matches!(kinds[0], SimEventKind::WatchdogArm { .. }), "arm comes first");
    for probe in [
        |k: &SimEventKind| matches!(k, SimEventKind::Dispatch { .. }),
        |k: &SimEventKind| matches!(k, SimEventKind::DataGrant { .. }),
        |k: &SimEventKind| matches!(k, SimEventKind::SyncGrant { .. }),
        |k: &SimEventKind| matches!(k, SimEventKind::SyncDeliver { .. }),
        |k: &SimEventKind| matches!(k, SimEventKind::WaitBegin { .. }),
        |k: &SimEventKind| matches!(k, SimEventKind::WaitEnd { .. }),
    ] {
        assert!(kinds.iter().any(probe), "missing event kind in {kinds:?}");
    }
    let cycles: Vec<u64> = out.events.iter().map(|e| e.cycle).collect();
    assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "events are time-ordered");
}

#[test]
fn metrics_account_buses_and_waits() {
    let out = run(&cfg(2), &chain_workload(6)).unwrap();
    assert!(out.metrics.data_bus_busy > 0);
    assert!(out.metrics.sync_bus_busy > 0);
    assert!(out.metrics.data_bus_occupancy(out.stats.makespan) <= 1.0);
    let t = out.metrics.sync_traffic_total();
    assert_eq!(t.posts, 6, "each chain link posts once");
    assert_eq!(t.waits, 5, "every link but the first waits");
    assert_eq!(t.rmws, 0);
    assert_eq!(t.polls, 0, "local-image spinning makes no poll traffic");
    assert!(out.metrics.wait_episodes() >= 5, "consumers wait on the chain");
    assert!(out.metrics.wait_max() >= out.metrics.wait_mean() as u64);
}

#[test]
fn shared_memory_polls_are_counted_per_var() {
    let c = cfg(2).transport(SyncTransport::SharedMemory);
    let out = run(&c, &chain_workload(4)).unwrap();
    let t = out.metrics.sync_traffic_total();
    assert_eq!(t.polls, out.stats.spin_polls, "poll traffic matches the global stat");
    assert!(t.polls > 0);
}

#[test]
fn bank_conflicts_show_in_metrics() {
    use crate::config::MemoryModel;
    let progs: Vec<Program> = (0..2u64)
        .map(|_| {
            Program::from_instrs(
                (0..3).map(|k| Instr::Access { addr: k * 4, write: true }).collect(),
            )
        })
        .collect();
    let w = Workload::static_assigned(progs, vec![vec![0], vec![1]]);
    let mut c = cfg(2);
    c.dispatch_latency = 0;
    c.memory_model = MemoryModel::Banked { banks: 4 };
    let out = run(&c, &w).unwrap();
    assert!(out.metrics.bank_conflicts > 0, "everything hits bank 0");
    assert_eq!(out.metrics.bank_busy, 6 * 4, "six requests at memory_latency 4");
}

#[test]
fn event_streams_are_seed_deterministic() {
    let c = cfg(3).with_faults(FaultPlan::chaos(42, 60));
    let w = chain_workload(10);
    let a = run_mode(&c, &w, StepMode::FastForward, 1 << 14).unwrap();
    let b = run_mode(&c, &w, StepMode::FastForward, 1 << 14).unwrap();
    assert_eq!(a.events, b.events, "same seed must give the same event sequence");
    assert!(a.events.iter().any(|e| matches!(e.kind, SimEventKind::Fault { .. })));
    let other =
        run_mode(&cfg(3).with_faults(FaultPlan::chaos(43, 60)), &w, StepMode::FastForward, 1 << 14)
            .unwrap();
    assert_ne!(a.events, other.events, "different seeds shake differently");
}

#[test]
fn fault_events_traced() {
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::DataJitter, 2, 100));
    let out = run(&c, &chain_workload(4)).unwrap();
    assert!(!out.trace.fault_events().is_empty());
    assert!(out
        .trace
        .fault_events()
        .iter()
        .all(|e| e.class == FaultClass::DataJitter && e.magnitude >= 1));
}

// ---- self-healing: gap NACKs, retransmission, watchdog repair ----

use crate::recovery::RecoveryPolicy;

#[test]
fn lost_broadcasts_wedge_without_recovery() {
    // Total image loss with the ladder disarmed: the first waiter's
    // image never sees the posted value and the machine must *detect*
    // the wedge (promptly, with the gap visible in the detail), not
    // burn to the timeout.
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100));
    match run(&c, &chain_workload(6)) {
        Err(SimError::Deadlock { cycle, detail, .. }) => {
            assert!(cycle < 100_000, "detection must be prompt, took {cycle}");
            assert!(
                detail.iter().any(|d| d.contains("image") && d.contains("global")),
                "detail must expose the image/global gap: {detail:?}"
            );
        }
        other => panic!("expected wedge without recovery, got {other:?}"),
    }
}

#[test]
fn nack_retransmission_heals_moderate_loss() {
    // At 60% loss most refreshes get through: the run completes on
    // NACK retransmissions alone or with occasional watchdog help,
    // and the healed episodes are accounted.
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 60))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &chain_workload(8)).unwrap();
    assert_eq!(out.sync_final[0], 8, "the chain must complete");
    assert!(out.stats.faults.lost_image_updates > 0, "60% loss must fire");
    assert!(out.stats.recovery.gap_nacks > 0, "gaps must be NACKed");
    assert!(out.stats.recovery.retransmits >= out.stats.recovery.gap_nacks);
    assert!(out.stats.recovery.healed_waits > 0);
    assert!(out.stats.recovery.heal_latency_max >= 1);
}

#[test]
fn watchdog_repair_rescues_total_loss() {
    // 100% loss kills every broadcast *including the retransmissions*:
    // each waiter exhausts its NACK budget, falls silent, and the
    // watchdog's repair rung force-syncs the images. The full ladder
    // must be visible: NACKs, then repairs, then completion.
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &chain_workload(6)).unwrap();
    assert_eq!(out.sync_final[0], 6);
    assert!(out.stats.recovery.gap_nacks > 0);
    assert!(out.stats.recovery.watchdog_repairs > 0, "silence must escalate to repair");
    assert!(out.stats.recovery.images_repaired > 0);
    assert!(out.stats.recovery.healed_waits > 0);
}

#[test]
fn recovery_actions_emit_trace_events() {
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run_mode(&c, &chain_workload(4), StepMode::FastForward, 1 << 14).unwrap();
    let kinds: Vec<SimEventKind> = out.events.iter().map(|e| e.kind).collect();
    assert!(kinds.iter().any(|k| matches!(k, SimEventKind::GapNack { .. })), "{kinds:?}");
    assert!(kinds.iter().any(|k| matches!(k, SimEventKind::Retransmit { .. })));
    assert!(kinds.iter().any(|k| matches!(k, SimEventKind::WatchdogRepair { .. })));
}

#[test]
fn recovery_is_inert_on_fault_free_runs() {
    // Arming the ladder without faults must change nothing observable:
    // gap checks never prove a gap (images track the global exactly),
    // so stats, trace and metrics stay bit-identical to recovery off.
    let w = chain_workload(10);
    let off = run(&cfg(3), &w).unwrap();
    let on = run(&cfg(3).with_recovery(RecoveryPolicy::Full), &w).unwrap();
    assert_eq!(off.stats, on.stats);
    assert_eq!(off.trace, on.trace);
    assert_eq!(off.metrics, on.metrics);
    assert_eq!(on.stats.recovery.actions(), 0);
}

#[test]
fn fast_forward_matches_reference_with_recovery_enabled() {
    // The ladder draws no RNG and acts only at stepped cycles, so the
    // equivalence contract must hold under every fault class with
    // recovery armed — including total loss where repairs fire.
    for class in FaultClass::ALL {
        for seed in [1u64, 7] {
            let c = cfg(3)
                .with_faults(FaultPlan::only(class, seed, 70))
                .with_recovery(RecoveryPolicy::RepairOnly);
            assert_equivalent(&c, &chain_workload(8));
        }
    }
    let total = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    assert_equivalent(&total, &chain_workload(6));
    for seed in [3u64, 11] {
        let c = cfg(3)
            .with_faults(FaultPlan::chaos(seed, 55))
            .with_recovery(RecoveryPolicy::RepairOnly);
        assert_equivalent(&c, &chain_workload(8));
    }
}

#[test]
fn unhealable_wedge_still_detected_with_recovery_on() {
    // A wait that is unsatisfied even *globally* is beyond the
    // ladder: it must still be detected promptly, and the failure
    // must carry the unhealable wait-for proof.
    let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(9) }]);
    let c = cfg(1).with_recovery(RecoveryPolicy::Full);
    match run(&c, &Workload::dynamic(vec![stuck])) {
        Err(SimError::Deadlock { cycle, detail, .. }) => {
            assert!(cycle < 100_000, "took {cycle}");
            assert!(
                detail.iter().any(|d| d.contains("unhealable")),
                "proof must mark the edge unhealable: {detail:?}"
            );
        }
        other => panic!("expected detected deadlock, got {other:?}"),
    }
}

#[test]
fn refresh_never_regresses_a_counter() {
    // Waiters NACK while other processors keep advancing the counter
    // through RMWs: because a refresh re-reads the global value at
    // delivery time, no late retransmission can regress it. Heavy
    // loss + a barrier-style RMW workload exercises exactly the
    // overtaking window.
    let n = 4usize;
    let progs: Vec<Program> = (0..n)
        .map(|i| {
            Program::from_instrs(vec![
                Instr::Compute(3 * (i as u32 + 1)),
                Instr::SyncRmw { var: 0 },
                Instr::SyncWait { var: 0, pred: Pred::Geq(n as u64) },
            ])
        })
        .collect();
    let w = Workload::static_assigned(progs, (0..n).map(|p| vec![p]).collect());
    let c = cfg(n)
        .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 17, 70))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &w).unwrap();
    assert_eq!(out.sync_final[0], n as u64, "every increment must survive recovery");
}

// ---- fail-stop survival: reclamation, reissue, reconfiguration ----

#[test]
fn fail_stop_wedges_without_recovery() {
    // A processor dies holding unretired chain links: with the ladder
    // disarmed the machine must *detect* the wedge promptly and name
    // the dead processor, not burn to the timeout.
    let c = cfg(2).with_faults(FaultPlan::only(FaultClass::ProcFailStop, 5, 100));
    match run(&c, &chain_workload(8)) {
        Err(SimError::Deadlock { cycle, detail, .. }) => {
            assert!(cycle < 100_000, "detection must be prompt, took {cycle}");
            assert!(
                detail.iter().any(|d| d.contains("fail-stopped")),
                "detail must name the dead processor: {detail:?}"
            );
        }
        other => panic!("expected wedge without recovery, got {other:?}"),
    }
}

#[test]
fn fail_stop_rescue_completes_the_chain() {
    // Same kill, ladder armed: the rescue rung reclaims the dead
    // processor's unretired work, survivors finish the chain, and the
    // run is marked reconfigured. Cycle accounting must conserve
    // through the participant loss (the dead bucket).
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::ProcFailStop, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &chain_workload(8)).unwrap();
    assert_eq!(out.sync_final[0], 8, "the chain must complete on the survivor");
    assert_eq!(out.stats.faults.fail_stops, 1);
    assert!(out.stats.recovery.fail_stop_rescues > 0, "the rescue rung must fire");
    assert!(out.stats.recovery.programs_reclaimed > 0);
    assert!(out.stats.recovery.reconfigured());
    assert!(out.stats.procs.iter().any(|p| p.dead > 0), "dead cycles must be charged");
    for (i, p) in out.stats.procs.iter().enumerate() {
        assert_eq!(p.total(), out.stats.makespan, "proc {i} conservation with a dead proc");
    }
}

#[test]
fn fail_stop_rescue_reclaims_static_queues() {
    // Under static dispatch the dead processor also strands its
    // never-started queue entries; the rescue pool must pick those up
    // and survivors must run them to completion.
    // Long computes keep the run well past the kill window, so the
    // victim dies holding most of its queue.
    let prog =
        |c: u32| Program::from_instrs(vec![Instr::Compute(40 * c), Instr::SyncRmw { var: 0 }]);
    let w = Workload::static_cyclic((1..=8).map(prog).collect(), 2);
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::ProcFailStop, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &w).unwrap();
    assert_eq!(out.stats.faults.fail_stops, 1, "the kill must land mid-run");
    assert_eq!(out.sync_final[0], 8, "every iteration must still increment");
    assert!(
        out.stats.recovery.programs_reclaimed >= 2,
        "the in-flight program plus queued assignments must be reclaimed, got {}",
        out.stats.recovery.programs_reclaimed
    );
}

#[test]
fn fail_stop_rescue_works_through_shared_memory() {
    // Memory-polling survivors keep the bus busy, so the watchdog never
    // sees silence: the rescue must hang off the precise deadlock
    // detector instead. The swap path (preempting a polling survivor in
    // backoff) is exercised when no survivor is idle.
    let c = cfg(2)
        .transport(SyncTransport::SharedMemory)
        .with_faults(FaultPlan::only(FaultClass::ProcFailStop, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &chain_workload(8)).unwrap();
    assert_eq!(out.sync_final[0], 8);
    assert!(out.stats.recovery.fail_stop_rescues > 0);
}

#[test]
fn fail_stop_rescue_emits_trace_events() {
    let c = cfg(2)
        .with_faults(FaultPlan::only(FaultClass::ProcFailStop, 5, 100))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let out = run_mode(&c, &chain_workload(8), StepMode::FastForward, 1 << 14).unwrap();
    let kinds: Vec<SimEventKind> = out.events.iter().map(|e| e.kind).collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, SimEventKind::Fault { class: FaultClass::ProcFailStop, .. })),
        "{kinds:?}"
    );
    assert!(kinds.iter().any(|k| matches!(k, SimEventKind::WorkReclaimed { .. })));
    assert!(kinds.iter().any(|k| matches!(k, SimEventKind::WatchdogRescue { .. })));
}

#[test]
fn fail_stop_rescue_is_seed_deterministic() {
    let c = cfg(3)
        .with_faults(FaultPlan::only(FaultClass::ProcFailStop, 9, 80))
        .with_recovery(RecoveryPolicy::RepairOnly);
    let a = run(&c, &chain_workload(10)).unwrap();
    let b = run(&c, &chain_workload(10)).unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.sync_final, b.sync_final);
}

#[test]
fn fail_stop_combined_with_loss_survives() {
    // The hardest mix the ladder supports: broadcasts are lost *and* a
    // producer dies. Repair heals the gapped images, rescue reissues
    // the dead processor's work, and the chain still completes.
    let mut f = FaultPlan::only(FaultClass::BroadcastLoss, 5, 60);
    f.fail_stop_procs = 1;
    f.fail_stop_window = 200;
    let c = cfg(3).with_faults(f).with_recovery(RecoveryPolicy::RepairOnly);
    let out = run(&c, &chain_workload(8)).unwrap();
    assert_eq!(out.sync_final[0], 8);
    assert!(out.stats.faults.fail_stops > 0);
}

// ---- fabric backends ----

#[test]
fn fabric_backends_agree_on_final_state_and_order_by_cost() {
    // All three backends must drive the chain to the same final value;
    // the dedicated bus can only help against the shared one, and the
    // zero-latency oracle can only help against the dedicated bus.
    let w = chain_workload(8);
    let mut makespan = Vec::new();
    for kind in FabricKind::ALL {
        let out = run(&cfg(3).fabric(kind), &w).unwrap();
        assert_eq!(out.sync_final[0], 8, "{kind} must complete the chain");
        makespan.push((kind, out.stats.makespan));
    }
    let by = |k: FabricKind| makespan.iter().find(|(kk, _)| *kk == k).unwrap().1;
    assert!(
        by(FabricKind::Dedicated) <= by(FabricKind::Shared),
        "a dedicated sync bus must not lose to sharing the data bus: {makespan:?}"
    );
    assert!(
        by(FabricKind::Ideal) <= by(FabricKind::Dedicated),
        "the oracle must not lose to real hardware: {makespan:?}"
    );
}

#[test]
fn shared_fabric_never_overlaps_bus_tenures() {
    // One physical bus: the grant intervals of data transactions and
    // sync broadcasts must never overlap in time.
    let c = cfg(3).fabric(FabricKind::Shared);
    let out = run_mode(&c, &chain_workload(8), StepMode::FastForward, 1 << 14).unwrap();
    let mut tenures: Vec<(u64, u64, bool)> = Vec::new();
    for e in out.events.iter() {
        match e.kind {
            SimEventKind::DataGrant { dur, .. } => tenures.push((e.cycle, e.cycle + dur, false)),
            SimEventKind::SyncGrant { dur, .. } => tenures.push((e.cycle, e.cycle + dur, true)),
            _ => {}
        }
    }
    assert!(tenures.iter().any(|t| t.2) && tenures.iter().any(|t| !t.2));
    for (i, a) in tenures.iter().enumerate() {
        for b in &tenures[i + 1..] {
            assert!(a.1 <= b.0 || b.1 <= a.0, "bus tenures overlap: {a:?} vs {b:?}");
        }
    }
    // And every broadcast's tenure is charged to both occupancy counters.
    assert_eq!(
        out.metrics.data_bus_busy,
        run(&cfg(3), &chain_workload(8)).unwrap().metrics.data_bus_busy + out.metrics.sync_bus_busy,
        "shared grants must charge the one physical bus for sync tenures too"
    );
}

#[test]
fn ideal_fabric_is_instant_and_occupancy_free() {
    let out = run(&cfg(3).fabric(FabricKind::Ideal), &chain_workload(8)).unwrap();
    assert_eq!(out.metrics.sync_bus_busy, 0, "the oracle holds no bus");
    assert_eq!(out.stats.coalesced_writes, 0, "nothing queues, nothing coalesces");
    assert_eq!(out.stats.sync_broadcasts, 8, "one instant delivery per post");
    assert_eq!(out.sync_final[0], 8);
    // RMWs neither block nor broadcast: a two-way increment race settles
    // in issue order.
    let prog = Program::from_instrs(vec![Instr::SyncRmw { var: 0 }, Instr::SyncRmw { var: 0 }]);
    let w = Workload::static_assigned(vec![prog.clone(), prog], vec![vec![0], vec![1]]);
    let out = run(&cfg(2).fabric(FabricKind::Ideal), &w).unwrap();
    assert_eq!(out.sync_final[0], 4);
    assert_eq!(out.stats.rmw_ops, 4);
}

#[test]
fn ideal_fabric_shrugs_off_sync_faults() {
    // 100% broadcast loss wedges the dedicated bus (detected deadlock
    // without recovery) but cannot touch the oracle: it has no queue or
    // image tap to fault.
    let w = chain_workload(6);
    let faults = FaultPlan::only(FaultClass::BroadcastLoss, 5, 100);
    assert!(matches!(run(&cfg(2).with_faults(faults), &w), Err(SimError::Deadlock { .. })));
    let out = run(&cfg(2).fabric(FabricKind::Ideal).with_faults(faults), &w).unwrap();
    assert_eq!(out.sync_final[0], 6);
    assert_eq!(out.stats.faults.lost_image_updates, 0);
}

#[test]
fn fast_forward_matches_reference_for_every_fabric() {
    for kind in FabricKind::ALL {
        assert_equivalent(&cfg(3).fabric(kind), &chain_workload(10));
        assert_equivalent(
            &cfg(3).fabric(kind).with_faults(FaultPlan::chaos(9, 55)),
            &chain_workload(8),
        );
        assert_equivalent(
            &cfg(3)
                .fabric(kind)
                .with_faults(FaultPlan::chaos(5, 60))
                .with_recovery(RecoveryPolicy::RepairOnly),
            &chain_workload(8),
        );
    }
}

/// Representative two-level geometries for a given P: a square-ish
/// split, one lone cluster (pure bridge overhead), and per-processor
/// clusters (every broadcast bridges).
fn clustered_kinds(p: u32) -> Vec<FabricKind> {
    let mut v = vec![
        FabricKind::Clustered { clusters: 1, bridge_latency: 2, coalesce_window: 4 },
        FabricKind::Clustered { clusters: p, bridge_latency: 1, coalesce_window: 0 },
    ];
    if p.is_multiple_of(2) {
        v.push(FabricKind::Clustered { clusters: p / 2, bridge_latency: 3, coalesce_window: 6 });
    }
    v
}

#[test]
fn fast_forward_matches_reference_on_the_clustered_fabric() {
    for p in [2usize, 4] {
        for kind in clustered_kinds(p as u32) {
            assert_equivalent(&cfg(p).fabric(kind), &chain_workload(10));
            assert_equivalent(
                &cfg(p).fabric(kind).with_faults(FaultPlan::chaos(9, 55)),
                &chain_workload(8),
            );
            assert_equivalent(
                &cfg(p)
                    .fabric(kind)
                    .with_faults(FaultPlan::chaos(5, 60))
                    .with_recovery(RecoveryPolicy::RepairOnly),
                &chain_workload(8),
            );
        }
    }
}

#[test]
fn clustered_equivalence_under_every_fault_class() {
    let kind = FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 4 };
    for class in FaultClass::ALL {
        for seed in [1u64, 7, 42] {
            let c = cfg(4).fabric(kind).with_faults(FaultPlan::only(class, seed, 70));
            assert_equivalent(&c, &chain_workload(8));
            let r = c.with_recovery(RecoveryPolicy::RepairOnly);
            assert_equivalent(&r, &chain_workload(8));
        }
    }
}

#[test]
fn clustered_fabric_completes_chains_and_bridges_every_update() {
    // The chain crosses clusters, so every link rides the bridge; with a
    // zero-width coalescing window nothing can fold and the extended
    // conservation identity pins each level exactly.
    let kind = FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 0 };
    let out = run(&cfg(4).fabric(kind), &chain_workload(8)).unwrap();
    assert_eq!(out.sync_final[0], 8, "chain must complete across clusters");
    assert_eq!(
        out.stats.sync_ops_issued,
        out.stats.sync_broadcasts + out.stats.coalesced_writes,
        "level 1: issued = local broadcasts + coalesced"
    );
    assert_eq!(
        out.stats.sync_broadcasts,
        out.stats.bridge_broadcasts + out.stats.bridge_coalesced,
        "level 2: broadcasts = bridged + aggregated"
    );
    assert!(out.stats.bridge_broadcasts > 0, "cross-cluster chain must use the bridge");
    assert!(out.metrics.bridge_busy > 0, "bridge tenure must be charged");
    // Flat fabrics never touch the bridge counters.
    for kind in FabricKind::ALL {
        let flat = run(&cfg(4).fabric(kind), &chain_workload(8)).unwrap();
        assert_eq!(flat.stats.bridge_broadcasts, 0, "{kind}: flat fabrics have no bridge");
        assert_eq!(flat.stats.bridge_coalesced, 0, "{kind}: flat fabrics aggregate nothing");
        assert_eq!(flat.metrics.bridge_busy, 0, "{kind}: flat fabrics hold no bridge");
    }
}

#[test]
fn clustered_bridge_aggregates_same_variable_bursts() {
    // Every processor posts a distinct value to the same variable inside
    // one coalescing window: cluster buses serialize locally, and the
    // bridge folds the concurrent submissions into far fewer global
    // forwards. Conservation still holds level by level.
    let posts: Vec<Program> = (0..4)
        .map(|i| Program::from_instrs(vec![Instr::SyncSet { var: 0, val: i + 1 }]))
        .collect();
    let w = Workload::static_assigned(posts, (0..4).map(|i| vec![i]).collect());
    let kind = FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 16 };
    let out = run(&cfg(4).fabric(kind), &w).unwrap();
    assert!(out.stats.bridge_coalesced > 0, "same-variable burst must fold at the bridge");
    assert_eq!(
        out.stats.sync_broadcasts,
        out.stats.bridge_broadcasts + out.stats.bridge_coalesced,
        "aggregation must conserve broadcasts"
    );
    // The bridge forwards the *current* global value, so the final image
    // everywhere equals the last write the cluster buses applied.
    assert!(out.sync_final[0] >= 1 && out.sync_final[0] <= 4);
}

#[test]
fn clustered_rmw_serializes_globally() {
    // Increment races resolved through per-cluster buses still serialize
    // on the shared global: every RMW lands, none are lost to bridging.
    let prog = Program::from_instrs(vec![Instr::SyncRmw { var: 0 }, Instr::SyncRmw { var: 0 }]);
    let w = Workload::static_assigned(
        vec![prog.clone(), prog.clone(), prog.clone(), prog],
        vec![vec![0], vec![1], vec![2], vec![3]],
    );
    let kind = FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 4 };
    let out = run(&cfg(4).fabric(kind), &w).unwrap();
    assert_eq!(out.sync_final[0], 8, "all 8 increments must land exactly once");
    assert_eq!(out.stats.rmw_ops, 8);
}

#[test]
fn default_fabric_is_the_dedicated_bus() {
    let w = chain_workload(6);
    let default = run(&cfg(3), &w).unwrap();
    let explicit = run(&cfg(3).fabric(FabricKind::Dedicated), &w).unwrap();
    assert_eq!(default.stats, explicit.stats);
    assert_eq!(default.metrics, explicit.metrics);
    assert_eq!(default.trace, explicit.trace);
}

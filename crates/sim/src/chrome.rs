//! Chrome `trace_event` JSON export (`chrome://tracing` / Perfetto).
//!
//! Converts one run's note trace and structured event ring into the
//! Trace Event Format's JSON Object representation: a `traceEvents`
//! array of `"X"` (complete, `ts` + `dur`), `"i"` (instant) and `"M"`
//! (metadata) records. Simulated cycles map 1:1 to microseconds — the
//! viewer's time axis then reads directly in cycles.
//!
//! Track layout:
//!
//! * **pid 0 "processors"** — one thread row per processor: statement
//!   spans (from the note trace), wait episodes, dispatches and
//!   per-processor faults;
//! * **pid 1 "interconnect"** — data-bus grants, sync-bus grants with
//!   their deliveries, bus-level faults, and watchdog arm/fire marks;
//! * **pid 2 "banks"** — per-bank service spans and conflict marks
//!   (present only for banked-memory runs).
//!
//! The JSON is hand-rolled like every serializer in this workspace (the
//! repo is dependency-free by policy).

use crate::events::{EventRing, SimEventKind};
use crate::timeline::spans;
use crate::trace::Trace;
use std::fmt::Write as _;

const PID_PROCS: u32 = 0;
const PID_BUSES: u32 = 1;
const PID_BANKS: u32 = 2;
const TID_DATA_BUS: u32 = 0;
const TID_SYNC_BUS: u32 = 1;
const TID_WATCHDOG: u32 = 2;

/// Renders one run as a Chrome trace_event JSON object.
///
/// `procs` sizes the processor track metadata; the note `trace` supplies
/// statement spans and `events` supplies everything else. Works with a
/// disabled (empty) ring — you still get the statement timeline.
pub fn render(trace: &Trace, events: &EventRing, procs: usize) -> String {
    let mut w = Writer::new();

    w.meta_process(PID_PROCS, "processors");
    for p in 0..procs {
        w.meta_thread(PID_PROCS, p as u32, &format!("P{p}"));
    }
    w.meta_process(PID_BUSES, "interconnect");
    w.meta_thread(PID_BUSES, TID_DATA_BUS, "data bus");
    w.meta_thread(PID_BUSES, TID_SYNC_BUS, "sync bus");
    w.meta_thread(PID_BUSES, TID_WATCHDOG, "watchdog");

    for s in spans(trace) {
        w.complete(
            &format!("S{} it{}", s.stmt, s.pid),
            "stmt",
            PID_PROCS,
            s.proc as u32,
            s.start,
            s.end - s.start + 1,
        );
    }

    let mut bank_meta_done = false;
    for e in events.iter() {
        let c = e.cycle;
        match e.kind {
            SimEventKind::DataGrant { proc, dur, poll } => {
                let cat = if poll { "poll" } else { "data" };
                w.complete(&format!("P{proc} {cat}"), cat, PID_BUSES, TID_DATA_BUS, c, dur);
            }
            SimEventKind::SyncGrant { var, rmw, dur } => {
                let name = if rmw { format!("rmw v{var}") } else { format!("post v{var}") };
                w.complete(&name, "sync", PID_BUSES, TID_SYNC_BUS, c, dur);
            }
            SimEventKind::BridgeForward { var, dur } => {
                w.complete(&format!("bridge v{var}"), "sync", PID_BUSES, TID_SYNC_BUS, c, dur);
            }
            SimEventKind::SyncDeliver { var, val, stale } => {
                let name = if stale {
                    format!("stale v{var}={val}")
                } else {
                    format!("deliver v{var}={val}")
                };
                w.instant(&name, "sync", PID_BUSES, TID_SYNC_BUS, c);
            }
            SimEventKind::BankService { bank, proc, dur } => {
                if !bank_meta_done {
                    w.meta_process(PID_BANKS, "banks");
                    bank_meta_done = true;
                }
                w.complete(&format!("P{proc}"), "bank", PID_BANKS, bank as u32, c, dur);
            }
            SimEventKind::BankConflict { bank, depth } => {
                if !bank_meta_done {
                    w.meta_process(PID_BANKS, "banks");
                    bank_meta_done = true;
                }
                w.instant(&format!("conflict depth {depth}"), "bank", PID_BANKS, bank as u32, c);
            }
            SimEventKind::WaitEnd { proc, var, waited } => {
                w.complete(
                    &format!("wait v{var}"),
                    "wait",
                    PID_PROCS,
                    proc as u32,
                    c.saturating_sub(waited),
                    waited,
                );
            }
            // Wait begins are implied by the matching end span; an
            // unsatisfied (deadlocked) wait shows as the begin mark only.
            SimEventKind::WaitBegin { proc, var, through_memory } => {
                let how = if through_memory { "mem" } else { "image" };
                w.instant(&format!("wait v{var} ({how})"), "wait", PID_PROCS, proc as u32, c);
            }
            SimEventKind::Dispatch { proc, program } => {
                w.instant(&format!("dispatch #{program}"), "sched", PID_PROCS, proc as u32, c);
            }
            SimEventKind::Fault { class, proc, magnitude } => {
                let name = format!("fault {} ({magnitude}cy)", class.label());
                match proc {
                    Some(p) => w.instant(&name, "fault", PID_PROCS, p as u32, c),
                    None => w.instant(&name, "fault", PID_BUSES, TID_SYNC_BUS, c),
                }
            }
            SimEventKind::WatchdogArm { limit } => {
                w.instant(
                    &format!("armed (limit {limit})"),
                    "watchdog",
                    PID_BUSES,
                    TID_WATCHDOG,
                    c,
                );
            }
            SimEventKind::WatchdogFire { silent_for } => {
                w.instant(
                    &format!("FIRED after {silent_for} silent cycles"),
                    "watchdog",
                    PID_BUSES,
                    TID_WATCHDOG,
                    c,
                );
            }
            SimEventKind::GapNack { proc, var, tries } => {
                w.instant(
                    &format!("NACK v{var} (try {tries})"),
                    "recovery",
                    PID_PROCS,
                    proc as u32,
                    c,
                );
            }
            SimEventKind::Retransmit { var, val } => {
                w.instant(
                    &format!("retransmit v{var}={val}"),
                    "recovery",
                    PID_BUSES,
                    TID_SYNC_BUS,
                    c,
                );
            }
            SimEventKind::WatchdogRepair { rung, healed } => {
                w.instant(
                    &format!("REPAIR #{rung} (healed {healed} images)"),
                    "recovery",
                    PID_BUSES,
                    TID_WATCHDOG,
                    c,
                );
            }
            SimEventKind::WorkReclaimed { from, program, resume } => {
                w.instant(
                    &format!("reclaim #{program} (resume ip {resume})"),
                    "recovery",
                    PID_PROCS,
                    from as u32,
                    c,
                );
            }
            SimEventKind::WorkReissued { to, program, resume } => {
                w.instant(
                    &format!("reissue #{program} (resume ip {resume})"),
                    "recovery",
                    PID_PROCS,
                    to as u32,
                    c,
                );
            }
            SimEventKind::WatchdogRescue { rung, reclaimed } => {
                w.instant(
                    &format!("RESCUE #{rung} (reclaimed {reclaimed} programs)"),
                    "recovery",
                    PID_BUSES,
                    TID_WATCHDOG,
                    c,
                );
            }
        }
    }

    w.finish(events.dropped())
}

/// Incremental builder of the `traceEvents` JSON array.
struct Writer {
    out: String,
    first: bool,
}

impl Writer {
    fn new() -> Self {
        Self { out: String::from("{\"traceEvents\":[\n"), first: true }
    }

    fn sep(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.out.push_str(",\n");
        }
    }

    fn meta_process(&mut self, pid: u32, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }

    fn meta_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(name)
        );
    }

    fn complete(&mut self, name: &str, cat: &str, pid: u32, tid: u32, ts: u64, dur: u64) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":{pid},\
             \"tid\":{tid},\"ts\":{ts},\"dur\":{dur}}}",
            escape(name)
        );
    }

    fn instant(&mut self, name: &str, cat: &str, pid: u32, tid: u32, ts: u64) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
             \"pid\":{pid},\"tid\":{tid},\"ts\":{ts}}}",
            escape(name)
        );
    }

    fn finish(mut self, dropped: u64) -> String {
        let _ = write!(
            self.out,
            "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped_events\":{dropped},\
             \"time_unit\":\"1 cycle = 1us\"}}}}\n"
        );
        self.out
    }
}

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventRing;
    use crate::program::Label;

    #[test]
    fn empty_run_is_valid_shell() {
        let json = render(&Trace::new(), &EventRing::disabled(), 2);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"P1\""));
        assert!(json.contains("\"dropped_events\":0"));
    }

    #[test]
    fn spans_and_events_are_rendered() {
        let mut t = Trace::new();
        t.record(5, 0, Label { pid: 2, stmt: 1, start: true });
        t.record(9, 0, Label { pid: 2, stmt: 1, start: false });
        let mut r = EventRing::with_capacity(16);
        r.record(3, SimEventKind::DataGrant { proc: 0, dur: 2, poll: false });
        r.record(4, SimEventKind::SyncGrant { var: 1, rmw: true, dur: 1 });
        r.record(5, SimEventKind::SyncDeliver { var: 1, val: 7, stale: false });
        r.record(6, SimEventKind::WaitEnd { proc: 1, var: 1, waited: 4 });
        r.record(7, SimEventKind::BankService { bank: 3, proc: 0, dur: 5 });
        r.record(8, SimEventKind::WatchdogFire { silent_for: 100 });
        r.record(9, SimEventKind::GapNack { proc: 1, var: 1, tries: 1 });
        r.record(10, SimEventKind::Retransmit { var: 1, val: 7 });
        r.record(11, SimEventKind::WatchdogRepair { rung: 1, healed: 2 });
        let json = render(&t, &r, 2);
        assert!(json.contains("\"S1 it2\""), "{json}");
        assert!(json.contains("\"rmw v1\""), "{json}");
        assert!(json.contains("\"deliver v1=7\""), "{json}");
        assert!(json.contains("\"wait v1\""), "{json}");
        assert!(json.contains("\"ts\":2,\"dur\":4"), "wait span backdated: {json}");
        assert!(json.contains("\"banks\""), "{json}");
        assert!(json.contains("FIRED"), "{json}");
        assert!(json.contains("NACK v1 (try 1)"), "{json}");
        assert!(json.contains("retransmit v1=7"), "{json}");
        assert!(json.contains("REPAIR #1 (healed 2 images)"), "{json}");
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let mut r = EventRing::with_capacity(8);
        r.record(1, SimEventKind::Dispatch { proc: 0, program: 0 });
        r.record(2, SimEventKind::WaitBegin { proc: 0, var: 0, through_memory: true });
        let json = render(&Trace::new(), &r, 1);
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
        let obrack = json.matches('[').count();
        let cbrack = json.matches(']').count();
        assert_eq!(obrack, cbrack, "{json}");
    }
}

//! A tiny deterministic PRNG (splitmix64).
//!
//! Fault injection must be a *pure function* of the configuration, so the
//! simulator carries its own seeded generator instead of an external
//! crate: splitmix64 (Steele, Lea & Flood's `SplittableRandom` finalizer)
//! passes BigCrush, needs one u64 of state, and is trivially
//! reproducible across platforms. The same generator drives the
//! synthetic-workload generators and the seeded property tests.

/// A splitmix64 pseudo-random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`). Uses the widening-multiply
    /// reduction, which is unbiased enough for simulation purposes and
    /// branch-free.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `i64` in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        lo.wrapping_add(self.below((hi.wrapping_sub(lo) as u64) + 1) as i64)
    }

    /// Uniform `usize` in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// `true` with probability `pct / 100` (clamped at 100).
    pub fn chance_pct(&mut self, pct: u32) -> bool {
        pct >= 100 || self.below(100) < u64::from(pct)
    }

    /// `true` with probability `p` (0.0..=1.0).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Derives an independent generator (splitmix is splittable: one draw
    /// seeds a new stream that does not overlap in practice).
    pub fn split(&mut self) -> Self {
        Self::new(self.next_u64() ^ 0x5851_f42d_4c95_7f2d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_vector() {
        // Reference values for seed 1234567 (splitmix64 test vector).
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        assert_eq!(first, 0x599e_d017_fb08_fc85, "splitmix64 stream changed");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = g.range_u64(5, 9);
            assert!((5..=9).contains(&v));
            let i = g.range_i64(-3, 3);
            assert!((-3..=3).contains(&i));
            assert!(g.below(1) == 0);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut g = SplitMix64::new(99);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[g.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "5-value range must cover all values");
    }

    #[test]
    fn chance_extremes() {
        let mut g = SplitMix64::new(3);
        assert!(g.chance_pct(100));
        assert!(!g.chance_pct(0));
        assert!(g.chance(1.0));
        assert!(!g.chance(0.0));
        // 50% is roughly balanced.
        let hits = (0..1000).filter(|_| g.chance_pct(50)).count();
        assert!((350..=650).contains(&hits), "got {hits}/1000 at 50%");
    }

    #[test]
    fn split_streams_diverge() {
        let mut g = SplitMix64::new(11);
        let mut a = g.split();
        let mut b = g.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

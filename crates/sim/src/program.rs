//! The simulator's instruction set.
//!
//! Schemes compile loop iterations into small [`Program`]s over this
//! instruction set. The set mirrors what a late-1980s bus-based
//! multiprocessor offers: local compute, shared-memory accesses over the
//! data bus, and synchronization-variable operations whose cost depends on
//! the machine's transport (a dedicated synchronization bus with local
//! images, or plain shared memory — see
//! [`SyncTransport`](crate::config::SyncTransport)).

use std::fmt;

/// Index of a synchronization variable.
pub type SyncVar = usize;

/// A predicate on a synchronization variable's value.
///
/// Process counters `<owner, step>` are packed so that the paper's
/// lattice order (`<w,x> >= <y,z>` iff `w>y` or `w=y, x>=z`) coincides
/// with numeric `>=` — see [`pack_pc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Value `>= n`.
    Geq(u64),
    /// Value `== n`.
    Eq(u64),
}

impl Pred {
    /// Evaluates the predicate.
    pub fn eval(self, value: u64) -> bool {
        match self {
            Pred::Geq(n) => value >= n,
            Pred::Eq(n) => value == n,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Geq(n) => write!(f, ">= {n}"),
            Pred::Eq(n) => write!(f, "== {n}"),
        }
    }
}

/// Packs a process counter `<owner, step>` into a `u64` preserving the
/// paper's ordering (owner dominates, then step).
///
/// # Panics
///
/// Panics if `step >= 2^32`.
pub fn pack_pc(owner: u64, step: u32) -> u64 {
    assert!(owner < (1 << 32), "owner {owner} exceeds 32 bits");
    (owner << 32) | u64::from(step)
}

/// Unpacks a process counter into `(owner, step)`.
pub fn unpack_pc(v: u64) -> (u64, u32) {
    (v >> 32, (v & 0xffff_ffff) as u32)
}

/// A label recorded in the trace by [`Instr::Note`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label {
    /// Linear process (iteration) id.
    pub pid: u64,
    /// Statement id within the loop body.
    pub stmt: u32,
    /// `true` for the start of the statement, `false` for its end
    /// (end = all its shared accesses globally visible).
    pub start: bool,
}

/// One simulator instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Local computation for the given number of cycles (no bus traffic).
    Compute(u32),
    /// A shared-memory access through the data bus; the processor blocks
    /// until the access is globally performed.
    Access {
        /// Memory address (schemes hash array elements onto addresses).
        addr: u64,
        /// `true` for a store.
        write: bool,
    },
    /// Write a synchronization variable.
    ///
    /// On a dedicated sync bus this is *posted*: the processor continues
    /// immediately and the value is broadcast to all local images when the
    /// bus grants it (eligible for write coalescing, Section 6). On the
    /// shared-memory transport it blocks like a data access.
    SyncSet {
        /// Target variable.
        var: SyncVar,
        /// New value.
        val: u64,
    },
    /// Atomic fetch-and-increment of a synchronization variable at its
    /// home (memory controller or sync bus); blocking.
    SyncRmw {
        /// Target variable.
        var: SyncVar,
    },
    /// Busy-wait until the predicate holds.
    ///
    /// On a dedicated sync bus the spin runs on the processor's local
    /// image and produces no traffic; on shared memory every poll is a
    /// data-bus transaction (the hot-spot effect).
    SyncWait {
        /// Variable to watch.
        var: SyncVar,
        /// Condition to satisfy.
        pred: Pred,
    },
    /// Conditional write: post `val` only if the variable is currently
    /// `>= guard` — the ownership test of the improved `mark_PC`
    /// (Fig 4.3). On the dedicated bus the test reads the local image and
    /// costs nothing when skipped; on shared memory it is a read
    /// transaction followed (when satisfied) by a write transaction.
    SyncSetIfGeq {
        /// Target variable.
        var: SyncVar,
        /// Minimum current value for the write to proceed.
        guard: u64,
        /// New value.
        val: u64,
    },
    /// A Cedar-style synchronized data access (reference-based scheme):
    /// atomically test `key >= geq`, perform the data access, and
    /// increment the key — all at the element's home memory module.
    ///
    /// On shared memory each *attempt* is one data-bus transaction; a
    /// failed attempt retries after the spin interval. On the dedicated
    /// bus the test spins on the local image (free) and the successful
    /// access+increment is one bus operation.
    KeyedAccess {
        /// The element's key.
        var: SyncVar,
        /// Access rank: proceed once `key >= geq`.
        geq: u64,
    },
    /// Records a trace event at the current cycle; free.
    Note(Label),
}

/// A straight-line instruction sequence executed by one processor for one
/// work unit (typically one loop iteration).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The instructions, executed in order.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a program from instructions.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        Self { instrs }
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The highest sync-var index referenced, if any.
    pub fn max_sync_var(&self) -> Option<SyncVar> {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::SyncSet { var, .. }
                | Instr::SyncRmw { var }
                | Instr::SyncWait { var, .. }
                | Instr::SyncSetIfGeq { var, .. }
                | Instr::KeyedAccess { var, .. } => Some(*var),
                _ => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_pc_preserves_paper_order() {
        // <w,x> >= <y,z> iff w>y or (w=y and x>=z)
        assert!(pack_pc(3, 0) > pack_pc(2, 1000));
        assert!(pack_pc(2, 5) > pack_pc(2, 4));
        assert_eq!(pack_pc(2, 4), pack_pc(2, 4));
        assert!(pack_pc(1, u32::MAX) < pack_pc(2, 0));
        assert_eq!(unpack_pc(pack_pc(7, 9)), (7, 9));
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn oversized_owner_panics() {
        let _ = pack_pc(1 << 32, 0);
    }

    #[test]
    fn pred_eval() {
        assert!(Pred::Geq(5).eval(5));
        assert!(Pred::Geq(5).eval(6));
        assert!(!Pred::Geq(5).eval(4));
        assert!(Pred::Eq(5).eval(5));
        assert!(!Pred::Eq(5).eval(6));
    }

    #[test]
    fn program_max_sync_var() {
        let mut p = Program::new();
        assert!(p.max_sync_var().is_none());
        p.push(Instr::Compute(3));
        p.push(Instr::SyncSet { var: 4, val: 1 });
        p.push(Instr::SyncWait { var: 9, pred: Pred::Geq(1) });
        p.push(Instr::SyncRmw { var: 2 });
        assert_eq!(p.max_sync_var(), Some(9));
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }
}

//! The cycle-driven machine model.
//!
//! A [`Machine`] simulates `P` processors sharing a **data bus** (to the
//! memory modules) and, optionally, a **dedicated synchronization bus**
//! with a local image of every synchronization variable in each processor
//! (Section 6 of the paper). The model is deliberately simple — a single
//! arbitrated transaction at a time per bus — because that is exactly the
//! regime in which the paper's claims about traffic, hot-spots and
//! busy-waiting live.
//!
//! Determinism: processors are stepped in id order and bus queues are
//! FIFO, so a run is a pure function of the configuration and workload.
//! Fault injection ([`crate::faults::FaultPlan`]) preserves this: every
//! fault decision comes from a splitmix64 stream seeded by the plan, so
//! a faulted run is reproducible byte-for-byte from its configuration.
//!
//! Stepping: per-cycle stepping ([`StepMode::Reference`]) is the
//! executable specification, but the default execution engine is an
//! **event-driven fast-forward kernel** ([`StepMode::FastForward`]) that
//! jumps over *quiet* cycles — cycles in which the machine provably does
//! nothing but tick stat counters — directly to the next observable
//! event (transaction completion, bank completion, deferred image due
//! time, compute retirement, spin-backoff expiry, stall boundary), bulk
//! charging the skipped cycles to the same per-processor stat buckets
//! the reference stepper would have ticked. Every RNG draw and trace
//! write happens only at non-quiet cycles, so the two modes produce
//! **bit-for-bit identical** [`RunStats`], [`Trace`] and `sync_final`
//! (enforced by the equivalence tests).
//!
//! Liveness under faults: on top of the precise [`Machine::deadlocked`]
//! check, a **progress watchdog** tracks the last cycle on which the
//! machine did anything observable (retired an instruction, performed a
//! transaction, applied an image update, dispatched). If no progress is
//! made for a bound derived from the configured latencies and fault
//! magnitudes, the run fails with [`SimError::Deadlock`] describing the
//! livelock — so even runs the precise checker cannot classify (e.g.
//! processors spinning on images that faults keep stale) terminate
//! detectably rather than burning cycles until `max_cycles`.

use crate::config::{MachineConfig, MemoryModel, SyncTransport};
use crate::events::{EventRing, SimEventKind};
use crate::faults::FaultClass;
use crate::metrics::{RunMetrics, VarTraffic};
use crate::program::{Instr, Pred, Program, SyncVar};
use crate::recovery::WaitEdge;
use crate::rng::SplitMix64;
use crate::stats::{ProcBreakdown, RunStats};
use crate::trace::Trace;
use std::collections::VecDeque;

/// Gap NACKs allowed per wait episode before the waiter falls silent
/// and escalates to the watchdog repair rung.
const NACK_TRIES_MAX: u32 = 4;

/// How iteration programs are handed to processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchMode {
    /// Processor self-scheduling (the paper's assumed policy): free
    /// processors claim the lowest unclaimed program, paying
    /// `dispatch_latency` cycles per claim.
    Dynamic,
    /// A fixed assignment: `assignment[p]` is the ordered list of program
    /// indices processor `p` runs. Used for phase-structured workloads
    /// (barriers, wavefronts).
    Static(Vec<Vec<usize>>),
}

/// A set of programs plus the dispatch policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// The programs (for Doacross loops: one per iteration, in order).
    pub programs: Vec<Program>,
    /// Dispatch policy.
    pub dispatch: DispatchMode,
}

impl Workload {
    /// A dynamic (self-scheduled) workload.
    pub fn dynamic(programs: Vec<Program>) -> Self {
        Self { programs, dispatch: DispatchMode::Dynamic }
    }

    /// A statically assigned workload with **cyclic** (interleaved)
    /// iteration order: processor `p` runs programs `p, p+P, p+2P, …` —
    /// the classic Doacross assignment.
    pub fn static_cyclic(programs: Vec<Program>, procs: usize) -> Self {
        let assignment = (0..procs).map(|p| (p..programs.len()).step_by(procs).collect()).collect();
        Self::static_assigned(programs, assignment)
    }

    /// A statically assigned workload with **blocked** iteration order:
    /// processor `p` runs a contiguous chunk. For Doacross loops with
    /// backward dependences this serializes the processors — the
    /// scheduling-order effect of the paper's reference [23].
    pub fn static_blocked(programs: Vec<Program>, procs: usize) -> Self {
        let n = programs.len();
        let chunk = n.div_ceil(procs.max(1));
        let assignment = (0..procs)
            .map(|p| {
                let lo = (p * chunk).min(n);
                let hi = ((p + 1) * chunk).min(n);
                (lo..hi).collect()
            })
            .collect();
        Self::static_assigned(programs, assignment)
    }

    /// A statically assigned workload.
    ///
    /// # Panics
    ///
    /// Panics if an assignment references a missing program.
    pub fn static_assigned(programs: Vec<Program>, assignment: Vec<Vec<usize>>) -> Self {
        for q in &assignment {
            for &ix in q {
                assert!(ix < programs.len(), "assignment references program {ix}");
            }
        }
        Self { programs, dispatch: DispatchMode::Static(assignment) }
    }

    /// Number of synchronization variables required.
    pub fn n_sync_vars(&self) -> usize {
        self.programs
            .iter()
            .filter_map(Program::max_sync_var)
            .max()
            .map_or(0, |v| v + 1)
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No processor can ever make progress again.
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Processors stuck spinning.
        spinning: Vec<usize>,
        /// Human-readable description of each stuck processor.
        detail: Vec<String>,
    },
    /// `max_cycles` exceeded.
    Timeout {
        /// The configured cap.
        max_cycles: u64,
    },
    /// Invalid configuration.
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { cycle, spinning, detail } => {
                write!(
                    f,
                    "deadlock at cycle {cycle}: processors {spinning:?} spin forever ({})",
                    detail.join("; ")
                )
            }
            SimError::Timeout { max_cycles } => write!(f, "exceeded {max_cycles} cycles"),
            SimError::BadConfig(msg) => write!(f, "invalid machine config: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Aggregate statistics.
    pub stats: RunStats,
    /// The note trace.
    pub trace: Trace,
    /// Final values of all synchronization variables.
    pub sync_final: Vec<u64>,
    /// Derived metrics (always collected; see [`RunMetrics`]).
    pub metrics: RunMetrics,
    /// Structured events — empty unless recording was turned on with
    /// [`Machine::enable_events`].
    pub events: EventRing,
}

/// Runs a workload to completion on a machine.
///
/// # Errors
///
/// Returns [`SimError::BadConfig`] for invalid configurations,
/// [`SimError::Deadlock`] when synchronization can never be satisfied and
/// [`SimError::Timeout`] past `max_cycles`.
pub fn run(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    Machine::new(config, workload).run_to_completion()
}

/// Runs a workload with the per-cycle reference stepper (the executable
/// specification the fast-forward kernel must match bit for bit).
///
/// # Errors
///
/// See [`run`].
pub fn run_reference(config: &MachineConfig, workload: &Workload) -> Result<RunOutcome, SimError> {
    config.validate().map_err(SimError::BadConfig)?;
    let mut m = Machine::new(config, workload);
    m.set_mode(StepMode::Reference);
    m.run_to_completion()
}

/// How the run loop advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepMode {
    /// Event-driven: jump over provably-quiet cycles directly to the
    /// next observable event, bulk-charging the skipped cycles to the
    /// correct stat buckets. Bit-identical to [`StepMode::Reference`].
    #[default]
    FastForward,
    /// One cycle per step — the executable specification. Kept for the
    /// equivalence tests and as the trusted baseline for `datasync perf`.
    Reference,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpinPhase {
    WaitingResult,
    Backoff { until: u64 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProcState {
    Idle,
    Ready,
    Computing {
        remaining: u32,
    },
    BlockedData,
    BlockedSync,
    SpinLocal {
        var: SyncVar,
        pred: Pred,
    },
    /// Busy-wait through shared memory: `retry` is re-issued after each
    /// backoff until it succeeds.
    SpinMem {
        retry: DataReqKind,
        phase: SpinPhase,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataReqKind {
    Access,
    SyncWrite {
        var: SyncVar,
        val: u64,
    },
    SyncRmw {
        var: SyncVar,
    },
    Poll {
        var: SyncVar,
        pred: Pred,
    },
    /// Read for a conditional write: on completion, a write of `val` is
    /// issued only when the value read is `>= guard`.
    ReadCheck {
        var: SyncVar,
        guard: u64,
        val: u64,
    },
    /// One attempt of a Cedar-style keyed access: test-and-(access +
    /// increment) in a single memory transaction; retries on failure.
    KeyedAttempt {
        var: SyncVar,
        geq: u64,
    },
}

/// Interleaving address of a re-issued spin request.
fn retry_addr(kind: DataReqKind) -> u64 {
    match kind {
        DataReqKind::Poll { var, .. }
        | DataReqKind::SyncWrite { var, .. }
        | DataReqKind::SyncRmw { var }
        | DataReqKind::ReadCheck { var, .. }
        | DataReqKind::KeyedAttempt { var, .. } => var as u64,
        DataReqKind::Access => 0,
    }
}

#[derive(Debug, Clone, Copy)]
struct DataReq {
    proc: usize,
    kind: DataReqKind,
    /// Address used for memory-bank interleaving (sync vars use their
    /// index).
    addr: u64,
}

/// One interleaved memory module (only used by [`MemoryModel::Banked`]).
#[derive(Debug, Default)]
struct Bank {
    active: Option<(DataReq, u64)>,
    queue: VecDeque<DataReq>,
}

#[derive(Debug, Clone, Copy)]
enum SyncReq {
    Post { proc: usize, var: SyncVar, val: u64 },
    Rmw { proc: usize, var: SyncVar },
}

/// A sync-bus message with its fault-injection bookkeeping.
#[derive(Debug, Clone, Copy)]
struct QueuedSync {
    req: SyncReq,
    /// Issue-order tag. Broadcast hardware stamps messages so a stale
    /// redelivery or reordered grant of an *older* write can be
    /// recognized and discarded instead of clobbering a newer value
    /// (sync variables are monotonic counters in every scheme; a
    /// regression would wedge every waiter past the lost value).
    seq: u64,
    /// Times this message was dropped and re-queued (capped by
    /// `FaultPlan::max_redeliveries`, so delivery is eventual).
    redeliveries: u32,
    /// Cycle of the first grant — or, for a message overtaken by a
    /// reordered grant, the cycle it *would* have been granted — used to
    /// measure recovery latency.
    first_grant: Option<u64>,
    /// Whether any fault touched this message (only faulted messages
    /// contribute to recovery-latency stats).
    faulted: bool,
    /// A NACK-triggered re-broadcast. A refresh carries no payload of
    /// its own: it re-reads the *current* global value at delivery time
    /// (a value captured at NACK time could be overtaken by an RMW
    /// granted in between and would regress the variable), and it is
    /// never a coalescing target (folding a real post into a refresh
    /// would discard the post's value).
    refresh: bool,
}

impl QueuedSync {
    fn new(req: SyncReq, seq: u64) -> Self {
        Self { req, seq, redeliveries: 0, first_grant: None, faulted: false, refresh: false }
    }
}

#[derive(Debug)]
struct Proc {
    state: ProcState,
    current: Option<usize>,
    ip: usize,
    queue: VecDeque<usize>,
    stats: ProcBreakdown,
}

/// The machine state (see [`run`] for the one-shot entry point).
///
/// Borrows its configuration and workload: sweeps running thousands of
/// configurations share one `Workload` without re-allocating every
/// `Program` vector per run.
#[derive(Debug)]
pub struct Machine<'a> {
    config: &'a MachineConfig,
    workload: &'a Workload,
    mode: StepMode,
    cycle: u64,
    procs: Vec<Proc>,
    sync_global: Vec<u64>,
    sync_images: Vec<Vec<u64>>,
    data_queue: VecDeque<DataReq>,
    data_active: Option<(DataReq, u64)>,
    banks: Vec<Bank>,
    sync_queue: VecDeque<QueuedSync>,
    sync_active: Option<(QueuedSync, u64)>,
    next_dynamic: usize,
    stats: RunStats,
    trace: Trace,
    /// Fault-decision stream (seeded by `config.faults.seed`; untouched
    /// on fault-free runs, so they remain bit-identical to a machine
    /// without fault support).
    rng: SplitMix64,
    /// Deferred local-image updates per processor: `(apply_cycle, var,
    /// val)` in FIFO order, so one image always sees writes in the order
    /// they were performed globally, just late.
    image_defer: Vec<VecDeque<(u64, SyncVar, u64)>>,
    /// Earliest due cycle across all `image_defer` queues (`u64::MAX`
    /// when every queue is empty), so quiescent processors cost nothing
    /// in [`Machine::apply_deferred_images`].
    image_due_min: u64,
    /// Next sync-message issue tag (see [`QueuedSync::seq`]).
    sync_seq: u64,
    /// Per-variable tag of the last applied sync write; an arriving
    /// message with an older tag is a stale redelivery and is discarded.
    applied_seq: Vec<u64>,
    /// Per-processor injected-stall end cycle (0 = not stalled).
    stall_until: Vec<u64>,
    /// Per-processor cycle of the next stall onset (`u64::MAX` when
    /// stalls are disabled).
    next_stall: Vec<u64>,
    /// Last cycle on which the machine observably progressed.
    last_progress: u64,
    /// Progress-watchdog bound (cycles of silence tolerated).
    watchdog_limit: u64,
    /// Always-on derived metrics (cheap counters, no allocation per
    /// event). Updated only at stepped cycles — part of the equivalence
    /// contract.
    metrics: RunMetrics,
    /// Structured event ring; disabled (capacity 0) unless
    /// [`Machine::enable_events`] was called.
    events: EventRing,
    /// Per-processor open wait episode: `(begin_cycle, var,
    /// through_memory)` from spin entry until satisfaction.
    wait_since: Vec<Option<(u64, SyncVar, bool)>>,
    /// Whether the self-healing ladder (gap NACKs, retransmission,
    /// watchdog repair) is armed. Derived from
    /// [`MachineConfig::recovery`]; with it off the machine behaves
    /// bit-identically to one without recovery support.
    recovery_on: bool,
    /// Cycles a local-image waiter tolerates before suspecting a
    /// sequence gap (derived from the configured latencies and fault
    /// magnitudes; always well below `watchdog_limit`).
    nack_delay: u64,
    /// Per-processor cycle of the next gap check (`u64::MAX` when the
    /// processor is not in a local spin or has spent its NACK budget).
    nack_due: Vec<u64>,
    /// Per-processor NACKs issued in the current wait episode.
    nack_tries: Vec<u32>,
    /// Watchdog repair rungs taken this run (event numbering).
    repairs_done: u32,
}

impl<'a> Machine<'a> {
    /// Builds a machine with all processors idle.
    pub fn new(config: &'a MachineConfig, workload: &'a Workload) -> Self {
        let p = config.processors;
        let n_vars = workload.n_sync_vars();
        let queues: Vec<VecDeque<usize>> = match &workload.dispatch {
            DispatchMode::Dynamic => vec![VecDeque::new(); p],
            DispatchMode::Static(assign) => {
                let mut qs = vec![VecDeque::new(); p];
                for (i, q) in assign.iter().enumerate().take(p) {
                    qs[i] = q.iter().copied().collect();
                }
                qs
            }
        };
        let procs = queues
            .into_iter()
            .map(|queue| Proc {
                state: ProcState::Idle,
                current: None,
                ip: 0,
                queue,
                stats: ProcBreakdown::default(),
            })
            .collect();
        let n_banks = match config.memory_model {
            MemoryModel::BusHeld => 0,
            MemoryModel::Banked { banks } => banks,
        };
        let f = config.faults;
        let mut rng = SplitMix64::new(f.seed);
        let next_stall: Vec<u64> = (0..p)
            .map(|_| {
                if f.stall_mean_interval > 0 {
                    1 + rng.below(2 * u64::from(f.stall_mean_interval))
                } else {
                    u64::MAX
                }
            })
            .collect();
        // Longest legitimate silent stretch: a held (possibly delayed /
        // jittered) transaction, a spin backoff, a stall or a stale
        // window. Generously padded — tripping it means livelock.
        let watchdog_limit = 256
            + 8 * u64::from(
                config.spin_retry
                    + config.dispatch_latency
                    + config.data_bus_latency
                    + config.memory_latency
                    + config.sync_bus_latency
                    + f.broadcast_delay_max
                    + f.data_jitter_max
                    + f.stall_max
                    + f.stale_window_max,
            );
        // A waiter suspects a gap only after the longest legitimate
        // delivery path (bus grant + injected delay + stale window) has
        // comfortably elapsed; by construction this is well under the
        // watchdog limit, so all NACK tries fit before escalation.
        let nack_delay = 32
            + 4 * u64::from(config.sync_bus_latency + f.broadcast_delay_max + f.stale_window_max);
        Self {
            sync_images: vec![vec![0; n_vars]; p],
            sync_global: vec![0; n_vars],
            procs,
            cycle: 0,
            data_queue: VecDeque::new(),
            data_active: None,
            banks: (0..n_banks).map(|_| Bank::default()).collect(),
            sync_queue: VecDeque::new(),
            sync_active: None,
            next_dynamic: 0,
            stats: RunStats { procs: vec![ProcBreakdown::default(); p], ..Default::default() },
            trace: Trace::new(),
            metrics: RunMetrics::new(p, n_vars),
            events: EventRing::disabled(),
            wait_since: vec![None; p],
            rng,
            sync_seq: 0,
            applied_seq: vec![0; n_vars],
            image_defer: vec![VecDeque::new(); p],
            image_due_min: u64::MAX,
            stall_until: vec![0; p],
            next_stall,
            last_progress: 0,
            watchdog_limit,
            recovery_on: config.recovery.repairs(),
            nack_delay,
            nack_due: vec![u64::MAX; p],
            nack_tries: vec![0; p],
            repairs_done: 0,
            mode: StepMode::FastForward,
            config,
            workload,
        }
    }

    /// Selects the stepping strategy (fast-forward by default).
    pub fn set_mode(&mut self, mode: StepMode) {
        self.mode = mode;
    }

    /// Turns on structured event recording, keeping the most recent
    /// `capacity` events (0 leaves it disabled). Recording changes
    /// nothing observable: stats, trace, metrics and final sync values
    /// are bit-identical with it on or off.
    ///
    /// # Panics
    ///
    /// Panics if the machine already ran.
    pub fn enable_events(&mut self, capacity: usize) {
        assert_eq!(self.cycle, 0, "enable_events must be called before running");
        self.events = EventRing::with_capacity(capacity);
    }

    /// The progress watchdog's silence bound (cycles without observable
    /// progress tolerated before the run fails as a livelock).
    pub fn watchdog_limit(&self) -> u64 {
        self.watchdog_limit
    }

    /// Marks the current cycle as having made observable progress.
    fn note_progress(&mut self) {
        self.last_progress = self.cycle;
    }

    /// Overrides the initial value of a synchronization variable
    /// (before the run starts).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or the machine already ran.
    pub fn preset_sync(&mut self, var: SyncVar, val: u64) {
        assert_eq!(self.cycle, 0, "preset_sync must be called before running");
        if var >= self.sync_global.len() {
            self.sync_global.resize(var + 1, 0);
            for img in &mut self.sync_images {
                img.resize(var + 1, 0);
            }
            self.applied_seq.resize(var + 1, 0);
            self.metrics.sync_vars.resize(var + 1, VarTraffic::default());
        }
        self.sync_global[var] = val;
        for img in &mut self.sync_images {
            img[var] = val;
        }
    }

    /// Runs to completion.
    ///
    /// # Errors
    ///
    /// See [`run`].
    pub fn run_to_completion(mut self) -> Result<RunOutcome, SimError> {
        self.events
            .record(self.cycle, SimEventKind::WatchdogArm { limit: self.watchdog_limit });
        loop {
            if self.finished() {
                let mut stats = std::mem::take(&mut self.stats);
                stats.makespan = self.cycle;
                for (i, p) in self.procs.iter().enumerate() {
                    stats.procs[i] = p.stats;
                }
                return Ok(RunOutcome {
                    stats,
                    trace: std::mem::take(&mut self.trace),
                    sync_final: std::mem::take(&mut self.sync_global),
                    metrics: std::mem::take(&mut self.metrics),
                    events: std::mem::take(&mut self.events),
                });
            }
            if self.cycle >= self.config.max_cycles {
                return Err(SimError::Timeout { max_cycles: self.config.max_cycles });
            }
            if let Some(dead) = self.deadlocked() {
                let mut detail = self.stuck_detail(&dead);
                if self.recovery_on {
                    // Unhealable by construction (deadlocked() treats
                    // globally-satisfied spins as healable): attach the
                    // wait-for proof so the caller can justify degrading.
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                return Err(SimError::Deadlock { cycle: self.cycle, spinning: dead, detail });
            }
            if self.cycle.saturating_sub(self.last_progress) > self.watchdog_limit {
                // The escalation point: with recovery armed, try the
                // repair rung first — force-sync healable images from the
                // global state and keep running instead of failing.
                if self.recovery_on && self.watchdog_repair() {
                    continue;
                }
                // Livelock: cycles are being burned (spins, redeliveries,
                // stalls) but nothing observable has happened for longer
                // than any legitimate quiet period. Upgrade to a detected
                // deadlock instead of burning until max_cycles.
                self.events.record(
                    self.cycle,
                    SimEventKind::WatchdogFire { silent_for: self.cycle - self.last_progress },
                );
                let spinning: Vec<usize> = self
                    .procs
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| {
                        matches!(p.state, ProcState::SpinLocal { .. } | ProcState::SpinMem { .. })
                    })
                    .map(|(i, _)| i)
                    .collect();
                let mut detail = vec![format!(
                    "livelock: no forward progress for {} cycles (watchdog limit)",
                    self.cycle - self.last_progress
                )];
                if self.recovery_on {
                    detail.extend(self.wait_diagnosis().iter().map(ToString::to_string));
                }
                detail.extend(self.stuck_detail(&spinning));
                return Err(SimError::Deadlock { cycle: self.cycle, spinning, detail });
            }
            match self.mode {
                StepMode::Reference => self.step(),
                StepMode::FastForward => self.fast_step(),
            }
        }
    }

    /// Human-readable description of each stuck processor.
    fn stuck_detail(&self, stuck: &[usize]) -> Vec<String> {
        stuck
            .iter()
            .map(|&i| {
                let p = &self.procs[i];
                let at = match p.state {
                    ProcState::SpinLocal { var, pred } => {
                        format!(
                            "waiting {var} {pred} (image {}, global {})",
                            self.sync_images[i][var], self.sync_global[var]
                        )
                    }
                    ProcState::SpinMem { retry, .. } => format!("retrying {retry:?}"),
                    _ => "?".to_string(),
                };
                format!("proc {i}: program {:?} ip {} {at}", p.current, p.ip)
            })
            .collect()
    }

    fn finished(&self) -> bool {
        let no_pending = self.data_active.is_none()
            && self.sync_active.is_none()
            && self.data_queue.is_empty()
            && self.sync_queue.is_empty()
            && self.banks.iter().all(|b| b.active.is_none() && b.queue.is_empty());
        let dynamic_left = matches!(self.workload.dispatch, DispatchMode::Dynamic)
            && self.next_dynamic < self.workload.programs.len();
        no_pending
            && !dynamic_left
            && self.procs.iter().all(|p| {
                matches!(p.state, ProcState::Idle) && p.current.is_none() && p.queue.is_empty()
            })
    }

    /// If the machine can provably never progress, the spinning culprits.
    fn deadlocked(&self) -> Option<Vec<usize>> {
        // O(1) early-outs first, so the O(P + banks) scans below only run
        // at genuinely quiet points: a held transaction, a queued
        // broadcast or a deferred image update still in flight is pending
        // activity, not deadlock.
        if self.data_active.is_some()
            || self.sync_active.is_some()
            || !self.sync_queue.is_empty()
            || self.image_due_min != u64::MAX
        {
            return None;
        }
        let any_active = self.banks.iter().any(|b| b.active.is_some() || !b.queue.is_empty())
            || self.data_queue.iter().any(|r| !matches!(r.kind, DataReqKind::Poll { .. }));
        if any_active {
            return None;
        }
        let dynamic_left = matches!(self.workload.dispatch, DispatchMode::Dynamic)
            && self.next_dynamic < self.workload.programs.len();
        let mut spinning = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            match p.state {
                // A spin whose condition already holds will succeed on its
                // next check — that is progress, not deadlock.
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync_images[i][var]) {
                        return None;
                    }
                    // With recovery armed, a spin satisfied *globally* is
                    // a healable sequence gap, not a deadlock: the NACK /
                    // watchdog-repair ladder will refresh the image.
                    if self.recovery_on && pred.eval(self.sync_global[var]) {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::SpinMem { retry, .. } => {
                    let satisfiable = match retry {
                        DataReqKind::Poll { var, pred } => pred.eval(self.sync_global[var]),
                        DataReqKind::KeyedAttempt { var, geq } => self.sync_global[var] >= geq,
                        _ => true,
                    };
                    if satisfiable {
                        return None;
                    }
                    spinning.push(i);
                }
                ProcState::Idle if p.queue.is_empty() && !dynamic_left => {}
                _ => return None,
            }
        }
        // Pending polls only re-read values no one will write again.
        if spinning.is_empty() {
            None
        } else {
            Some(spinning)
        }
    }

    fn step(&mut self) {
        self.apply_deferred_images();
        self.complete_transactions();
        self.grant_transactions();
        for p in 0..self.procs.len() {
            self.step_proc(p);
        }
        self.cycle += 1;
    }

    /// If the current cycle is *quiet* — [`Machine::step`] would do
    /// nothing but tick one stat counter per processor — returns the
    /// earliest future cycle at which anything observable can happen
    /// (`u64::MAX` if nothing is pending at all). Returns `None` for a
    /// cycle that must be stepped normally.
    ///
    /// Every RNG draw (grants, sync completions, image deferral, stall
    /// onsets) and every trace write happens only at non-quiet cycles,
    /// so skipping quiet cycles cannot desynchronize the fault stream or
    /// the trace from per-cycle stepping.
    fn quiet_horizon(&self) -> Option<u64> {
        let c = self.cycle;
        let mut next = u64::MAX;
        // Deferred image updates wake local spinners when due.
        if self.image_due_min <= c {
            return None;
        }
        next = next.min(self.image_due_min);
        // Data bus: a completion is an event; an idle bus with a queued
        // request grants this cycle.
        if let Some((_, end)) = self.data_active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.data_queue.is_empty() {
            return None;
        }
        // Memory banks, same shape.
        for b in &self.banks {
            if let Some((_, end)) = b.active {
                if end <= c {
                    return None;
                }
                next = next.min(end);
            } else if !b.queue.is_empty() {
                return None;
            }
        }
        // Sync bus.
        if let Some((_, end)) = self.sync_active {
            if end <= c {
                return None;
            }
            next = next.min(end);
        } else if !self.sync_queue.is_empty() {
            return None;
        }
        let stalls_on = self.config.faults.stall_mean_interval > 0;
        let dynamic_left = matches!(self.workload.dispatch, DispatchMode::Dynamic)
            && self.next_dynamic < self.workload.programs.len();
        for (p, proc) in self.procs.iter().enumerate() {
            if stalls_on {
                if c >= self.stall_until[p] && c >= self.next_stall[p] {
                    return None; // stall onset draws RNG this cycle
                }
                if c < self.stall_until[p] {
                    // Frozen until the stall ends — except that a stalled
                    // Ready processor drains trace notes every cycle.
                    if matches!(proc.state, ProcState::Ready) {
                        return None;
                    }
                    next = next.min(self.stall_until[p]);
                    continue;
                }
                next = next.min(self.next_stall[p]);
            }
            match proc.state {
                ProcState::Idle => {
                    let can_dispatch = match self.workload.dispatch {
                        DispatchMode::Dynamic => dynamic_left,
                        DispatchMode::Static(_) => !proc.queue.is_empty(),
                    };
                    if can_dispatch {
                        return None;
                    }
                }
                ProcState::Ready => return None,
                ProcState::Computing { remaining } => next = next.min(c + u64::from(remaining)),
                ProcState::BlockedData | ProcState::BlockedSync => {}
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync_images[p][var]) {
                        return None; // the spin succeeds this cycle
                    }
                    if self.nack_due[p] <= c {
                        return None; // the gap check runs this cycle
                    }
                    next = next.min(self.nack_due[p]);
                }
                ProcState::SpinMem { phase, .. } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if c >= until {
                            return None; // re-issues the poll this cycle
                        }
                        next = next.min(until);
                    }
                    // WaitingResult: the pending transaction bounds `next`.
                }
            }
        }
        Some(next)
    }

    /// One fast-forward advance: step normally through event cycles, and
    /// jump a whole quiet span at once, bulk-charging the skipped cycles
    /// to exactly the stat buckets the reference stepper would have
    /// ticked one by one.
    fn fast_step(&mut self) {
        let Some(next_event) = self.quiet_horizon() else {
            self.step();
            return;
        };
        // Land exactly on `max_cycles` so the timeout check fires with
        // the same cycle as per-cycle stepping.
        let mut target = next_event.min(self.config.max_cycles);
        // A computing processor notes progress every cycle; only when
        // none is running can the watchdog's silence bound bind.
        let progressing = (0..self.procs.len()).any(|p| {
            self.cycle >= self.stall_until[p]
                && matches!(self.procs[p].state, ProcState::Computing { .. })
        });
        if !progressing {
            target = target.min(self.last_progress.saturating_add(self.watchdog_limit + 1));
        }
        debug_assert!(target > self.cycle, "quiet horizon must move time forward");
        let delta = target - self.cycle;
        for p in 0..self.procs.len() {
            if self.cycle < self.stall_until[p] {
                self.procs[p].stats.stalled += delta;
                continue;
            }
            match self.procs[p].state {
                ProcState::Idle => self.procs[p].stats.idle += delta,
                ProcState::Computing { remaining } => {
                    self.procs[p].stats.busy += delta;
                    // delta <= remaining by the horizon bound.
                    let left = remaining - delta as u32;
                    self.procs[p].state = if left == 0 {
                        ProcState::Ready
                    } else {
                        ProcState::Computing { remaining: left }
                    };
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs[p].stats.blocked += delta;
                }
                ProcState::SpinLocal { .. } | ProcState::SpinMem { .. } => {
                    self.procs[p].stats.spin += delta;
                }
                ProcState::Ready => unreachable!("a ready processor is never quiet"),
            }
        }
        if progressing {
            self.last_progress = target - 1;
        }
        self.cycle = target;
    }

    /// Applies deferred (stale-window) local-image updates that are due.
    /// `image_due_min` makes this O(1) whenever nothing is due (due times
    /// are non-decreasing within each queue, so fronts are the minima).
    fn apply_deferred_images(&mut self) {
        if self.image_due_min > self.cycle {
            return;
        }
        let mut next_due = u64::MAX;
        for p in 0..self.image_defer.len() {
            while let Some(&(when, var, val)) = self.image_defer[p].front() {
                if when > self.cycle {
                    break;
                }
                self.image_defer[p].pop_front();
                self.sync_images[p][var] = val;
                self.note_progress();
            }
            if let Some(&(when, _, _)) = self.image_defer[p].front() {
                next_due = next_due.min(when);
            }
        }
        self.image_due_min = next_due;
    }

    fn complete_transactions(&mut self) {
        if let Some((req, end)) = self.data_active {
            if end == self.cycle {
                self.data_active = None;
                match self.config.memory_model {
                    MemoryModel::BusHeld => self.apply_data_effect(req),
                    MemoryModel::Banked { banks } => {
                        // Bus phase done: hand the request to its bank.
                        let bank = (req.addr % banks as u64) as usize;
                        let depth = self.banks[bank].queue.len()
                            + usize::from(self.banks[bank].active.is_some());
                        if depth > 0 {
                            self.metrics.bank_conflicts += 1;
                            self.events
                                .record(self.cycle, SimEventKind::BankConflict { bank, depth });
                        }
                        self.banks[bank].queue.push_back(req);
                    }
                }
            }
        }
        for b in 0..self.banks.len() {
            if let Some((req, end)) = self.banks[b].active {
                if end == self.cycle {
                    self.banks[b].active = None;
                    self.apply_data_effect(req);
                }
            }
            if self.banks[b].active.is_none() {
                if let Some(req) = self.banks[b].queue.pop_front() {
                    let dur = u64::from(self.config.memory_latency).max(1);
                    self.metrics.bank_busy += dur;
                    self.events.record(
                        self.cycle,
                        SimEventKind::BankService { bank: b, proc: req.proc, dur },
                    );
                    self.banks[b].active = Some((req, self.cycle + dur));
                }
            }
        }
        if let Some((entry, end)) = self.sync_active {
            if end == self.cycle {
                self.sync_active = None;
                let f = self.config.faults;
                if f.broadcast_drop_pct > 0
                    && entry.redeliveries < f.max_redeliveries
                    && self.rng.chance_pct(f.broadcast_drop_pct)
                {
                    // Lost broadcast: re-queue for (bounded) redelivery.
                    self.stats.faults.dropped_broadcasts += 1;
                    self.record_fault(None, FaultClass::BroadcastDrop, 0);
                    self.sync_queue.push_back(QueuedSync {
                        redeliveries: entry.redeliveries + 1,
                        faulted: true,
                        ..entry
                    });
                } else {
                    if entry.faulted {
                        if let Some(first) = entry.first_grant {
                            let fault_free = first + u64::from(self.config.sync_bus_latency);
                            let rec = self.cycle.saturating_sub(fault_free);
                            self.stats.faults.recovery_cycles += rec;
                            self.stats.faults.recovery_max =
                                self.stats.faults.recovery_max.max(rec);
                        }
                    }
                    match entry.req {
                        SyncReq::Post { var, val, .. } => {
                            let stale = entry.seq <= self.applied_seq[var];
                            // A refresh re-broadcasts the *current* global
                            // value: a payload captured at NACK time could
                            // have been overtaken by an RMW granted since,
                            // and re-applying it would regress the counter.
                            let val = if entry.refresh { self.sync_global[var] } else { val };
                            self.events
                                .record(self.cycle, SimEventKind::SyncDeliver { var, val, stale });
                            if !stale {
                                self.applied_seq[var] = entry.seq;
                                self.write_sync(var, val);
                            } else {
                                // A drop or reorder let a newer write to
                                // this variable perform first: this late
                                // delivery is stale and must be discarded,
                                // not applied (sync variables are
                                // monotonic counters; regressing one would
                                // wedge every waiter past the lost value).
                                self.stats.faults.stale_deliveries_discarded += 1;
                            }
                        }
                        SyncReq::Rmw { proc, var } => {
                            self.applied_seq[var] = self.applied_seq[var].max(entry.seq);
                            let v = self.sync_global[var] + 1;
                            self.events.record(
                                self.cycle,
                                SimEventKind::SyncDeliver { var, val: v, stale: false },
                            );
                            self.write_sync(var, v);
                            self.unblock(proc);
                        }
                    }
                    self.note_progress();
                }
            }
        }
    }

    /// Applies the globally-performed effect of a data-path request.
    fn apply_data_effect(&mut self, req: DataReq) {
        self.note_progress();
        match req.kind {
            DataReqKind::Access => self.unblock(req.proc),
            DataReqKind::SyncWrite { var, val } => {
                self.write_sync(var, val);
                self.unblock(req.proc);
            }
            DataReqKind::SyncRmw { var } => {
                let v = self.sync_global[var] + 1;
                self.write_sync(var, v);
                self.unblock(req.proc);
            }
            DataReqKind::Poll { var, pred } => {
                if pred.eval(self.sync_global[var]) {
                    self.unblock(req.proc);
                } else {
                    self.procs[req.proc].state = ProcState::SpinMem {
                        retry: req.kind,
                        phase: SpinPhase::Backoff {
                            until: self.cycle + u64::from(self.config.spin_retry),
                        },
                    };
                }
            }
            DataReqKind::ReadCheck { var, guard, val } => {
                if self.sync_global[var] >= guard {
                    self.metrics.sync_vars[var].posts += 1;
                    self.data_queue.push_back(DataReq {
                        proc: req.proc,
                        kind: DataReqKind::SyncWrite { var, val },
                        addr: req.addr,
                    });
                } else {
                    self.unblock(req.proc);
                }
            }
            DataReqKind::KeyedAttempt { var, geq } => {
                if self.sync_global[var] >= geq {
                    let v = self.sync_global[var] + 1;
                    self.write_sync(var, v);
                    self.stats.rmw_ops += 1;
                    self.metrics.sync_vars[var].rmws += 1;
                    self.unblock(req.proc);
                } else {
                    self.procs[req.proc].state = ProcState::SpinMem {
                        retry: req.kind,
                        phase: SpinPhase::Backoff {
                            until: self.cycle + u64::from(self.config.spin_retry),
                        },
                    };
                }
            }
        }
    }

    fn write_sync(&mut self, var: SyncVar, val: u64) {
        self.sync_global[var] = val;
        let f = self.config.faults;
        for p in 0..self.sync_images.len() {
            if f.broadcast_loss_pct > 0 && self.rng.chance_pct(f.broadcast_loss_pct) {
                // The write performed globally but this processor's image
                // tap missed it *permanently* — the one unbounded fault.
                // Only the recovery ladder (NACK refresh or watchdog
                // repair) can re-deliver the value to this image.
                self.stats.faults.lost_image_updates += 1;
                self.record_fault(Some(p), FaultClass::BroadcastLoss, 0);
                continue;
            }
            let pending = self.image_defer[p].back().map(|&(when, _, _)| when);
            if f.stale_image_pct > 0 && self.rng.chance_pct(f.stale_image_pct) {
                // This image lags the global write by a bounded window.
                let window = u64::from(self.rng.range_u32(1, f.stale_window_max));
                let when = (self.cycle + window).max(pending.unwrap_or(0));
                self.stats.faults.stale_image_updates += 1;
                self.record_fault(Some(p), FaultClass::StaleImage, window);
                self.image_defer[p].push_back((when, var, val));
                self.image_due_min = self.image_due_min.min(when);
            } else if let Some(pending) = pending {
                // A fresh update must not overtake an older deferred one:
                // queue behind it so each image sees writes in global
                // order, merely late.
                self.image_defer[p].push_back((pending, var, val));
                self.image_due_min = self.image_due_min.min(pending);
            } else {
                self.sync_images[p][var] = val;
            }
        }
    }

    fn unblock(&mut self, proc: usize) {
        self.close_wait(proc);
        self.procs[proc].state = ProcState::Ready;
    }

    /// Closes processor `p`'s open wait episode, if any, recording its
    /// duration in the per-processor histogram and the event ring.
    /// Never inlined: this runs once per episode, not per cycle, and
    /// inlining it bloats `step_proc`'s per-cycle spin loop.
    #[inline(never)]
    fn close_wait(&mut self, p: usize) {
        if let Some((start, var, _)) = self.wait_since[p].take() {
            let waited = self.cycle - start;
            self.metrics.wait[p].record(waited);
            self.events.record(self.cycle, SimEventKind::WaitEnd { proc: p, var, waited });
            if self.nack_tries[p] > 0 {
                // The episode needed recovery intervention: its full
                // duration is the heal latency.
                self.stats.recovery.healed_waits += 1;
                self.stats.recovery.heal_latency_total += waited;
                self.stats.recovery.heal_latency_max =
                    self.stats.recovery.heal_latency_max.max(waited);
            }
        }
        self.nack_due[p] = u64::MAX;
        self.nack_tries[p] = 0;
    }

    /// Opens a wait episode for processor `p` on `var`.
    #[inline(never)]
    fn begin_wait(&mut self, p: usize, var: SyncVar, through_memory: bool) {
        self.wait_since[p] = Some((self.cycle, var, through_memory));
        if self.recovery_on && !through_memory {
            // Local-image spins arm the gap detector; memory polls read
            // the global variable directly and cannot gap.
            self.nack_due[p] = self.cycle + self.nack_delay;
            self.nack_tries[p] = 0;
        }
        self.events
            .record(self.cycle, SimEventKind::WaitBegin { proc: p, var, through_memory });
    }

    /// Records an injected fault in both the note trace and the event
    /// ring.
    #[cold]
    #[inline(never)]
    fn record_fault(&mut self, proc: Option<usize>, class: FaultClass, magnitude: u64) {
        self.trace.record_fault(self.cycle, proc, class, magnitude);
        self.events.record(self.cycle, SimEventKind::Fault { class, proc, magnitude });
    }

    /// Rung 1–2 of the recovery ladder: a local-image waiter whose
    /// deadline passed checks for a sequence gap (its predicate holds on
    /// the global variable but not on its image) and, if proven, NACKs —
    /// queueing a refresh broadcast of the global value. After
    /// [`NACK_TRIES_MAX`] NACKs the waiter falls silent so a persistently
    /// lossy tap escalates to the watchdog repair rung instead of
    /// re-NACKing forever (each refresh grant is bus progress, so
    /// unbounded NACKing would disarm the watchdog while healing
    /// nothing). Draws no RNG; runs only at stepped cycles.
    #[inline(never)]
    fn check_gap(&mut self, p: usize, var: SyncVar, pred: Pred) {
        if !pred.eval(self.sync_global[var]) {
            // No gap: the awaited value has not performed globally yet.
            // Keep watching — the producer may still be on its way.
            self.nack_due[p] = self.cycle + self.nack_delay;
            return;
        }
        self.nack_tries[p] += 1;
        let tries = self.nack_tries[p];
        self.stats.recovery.gap_nacks += 1;
        self.events.record(self.cycle, SimEventKind::GapNack { proc: p, var, tries });
        let val = self.sync_global[var];
        let seq = self.next_sync_seq();
        self.stats.recovery.retransmits += 1;
        self.events.record(self.cycle, SimEventKind::Retransmit { var, val });
        // Pushed directly (never coalesced into) and subject to the same
        // faults as any broadcast — a retransmission can itself be lost.
        let mut msg = QueuedSync::new(SyncReq::Post { proc: p, var, val }, seq);
        msg.refresh = true;
        self.sync_queue.push_back(msg);
        self.nack_due[p] = if tries >= NACK_TRIES_MAX {
            u64::MAX // budget spent: silence lets the watchdog escalate
        } else {
            self.cycle + self.nack_delay
        };
    }

    /// The wait-for state of every local-image spinner, with the
    /// controller's verdict on whether re-broadcasting the global state
    /// would wake it. This is both the repair-rung trigger and the proof
    /// attached to unrecoverable failures.
    fn wait_diagnosis(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        for (i, p) in self.procs.iter().enumerate() {
            if let ProcState::SpinLocal { var, pred } = p.state {
                let image = self.sync_images[i][var];
                let global = self.sync_global[var];
                edges.push(WaitEdge {
                    proc: i,
                    var,
                    need: pred.to_string(),
                    image,
                    global,
                    healable: pred.eval(global) && !pred.eval(image),
                });
            }
        }
        edges
    }

    /// Rung 3: the watchdog's repair action. If any spinner is healable
    /// (satisfied globally, gapped locally), flush every deferred image
    /// update in order and force-sync all images from the global state —
    /// the controller re-broadcasting its state wholesale. Sound because
    /// sync variables are monotone counters and the global variable is
    /// the authoritative newest value. Returns `false` when nothing is
    /// healable, letting the caller fire the watchdog for real.
    #[cold]
    #[inline(never)]
    fn watchdog_repair(&mut self) -> bool {
        if !self.wait_diagnosis().iter().any(|e| e.healable) {
            return false;
        }
        let mut healed = 0u64;
        for p in 0..self.sync_images.len() {
            // Apply what was already in flight in its original order…
            while let Some((_, var, val)) = self.image_defer[p].pop_front() {
                self.sync_images[p][var] = val;
            }
            // …then bring every cell up to the authoritative value.
            for v in 0..self.sync_global.len() {
                if self.sync_images[p][v] != self.sync_global[v] {
                    self.sync_images[p][v] = self.sync_global[v];
                    healed += 1;
                }
            }
        }
        self.image_due_min = u64::MAX;
        self.repairs_done += 1;
        self.stats.recovery.watchdog_repairs += 1;
        self.stats.recovery.images_repaired += healed;
        self.events
            .record(self.cycle, SimEventKind::WatchdogRepair { rung: self.repairs_done, healed });
        self.note_progress();
        true
    }

    fn grant_transactions(&mut self) {
        let f = self.config.faults;
        if self.data_active.is_none() {
            if let Some(req) = self.data_queue.pop_front() {
                self.stats.data_transactions += 1;
                match req.kind {
                    DataReqKind::Poll { .. } => self.stats.spin_polls += 1,
                    DataReqKind::SyncRmw { .. } => self.stats.rmw_ops += 1,
                    _ => {}
                }
                let mut dur = match self.config.memory_model {
                    MemoryModel::BusHeld => {
                        u64::from(self.config.data_bus_latency + self.config.memory_latency)
                    }
                    MemoryModel::Banked { .. } => u64::from(self.config.data_bus_latency),
                };
                if f.data_jitter_pct > 0 && self.rng.chance_pct(f.data_jitter_pct) {
                    let extra = u64::from(self.rng.range_u32(1, f.data_jitter_max));
                    dur += extra;
                    self.stats.faults.jittered_transactions += 1;
                    self.stats.faults.jitter_cycles += extra;
                    self.record_fault(Some(req.proc), FaultClass::DataJitter, extra);
                }
                let poll =
                    matches!(req.kind, DataReqKind::Poll { .. } | DataReqKind::KeyedAttempt { .. });
                if let DataReqKind::Poll { var, .. } | DataReqKind::KeyedAttempt { var, .. } =
                    req.kind
                {
                    self.metrics.sync_vars[var].polls += 1;
                }
                self.metrics.data_bus_busy += dur;
                self.events
                    .record(self.cycle, SimEventKind::DataGrant { proc: req.proc, dur, poll });
                self.data_active = Some((req, self.cycle + dur));
                self.note_progress();
            }
        }
        if self.sync_active.is_none() {
            let picked = if f.broadcast_reorder_pct > 0
                && self.sync_queue.len() >= 2
                && self.rng.chance_pct(f.broadcast_reorder_pct)
            {
                // Faulty arbiter: grant a younger message. The overtaken
                // head is marked faulted with its counterfactual grant
                // cycle, so its recovery latency is measured end-to-end.
                self.stats.faults.reordered_broadcasts += 1;
                self.record_fault(None, FaultClass::BroadcastReorder, 0);
                if let Some(head) = self.sync_queue.front_mut() {
                    head.faulted = true;
                    head.first_grant.get_or_insert(self.cycle);
                }
                let ix = self.rng.range_usize(1, self.sync_queue.len() - 1);
                self.sync_queue.remove(ix)
            } else {
                self.sync_queue.pop_front()
            };
            if let Some(mut entry) = picked {
                self.stats.sync_broadcasts += 1;
                if let SyncReq::Rmw { .. } = entry.req {
                    self.stats.rmw_ops += 1;
                }
                entry.first_grant.get_or_insert(self.cycle);
                let mut dur = u64::from(self.config.sync_bus_latency);
                if f.broadcast_delay_pct > 0 && self.rng.chance_pct(f.broadcast_delay_pct) {
                    let extra = u64::from(self.rng.range_u32(1, f.broadcast_delay_max));
                    dur += extra;
                    entry.faulted = true;
                    self.stats.faults.delayed_broadcasts += 1;
                    self.stats.faults.delay_cycles += extra;
                    self.record_fault(None, FaultClass::BroadcastDelay, extra);
                }
                let (var, rmw) = match entry.req {
                    SyncReq::Post { var, .. } => (var, false),
                    SyncReq::Rmw { var, .. } => (var, true),
                };
                self.metrics.sync_bus_busy += dur;
                self.events.record(self.cycle, SimEventKind::SyncGrant { var, rmw, dur });
                self.sync_active = Some((entry, self.cycle + dur));
                self.note_progress();
            }
        }
    }

    fn next_sync_seq(&mut self) -> u64 {
        self.sync_seq += 1;
        self.sync_seq
    }

    fn post_sync_write(&mut self, proc: usize, var: SyncVar, val: u64) {
        self.metrics.sync_vars[var].posts += 1;
        let seq = self.next_sync_seq();
        if self.config.coalesce_sync_writes {
            for pending in self.sync_queue.iter_mut() {
                if pending.refresh {
                    // Never fold a real post into a refresh: the refresh
                    // re-reads global at delivery and would drop `val`.
                    continue;
                }
                if let SyncReq::Post { proc: p, var: v, val: pv } = &mut pending.req {
                    if *p == proc && *v == var {
                        *pv = val;
                        // The coalesced message now carries the newest
                        // write: retag it so it is not discarded as stale.
                        pending.seq = seq;
                        self.stats.coalesced_writes += 1;
                        return;
                    }
                }
            }
        }
        self.sync_queue
            .push_back(QueuedSync::new(SyncReq::Post { proc, var, val }, seq));
    }

    /// Executes instructions for processor `p` in the current cycle.
    /// "Free" instructions (notes, posted writes, satisfied waits,
    /// zero-cost computes) retire in the same cycle; the first costly one
    /// decides how the cycle is accounted.
    fn step_proc(&mut self, p: usize) {
        if self.config.faults.stall_mean_interval > 0 {
            if self.cycle >= self.stall_until[p] && self.cycle >= self.next_stall[p] {
                // Stall onset: freeze this processor for a bounded
                // interval and schedule the next onset.
                let len = u64::from(self.rng.range_u32(1, self.config.faults.stall_max));
                self.stall_until[p] = self.cycle + len;
                let mean = u64::from(self.config.faults.stall_mean_interval);
                self.next_stall[p] = self.stall_until[p] + 1 + self.rng.below(2 * mean);
                self.stats.faults.stalls += 1;
                self.stats.faults.stall_cycles += len;
                self.record_fault(Some(p), FaultClass::ProcStall, len);
            }
            if self.cycle < self.stall_until[p] {
                // A stall freezes real work, but trace notes are
                // bookkeeping, not machine work: an instruction that
                // already completed (e.g. a keyed access whose
                // transaction performed this cycle) must still be
                // witnessed now, or the trace would misreport the order
                // the hardware actually enforced.
                self.drain_notes(p);
                self.procs[p].stats.stalled += 1;
                return;
            }
        }
        loop {
            match self.procs[p].state {
                ProcState::Idle => {
                    if !self.try_dispatch(p) {
                        self.procs[p].stats.idle += 1;
                        return;
                    }
                    // Dispatch may impose latency (state becomes Computing)
                    // or leave the proc Ready; loop to handle either.
                }
                ProcState::Computing { remaining } => {
                    self.procs[p].stats.busy += 1;
                    self.note_progress();
                    let left = remaining - 1;
                    self.procs[p].state = if left == 0 {
                        ProcState::Ready
                    } else {
                        ProcState::Computing { remaining: left }
                    };
                    return;
                }
                ProcState::BlockedData | ProcState::BlockedSync => {
                    self.procs[p].stats.blocked += 1;
                    return;
                }
                ProcState::SpinLocal { var, pred } => {
                    if pred.eval(self.sync_images[p][var]) {
                        self.close_wait(p);
                        self.procs[p].state = ProcState::Ready;
                        // The successful check still costs this cycle.
                        self.procs[p].stats.spin += 1;
                        return;
                    }
                    if self.cycle >= self.nack_due[p] {
                        self.check_gap(p, var, pred);
                    }
                    self.procs[p].stats.spin += 1;
                    return;
                }
                ProcState::SpinMem { retry, phase } => {
                    if let SpinPhase::Backoff { until } = phase {
                        if self.cycle >= until {
                            self.data_queue.push_back(DataReq {
                                proc: p,
                                kind: retry,
                                addr: retry_addr(retry),
                            });
                            self.procs[p].state =
                                ProcState::SpinMem { retry, phase: SpinPhase::WaitingResult };
                        }
                    }
                    self.procs[p].stats.spin += 1;
                    return;
                }
                ProcState::Ready => {
                    // Issue the next instruction; cost (if any) is applied
                    // by the state branch on the next loop pass, so issuing
                    // does not add a cycle of its own.
                    self.execute_next_instr(p);
                }
            }
        }
    }

    /// Records any immediately-pending trace notes of a stalled (but
    /// otherwise ready) processor. Notes retire for free in normal
    /// stepping; draining them here keeps that invariant across stall
    /// onsets so completion events are never reported late.
    fn drain_notes(&mut self, p: usize) {
        while matches!(self.procs[p].state, ProcState::Ready) {
            let Some(prog_ix) = self.procs[p].current else { return };
            let ip = self.procs[p].ip;
            let program = &self.workload.programs[prog_ix];
            if ip >= program.instrs.len() {
                return;
            }
            let Instr::Note(label) = program.instrs[ip] else { return };
            self.procs[p].ip += 1;
            self.trace.record(self.cycle, p, label);
        }
    }

    /// Issues the next instruction; any cost shows up as a state change
    /// handled by [`Machine::step_proc`] in the same cycle.
    fn execute_next_instr(&mut self, p: usize) {
        let prog_ix = match self.procs[p].current {
            Some(ix) => ix,
            None => {
                self.procs[p].state = ProcState::Idle;
                return;
            }
        };
        let ip = self.procs[p].ip;
        let program = &self.workload.programs[prog_ix];
        if ip >= program.instrs.len() {
            self.procs[p].current = None;
            self.procs[p].ip = 0;
            self.procs[p].state = ProcState::Idle;
            return;
        }
        let instr = program.instrs[ip];
        self.procs[p].ip += 1;
        self.note_progress();
        match instr {
            Instr::Compute(0) => {}
            Instr::Compute(c) => {
                self.procs[p].state = ProcState::Computing { remaining: c };
            }
            Instr::Note(label) => {
                self.trace.record(self.cycle, p, label);
            }
            Instr::Access { addr, write: _ } => {
                self.data_queue.push_back(DataReq { proc: p, kind: DataReqKind::Access, addr });
                self.procs[p].state = ProcState::BlockedData;
            }
            Instr::SyncSet { var, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.post_sync_write(p, var, val);
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].posts += 1;
                    self.data_queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::SyncWrite { var, val },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::SyncRmw { var } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].rmws += 1;
                    let seq = self.next_sync_seq();
                    self.sync_queue.push_back(QueuedSync::new(SyncReq::Rmw { proc: p, var }, seq));
                    self.procs[p].state = ProcState::BlockedSync;
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].rmws += 1;
                    self.data_queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::SyncRmw { var },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::SyncWait { var, pred } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    self.metrics.sync_vars[var].waits += 1;
                    if !pred.eval(self.sync_images[p][var]) {
                        self.begin_wait(p, var, false);
                        self.procs[p].state = ProcState::SpinLocal { var, pred };
                    }
                }
                SyncTransport::SharedMemory => {
                    self.metrics.sync_vars[var].waits += 1;
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::Poll { var, pred };
                    self.data_queue.push_back(DataReq { proc: p, kind, addr: var as u64 });
                    self.procs[p].state =
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult };
                }
            },
            Instr::SyncSetIfGeq { var, guard, val } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync_images[p][var] >= guard {
                        self.post_sync_write(p, var, val);
                    }
                }
                SyncTransport::SharedMemory => {
                    self.data_queue.push_back(DataReq {
                        proc: p,
                        kind: DataReqKind::ReadCheck { var, guard, val },
                        addr: var as u64,
                    });
                    self.procs[p].state = ProcState::BlockedData;
                }
            },
            Instr::KeyedAccess { var, geq } => match self.config.sync_transport {
                SyncTransport::DedicatedBus => {
                    if self.sync_images[p][var] >= geq {
                        self.metrics.sync_vars[var].rmws += 1;
                        let seq = self.next_sync_seq();
                        self.sync_queue
                            .push_back(QueuedSync::new(SyncReq::Rmw { proc: p, var }, seq));
                        self.procs[p].state = ProcState::BlockedSync;
                    } else {
                        // Spin on the local image, then re-issue this
                        // instruction once the key advances.
                        self.begin_wait(p, var, false);
                        self.procs[p].ip -= 1;
                        self.procs[p].state = ProcState::SpinLocal { var, pred: Pred::Geq(geq) };
                    }
                }
                SyncTransport::SharedMemory => {
                    self.begin_wait(p, var, true);
                    let kind = DataReqKind::KeyedAttempt { var, geq };
                    self.data_queue.push_back(DataReq { proc: p, kind, addr: var as u64 });
                    self.procs[p].state =
                        ProcState::SpinMem { retry: kind, phase: SpinPhase::WaitingResult };
                }
            },
        }
    }

    /// Returns `true` if a program was assigned.
    fn try_dispatch(&mut self, p: usize) -> bool {
        let next = match self.workload.dispatch {
            DispatchMode::Dynamic => {
                if self.next_dynamic >= self.workload.programs.len() {
                    return false;
                }
                let ix = self.next_dynamic;
                self.next_dynamic += 1;
                ix
            }
            DispatchMode::Static(_) => match self.procs[p].queue.pop_front() {
                Some(ix) => ix,
                None => return false,
            },
        };
        self.stats.dispatched += 1;
        self.note_progress();
        self.events
            .record(self.cycle, SimEventKind::Dispatch { proc: p, program: next });
        self.procs[p].current = Some(next);
        self.procs[p].ip = 0;
        let lat = self.config.dispatch_latency;
        self.procs[p].state =
            if lat == 0 { ProcState::Ready } else { ProcState::Computing { remaining: lat } };
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{pack_pc, Label};

    fn cfg(p: usize) -> MachineConfig {
        MachineConfig::with_processors(p)
    }

    #[test]
    fn single_compute_program_runs() {
        let w = Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(10)])]);
        let out = run(&cfg(1), &w).unwrap();
        // dispatch_latency (2) + compute (10), all busy.
        assert_eq!(out.stats.procs[0].busy, 12);
        assert_eq!(out.stats.dispatched, 1);
        assert!(out.stats.makespan >= 12);
    }

    #[test]
    fn notes_are_free_and_traced() {
        let l1 = Label { pid: 0, stmt: 0, start: true };
        let l2 = Label { pid: 0, stmt: 0, start: false };
        let w = Workload::dynamic(vec![Program::from_instrs(vec![
            Instr::Note(l1),
            Instr::Compute(5),
            Instr::Note(l2),
        ])]);
        let out = run(&cfg(1), &w).unwrap();
        let ev = out.trace.events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[1].cycle - ev[0].cycle, 5);
    }

    #[test]
    fn data_accesses_serialize_on_the_bus() {
        // Two processors each issue one access at the same time; the second
        // must wait for the first to release the bus.
        let prog = Program::from_instrs(vec![Instr::Access { addr: 0, write: true }]);
        let w = Workload::static_assigned(vec![prog.clone(), prog], vec![vec![0], vec![1]]);
        let mut c = cfg(2);
        c.dispatch_latency = 0;
        let out = run(&c, &w).unwrap();
        assert_eq!(out.stats.data_transactions, 2);
        // Total service time = 2 * (bus 2 + mem 4) = 12 > single access 6.
        assert!(out.stats.makespan >= 12);
        // The loser blocked longer than the winner.
        let blocked: Vec<u64> = out.stats.procs.iter().map(|p| p.blocked).collect();
        assert_ne!(blocked[0], blocked[1]);
    }

    #[test]
    fn dedicated_bus_wait_satisfied_by_broadcast() {
        // Proc 0 computes then posts var0 = 1; proc 1 waits for it.
        let producer =
            Program::from_instrs(vec![Instr::Compute(20), Instr::SyncSet { var: 0, val: 1 }]);
        let consumer = Program::from_instrs(vec![
            Instr::SyncWait { var: 0, pred: Pred::Geq(1) },
            Instr::Compute(1),
        ]);
        let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
        let out = run(&cfg(2), &w).unwrap();
        assert_eq!(out.stats.sync_broadcasts, 1);
        assert_eq!(out.stats.spin_polls, 0, "local-image spinning makes no traffic");
        assert!(out.stats.procs[1].spin > 0);
        assert_eq!(out.sync_final[0], 1);
    }

    #[test]
    fn shared_memory_wait_costs_polls() {
        let producer =
            Program::from_instrs(vec![Instr::Compute(60), Instr::SyncSet { var: 0, val: 1 }]);
        let consumer = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
        let c = cfg(2).transport(SyncTransport::SharedMemory);
        let out = run(&c, &w).unwrap();
        assert!(out.stats.spin_polls > 2, "polling traffic expected, got {}", out.stats.spin_polls);
    }

    #[test]
    fn coalescing_merges_queued_writes() {
        // Saturate the sync bus with a competing stream so proc 0's two
        // posted writes to the same var are both queued simultaneously.
        let noisy = Program::from_instrs(vec![
            Instr::SyncSet { var: 1, val: 1 },
            Instr::SyncSet { var: 2, val: 1 },
            Instr::SyncSet { var: 3, val: 1 },
        ]);
        let writer = Program::from_instrs(vec![
            Instr::SyncSet { var: 0, val: 1 },
            Instr::SyncSet { var: 0, val: 2 },
        ]);
        let w = Workload::static_assigned(vec![noisy, writer], vec![vec![0], vec![1]]);
        let on = run(&cfg(2).coalescing(true), &w).unwrap();
        assert_eq!(on.stats.coalesced_writes, 1);
        assert_eq!(on.sync_final[0], 2, "latest value must win");
        let off = run(&cfg(2).coalescing(false), &w).unwrap();
        assert_eq!(off.stats.coalesced_writes, 0);
        assert_eq!(off.stats.sync_broadcasts, on.stats.sync_broadcasts + 1);
        assert_eq!(off.sync_final[0], 2);
    }

    #[test]
    fn rmw_increments_atomically() {
        let prog = Program::from_instrs(vec![Instr::SyncRmw { var: 0 }, Instr::SyncRmw { var: 0 }]);
        let w = Workload::static_assigned(vec![prog.clone(), prog], vec![vec![0], vec![1]]);
        for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
            let out = run(&cfg(2).transport(transport), &w).unwrap();
            assert_eq!(out.sync_final[0], 4, "transport {transport:?}");
            assert_eq!(out.stats.rmw_ops, 4);
        }
    }

    #[test]
    fn deadlock_detected() {
        let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        let w = Workload::dynamic(vec![stuck]);
        match run(&cfg(1), &w) {
            Err(SimError::Deadlock { spinning, .. }) => assert_eq!(spinning, vec![0]),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn shared_memory_deadlock_detected() {
        let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        let w = Workload::dynamic(vec![stuck]);
        let c = cfg(1).transport(SyncTransport::SharedMemory);
        match run(&c, &w) {
            Err(SimError::Deadlock { .. }) | Err(SimError::Timeout { .. }) => {}
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn dynamic_dispatch_claims_in_order() {
        // 4 programs, 2 procs: all get executed, dispatched == 4.
        let prog = Program::from_instrs(vec![Instr::Compute(5)]);
        let w = Workload::dynamic(vec![prog.clone(), prog.clone(), prog.clone(), prog]);
        let out = run(&cfg(2), &w).unwrap();
        assert_eq!(out.stats.dispatched, 4);
        assert!(out.stats.makespan < 4 * (5 + 2) + 4, "two procs should overlap");
    }

    #[test]
    fn preset_sync_applies_to_images() {
        let consumer =
            Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(pack_pc(1, 0)) }]);
        let w = Workload::dynamic(vec![consumer]);
        let c = cfg(1);
        let mut m = Machine::new(&c, &w);
        m.preset_sync(0, pack_pc(1, 0));
        let out = m.run_to_completion().unwrap();
        assert_eq!(out.sync_final[0], pack_pc(1, 0));
    }

    #[test]
    fn determinism_same_run_same_stats() {
        let prog = |c| {
            Program::from_instrs(vec![Instr::Compute(c), Instr::Access { addr: 1, write: true }])
        };
        let w = Workload::dynamic(vec![prog(3), prog(9), prog(1), prog(7), prog(5)]);
        let a = run(&cfg(3), &w).unwrap();
        let b = run(&cfg(3), &w).unwrap();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn keyed_access_orders_and_increments() {
        // Proc 1's keyed access (rank 1) must wait for proc 0's (rank 0).
        let first = Program::from_instrs(vec![
            Instr::Compute(30),
            Instr::KeyedAccess { var: 0, geq: 0 },
            Instr::SyncSet { var: 1, val: 1 },
        ]);
        let second = Program::from_instrs(vec![Instr::KeyedAccess { var: 0, geq: 1 }]);
        let w = Workload::static_assigned(vec![first, second], vec![vec![0], vec![1]]);
        for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
            let out = run(&cfg(2).transport(transport), &w).unwrap();
            assert_eq!(out.sync_final[0], 2, "both accesses increment ({transport:?})");
            assert!(out.stats.rmw_ops >= 2);
        }
    }

    #[test]
    fn keyed_access_failed_attempts_cost_memory_traffic() {
        let slow =
            Program::from_instrs(vec![Instr::Compute(100), Instr::KeyedAccess { var: 0, geq: 0 }]);
        let eager = Program::from_instrs(vec![Instr::KeyedAccess { var: 0, geq: 1 }]);
        let w = Workload::static_assigned(vec![slow, eager], vec![vec![0], vec![1]]);
        let out = run(&cfg(2).transport(SyncTransport::SharedMemory), &w).unwrap();
        // The eager processor's failed attempts are bus transactions.
        assert!(out.stats.data_transactions > 3, "got {}", out.stats.data_transactions);
    }

    #[test]
    fn banked_memory_overlaps_accesses() {
        use crate::config::MemoryModel;
        // 4 procs each make 4 accesses to different banks: with banking
        // the memory latencies overlap, so the banked makespan beats the
        // bus-held one.
        let progs: Vec<Program> = (0..4u64)
            .map(|p| {
                Program::from_instrs(
                    (0..4).map(|k| Instr::Access { addr: p * 4 + k, write: false }).collect(),
                )
            })
            .collect();
        let w = Workload::static_assigned(progs, (0..4).map(|p| vec![p]).collect());
        let mut held = cfg(4);
        held.dispatch_latency = 0;
        let mut banked = held.clone();
        banked.memory_model = MemoryModel::Banked { banks: 8 };
        let out_held = run(&held, &w).unwrap();
        let out_banked = run(&banked, &w).unwrap();
        assert!(
            out_banked.stats.makespan < out_held.stats.makespan,
            "banked {} should beat bus-held {}",
            out_banked.stats.makespan,
            out_held.stats.makespan
        );
        assert_eq!(out_banked.stats.data_transactions, 16);
    }

    #[test]
    fn single_bank_conflicts_serialize() {
        use crate::config::MemoryModel;
        // All accesses hit bank 0: banking cannot help beyond the bus
        // pipelining of the request phase.
        let progs: Vec<Program> = (0..2u64)
            .map(|_| {
                Program::from_instrs(
                    (0..3).map(|k| Instr::Access { addr: k * 4, write: true }).collect(),
                )
            })
            .collect();
        let w = Workload::static_assigned(progs, vec![vec![0], vec![1]]);
        let mut c = cfg(2);
        c.dispatch_latency = 0;
        c.memory_model = MemoryModel::Banked { banks: 4 };
        let out = run(&c, &w).unwrap();
        // 6 accesses through one bank: at least 6 * memory_latency cycles.
        assert!(out.stats.makespan >= 6 * 4, "makespan {}", out.stats.makespan);
    }

    #[test]
    fn banked_sync_ops_still_correct() {
        use crate::config::MemoryModel;
        let producer =
            Program::from_instrs(vec![Instr::Compute(30), Instr::SyncSet { var: 3, val: 1 }]);
        let consumer = Program::from_instrs(vec![
            Instr::SyncWait { var: 3, pred: Pred::Geq(1) },
            Instr::SyncRmw { var: 3 },
        ]);
        let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
        let c = cfg(2).transport(SyncTransport::SharedMemory);
        let mut c = c;
        c.memory_model = MemoryModel::Banked { banks: 4 };
        let out = run(&c, &w).unwrap();
        assert_eq!(out.sync_final[3], 2);
    }

    #[test]
    fn cyclic_and_blocked_assignments_cover_everything() {
        let prog = |c| Program::from_instrs(vec![Instr::Compute(c)]);
        let programs: Vec<Program> = (1..=7).map(prog).collect();
        for w in [
            Workload::static_cyclic(programs.clone(), 3),
            Workload::static_blocked(programs.clone(), 3),
        ] {
            let out = run(&cfg(3), &w).unwrap();
            assert_eq!(out.stats.dispatched, 7);
        }
    }

    #[test]
    fn per_proc_cycle_accounting_conserves() {
        // Every processor ticks exactly one breakdown category per cycle,
        // so busy + spin + blocked + idle == makespan for each.
        let prog = |c| {
            Program::from_instrs(vec![
                Instr::Compute(c),
                Instr::Access { addr: u64::from(c), write: true },
                Instr::SyncSet { var: 0, val: u64::from(c) },
            ])
        };
        let w = Workload::dynamic((1..12).map(prog).collect());
        let out = run(&cfg(3), &w).unwrap();
        for (i, p) in out.stats.procs.iter().enumerate() {
            assert_eq!(p.total(), out.stats.makespan, "proc {i}: {p:?}");
        }
    }

    #[test]
    fn timeout_enforced() {
        let mut c = cfg(1);
        c.max_cycles = 5;
        let w = Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(100)])]);
        assert!(matches!(run(&c, &w), Err(SimError::Timeout { .. })));
    }

    // ---- fault injection ----

    use crate::faults::{FaultClass, FaultPlan};

    /// A producer/consumer chain that exercises broadcasts, waits and
    /// data accesses.
    fn chain_workload(n: usize) -> Workload {
        let progs = (0..n)
            .map(|i| {
                let mut instrs = Vec::new();
                if i > 0 {
                    instrs.push(Instr::SyncWait { var: 0, pred: Pred::Geq(i as u64) });
                }
                instrs.push(Instr::Compute(3));
                instrs.push(Instr::Access { addr: i as u64, write: true });
                instrs.push(Instr::SyncSet { var: 0, val: i as u64 + 1 });
                Program::from_instrs(instrs)
            })
            .collect();
        Workload::dynamic(progs)
    }

    #[test]
    fn fault_free_run_unchanged_by_fault_support() {
        // A zero plan injects nothing: all fault counters stay zero.
        let out = run(&cfg(3), &chain_workload(8)).unwrap();
        assert_eq!(out.stats.faults.total(), 0);
        assert_eq!(out.stats.faults.recovery_cycles, 0);
        assert!(out.trace.fault_events().is_empty());
        assert!(out.stats.procs.iter().all(|p| p.stalled == 0));
    }

    #[test]
    fn faulted_run_is_deterministic() {
        let c = cfg(3).with_faults(FaultPlan::chaos(42, 60));
        let a = run(&c, &chain_workload(10)).unwrap();
        let b = run(&c, &chain_workload(10)).unwrap();
        assert_eq!(a.stats, b.stats, "same seed must give byte-identical stats");
        assert_eq!(a.trace, b.trace);
        assert!(a.stats.faults.total() > 0, "chaos at 60 must inject something");
        // A different seed shakes the machine differently.
        let c2 = cfg(3).with_faults(FaultPlan::chaos(43, 60));
        let other = run(&c2, &chain_workload(10)).unwrap();
        assert_ne!(a.stats.faults, other.stats.faults, "seeds 42/43 should differ");
    }

    #[test]
    fn dropped_broadcasts_are_redelivered() {
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastDrop, 7, 80));
        let out = run(&c, &chain_workload(8)).unwrap();
        assert!(out.stats.faults.dropped_broadcasts > 0, "80% drop must fire");
        assert_eq!(out.sync_final[0], 8, "every broadcast must eventually deliver");
        assert!(out.stats.faults.recovery_cycles > 0, "drops have recovery latency");
    }

    #[test]
    fn delayed_broadcasts_cost_recovery_latency() {
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastDelay, 3, 100));
        let out = run(&c, &chain_workload(6)).unwrap();
        assert!(out.stats.faults.delayed_broadcasts > 0);
        assert!(out.stats.faults.delay_cycles > 0);
        assert!(out.stats.faults.recovery_max >= 1);
        assert_eq!(out.sync_final[0], 6);
    }

    #[test]
    fn stale_images_preserve_per_image_write_order() {
        // The consumer leaves only once its (lagging) image reaches the
        // final value; order-preserving deferral means it never sees a
        // newer value before an older one, and the run still completes.
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::StaleImage, 11, 90));
        let out = run(&c, &chain_workload(8)).unwrap();
        assert!(out.stats.faults.stale_image_updates > 0);
        assert_eq!(out.sync_final[0], 8);
    }

    #[test]
    fn stalls_freeze_and_account() {
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::ProcStall, 5, 80));
        let out = run(&c, &chain_workload(8)).unwrap();
        assert!(out.stats.faults.stalls > 0);
        let stalled: u64 = out.stats.procs.iter().map(|p| p.stalled).sum();
        // A stall that straddles the end of the run is charged in full to
        // stall_cycles but only partially ticked.
        assert!(stalled > 0 && stalled <= out.stats.faults.stall_cycles);
        for (i, p) in out.stats.procs.iter().enumerate() {
            assert_eq!(p.total(), out.stats.makespan, "proc {i} conservation with stalls");
        }
    }

    #[test]
    fn data_jitter_slows_the_data_path() {
        let plain = run(&cfg(2), &chain_workload(8)).unwrap();
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::DataJitter, 9, 100));
        let out = run(&c, &chain_workload(8)).unwrap();
        assert!(out.stats.faults.jittered_transactions > 0);
        assert!(out.stats.faults.jitter_cycles > 0);
        assert!(out.stats.makespan > plain.stats.makespan, "jitter must cost cycles");
    }

    #[test]
    fn reorder_still_delivers_everything() {
        // Six processors post simultaneously so the sync queue is deep at
        // grant time; every variable must still reach its value.
        let writers: Vec<Program> = (0..6)
            .map(|v| Program::from_instrs(vec![Instr::SyncSet { var: v, val: 1 }]))
            .collect();
        let assign: Vec<Vec<usize>> = (0..6).map(|p| vec![p]).collect();
        let w = Workload::static_assigned(writers, assign);
        let mut c = cfg(6).with_faults(FaultPlan::only(FaultClass::BroadcastReorder, 13, 100));
        c.coalesce_sync_writes = false;
        let out = run(&c, &w).unwrap();
        assert!(out.stats.faults.reordered_broadcasts > 0);
        assert_eq!(out.sync_final, vec![1; 6]);
    }

    #[test]
    fn deadlock_still_detected_under_chaos() {
        // An unsatisfiable wait must be *detected* (deadlock), not burn
        // until max_cycles, even while faults keep shaking the machine.
        let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(9) }]);
        let mut c = cfg(1).with_faults(FaultPlan::chaos(21, 50));
        c.max_cycles = 2_000_000;
        match run(&c, &Workload::dynamic(vec![stuck])) {
            Err(SimError::Deadlock { cycle, .. }) => {
                assert!(cycle < 100_000, "detection must be prompt, took {cycle}");
            }
            other => panic!("expected detected deadlock, got {other:?}"),
        }
    }

    // ---- fast-forward vs reference equivalence ----

    /// Runs with an explicit step mode and event recording on.
    fn run_mode(
        config: &MachineConfig,
        w: &Workload,
        mode: StepMode,
        capacity: usize,
    ) -> Result<RunOutcome, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut m = Machine::new(config, w);
        m.set_mode(mode);
        m.enable_events(capacity);
        m.run_to_completion()
    }

    /// Asserts the fast-forward kernel is bit-identical to per-cycle
    /// stepping — stats, trace, metrics, final sync values — and that
    /// turning event recording on changes nothing observable while
    /// producing the same event sequence in both modes.
    fn assert_equivalent(config: &MachineConfig, w: &Workload) {
        let fast = run(config, w);
        let slow = run_reference(config, w);
        match (fast, slow) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.stats, b.stats, "stats diverge");
                assert_eq!(a.trace, b.trace, "trace diverges");
                assert_eq!(a.sync_final, b.sync_final, "sync_final diverges");
                assert_eq!(a.metrics, b.metrics, "metrics diverge");
                let ta = run_mode(config, w, StepMode::FastForward, 1 << 16).unwrap();
                let tb = run_mode(config, w, StepMode::Reference, 1 << 16).unwrap();
                assert_eq!(ta.events, tb.events, "event streams diverge");
                assert_eq!(ta.stats, a.stats, "recording must not change stats");
                assert_eq!(tb.stats, b.stats, "recording must not change stats");
                assert_eq!(ta.metrics, a.metrics, "recording must not change metrics");
                assert_eq!(ta.trace, a.trace, "recording must not change the trace");
            }
            (fast, slow) => assert_eq!(fast.err(), slow.err(), "outcomes diverge"),
        }
    }

    #[test]
    fn fast_forward_matches_reference_fault_free() {
        for procs in [1, 2, 3] {
            assert_equivalent(&cfg(procs), &chain_workload(10));
        }
        let mut banked = cfg(3);
        banked.memory_model = crate::config::MemoryModel::Banked { banks: 4 };
        assert_equivalent(&banked, &chain_workload(10));
        assert_equivalent(&cfg(2).transport(SyncTransport::SharedMemory), &chain_workload(6));
    }

    #[test]
    fn fast_forward_matches_reference_under_every_fault_class() {
        for class in FaultClass::ALL {
            for seed in [1u64, 7, 42] {
                let c = cfg(3).with_faults(FaultPlan::only(class, seed, 70));
                assert_equivalent(&c, &chain_workload(8));
            }
        }
        for seed in [3u64, 11] {
            assert_equivalent(&cfg(3).with_faults(FaultPlan::chaos(seed, 55)), &chain_workload(8));
        }
    }

    #[test]
    fn fast_forward_matches_reference_on_failures() {
        // Deadlock: both modes must report the same detection cycle.
        let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        assert_equivalent(&cfg(1), &Workload::dynamic(vec![stuck.clone()]));
        // Livelock via the watchdog (shared-memory re-polling forever).
        let c = cfg(1).transport(SyncTransport::SharedMemory);
        assert_equivalent(&c, &Workload::dynamic(vec![stuck]));
        // Timeout at an arbitrary cap.
        let mut t = cfg(1);
        t.max_cycles = 37;
        assert_equivalent(
            &t,
            &Workload::dynamic(vec![Program::from_instrs(vec![Instr::Compute(500)])]),
        );
    }

    #[test]
    fn fast_forward_jumps_long_spins() {
        // One producer computes 100k cycles while the consumer spins on
        // its local image: the reference stepper burns a cycle per spin,
        // the kernel jumps the whole span — results must match exactly.
        let producer =
            Program::from_instrs(vec![Instr::Compute(100_000), Instr::SyncSet { var: 0, val: 1 }]);
        let consumer = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        let w = Workload::static_assigned(vec![producer, consumer], vec![vec![0], vec![1]]);
        let config = cfg(2);
        assert_equivalent(&config, &w);
        let out = run(&config, &w).unwrap();
        assert!(out.stats.procs[1].spin > 90_000, "consumer must spin through the compute");
        for (i, p) in out.stats.procs.iter().enumerate() {
            assert_eq!(p.total(), out.stats.makespan, "proc {i} conservation after jumps");
        }
    }

    // ---- observability: events, metrics, watchdog boundary ----

    #[test]
    fn watchdog_fires_at_exactly_limit_plus_one_in_both_modes() {
        // One processor spins on a local image whose update is deferred
        // to `due`. due == limit is the last cycle the watchdog
        // tolerates; due == limit + 1 loses the race by exactly one
        // cycle — in BOTH step modes, at the same cycle.
        let wait = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(1) }]);
        let w = Workload::dynamic(vec![wait]);
        let mut c = cfg(1);
        c.dispatch_latency = 0;
        let limit = Machine::new(&c, &w).watchdog_limit();
        for mode in [StepMode::FastForward, StepMode::Reference] {
            // due == limit: the image applies just in time.
            let mut m = Machine::new(&c, &w);
            m.set_mode(mode);
            m.image_defer[0].push_back((limit, 0, 1));
            m.image_due_min = limit;
            let out = m.run_to_completion().unwrap_or_else(|e| panic!("{mode:?} at limit: {e}"));
            assert!(out.stats.makespan > limit, "{mode:?}: spun through the quiet span");
            // due == limit + 1: the watchdog fires first, at limit + 1.
            let mut m = Machine::new(&c, &w);
            m.set_mode(mode);
            m.image_defer[0].push_back((limit + 1, 0, 1));
            m.image_due_min = limit + 1;
            match m.run_to_completion() {
                Err(SimError::Deadlock { cycle, detail, .. }) => {
                    assert_eq!(cycle, limit + 1, "{mode:?} watchdog fire cycle");
                    assert!(detail[0].contains("livelock"), "{mode:?}: {detail:?}");
                }
                other => panic!("{mode:?}: expected watchdog deadlock, got {other:?}"),
            }
        }
    }

    #[test]
    fn event_recording_does_not_perturb_stats() {
        for transport in [SyncTransport::DedicatedBus, SyncTransport::SharedMemory] {
            let c = cfg(3).transport(transport);
            let w = chain_workload(8);
            let plain = run(&c, &w).unwrap();
            let traced = run_mode(&c, &w, StepMode::FastForward, 4096).unwrap();
            assert_eq!(plain.stats, traced.stats, "{transport:?}");
            assert_eq!(plain.metrics, traced.metrics, "{transport:?}");
            assert_eq!(plain.sync_final, traced.sync_final, "{transport:?}");
            assert!(plain.events.is_empty(), "recording is off by default");
            assert!(!traced.events.is_empty());
        }
    }

    #[test]
    fn event_ring_captures_run_lifecycle() {
        let c = cfg(2);
        let w = chain_workload(4);
        let out = run_mode(&c, &w, StepMode::FastForward, 1 << 12).unwrap();
        assert_eq!(out.events.dropped(), 0, "ring large enough for the whole run");
        let kinds: Vec<SimEventKind> = out.events.iter().map(|e| e.kind).collect();
        assert!(matches!(kinds[0], SimEventKind::WatchdogArm { .. }), "arm comes first");
        for probe in [
            |k: &SimEventKind| matches!(k, SimEventKind::Dispatch { .. }),
            |k: &SimEventKind| matches!(k, SimEventKind::DataGrant { .. }),
            |k: &SimEventKind| matches!(k, SimEventKind::SyncGrant { .. }),
            |k: &SimEventKind| matches!(k, SimEventKind::SyncDeliver { .. }),
            |k: &SimEventKind| matches!(k, SimEventKind::WaitBegin { .. }),
            |k: &SimEventKind| matches!(k, SimEventKind::WaitEnd { .. }),
        ] {
            assert!(kinds.iter().any(probe), "missing event kind in {kinds:?}");
        }
        let cycles: Vec<u64> = out.events.iter().map(|e| e.cycle).collect();
        assert!(cycles.windows(2).all(|w| w[0] <= w[1]), "events are time-ordered");
    }

    #[test]
    fn metrics_account_buses_and_waits() {
        let out = run(&cfg(2), &chain_workload(6)).unwrap();
        assert!(out.metrics.data_bus_busy > 0);
        assert!(out.metrics.sync_bus_busy > 0);
        assert!(out.metrics.data_bus_occupancy(out.stats.makespan) <= 1.0);
        let t = out.metrics.sync_traffic_total();
        assert_eq!(t.posts, 6, "each chain link posts once");
        assert_eq!(t.waits, 5, "every link but the first waits");
        assert_eq!(t.rmws, 0);
        assert_eq!(t.polls, 0, "local-image spinning makes no poll traffic");
        assert!(out.metrics.wait_episodes() >= 5, "consumers wait on the chain");
        assert!(out.metrics.wait_max() >= out.metrics.wait_mean() as u64);
    }

    #[test]
    fn shared_memory_polls_are_counted_per_var() {
        let c = cfg(2).transport(SyncTransport::SharedMemory);
        let out = run(&c, &chain_workload(4)).unwrap();
        let t = out.metrics.sync_traffic_total();
        assert_eq!(t.polls, out.stats.spin_polls, "poll traffic matches the global stat");
        assert!(t.polls > 0);
    }

    #[test]
    fn bank_conflicts_show_in_metrics() {
        use crate::config::MemoryModel;
        let progs: Vec<Program> = (0..2u64)
            .map(|_| {
                Program::from_instrs(
                    (0..3).map(|k| Instr::Access { addr: k * 4, write: true }).collect(),
                )
            })
            .collect();
        let w = Workload::static_assigned(progs, vec![vec![0], vec![1]]);
        let mut c = cfg(2);
        c.dispatch_latency = 0;
        c.memory_model = MemoryModel::Banked { banks: 4 };
        let out = run(&c, &w).unwrap();
        assert!(out.metrics.bank_conflicts > 0, "everything hits bank 0");
        assert_eq!(out.metrics.bank_busy, 6 * 4, "six requests at memory_latency 4");
    }

    #[test]
    fn event_streams_are_seed_deterministic() {
        let c = cfg(3).with_faults(FaultPlan::chaos(42, 60));
        let w = chain_workload(10);
        let a = run_mode(&c, &w, StepMode::FastForward, 1 << 14).unwrap();
        let b = run_mode(&c, &w, StepMode::FastForward, 1 << 14).unwrap();
        assert_eq!(a.events, b.events, "same seed must give the same event sequence");
        assert!(a.events.iter().any(|e| matches!(e.kind, SimEventKind::Fault { .. })));
        let other = run_mode(
            &cfg(3).with_faults(FaultPlan::chaos(43, 60)),
            &w,
            StepMode::FastForward,
            1 << 14,
        )
        .unwrap();
        assert_ne!(a.events, other.events, "different seeds shake differently");
    }

    #[test]
    fn fault_events_traced() {
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::DataJitter, 2, 100));
        let out = run(&c, &chain_workload(4)).unwrap();
        assert!(!out.trace.fault_events().is_empty());
        assert!(out
            .trace
            .fault_events()
            .iter()
            .all(|e| e.class == FaultClass::DataJitter && e.magnitude >= 1));
    }

    // ---- self-healing: gap NACKs, retransmission, watchdog repair ----

    use crate::recovery::RecoveryPolicy;

    #[test]
    fn lost_broadcasts_wedge_without_recovery() {
        // Total image loss with the ladder disarmed: the first waiter's
        // image never sees the posted value and the machine must *detect*
        // the wedge (promptly, with the gap visible in the detail), not
        // burn to the timeout.
        let c = cfg(2).with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100));
        match run(&c, &chain_workload(6)) {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                assert!(cycle < 100_000, "detection must be prompt, took {cycle}");
                assert!(
                    detail.iter().any(|d| d.contains("image") && d.contains("global")),
                    "detail must expose the image/global gap: {detail:?}"
                );
            }
            other => panic!("expected wedge without recovery, got {other:?}"),
        }
    }

    #[test]
    fn nack_retransmission_heals_moderate_loss() {
        // At 60% loss most refreshes get through: the run completes on
        // NACK retransmissions alone or with occasional watchdog help,
        // and the healed episodes are accounted.
        let c = cfg(2)
            .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 60))
            .with_recovery(RecoveryPolicy::RepairOnly);
        let out = run(&c, &chain_workload(8)).unwrap();
        assert_eq!(out.sync_final[0], 8, "the chain must complete");
        assert!(out.stats.faults.lost_image_updates > 0, "60% loss must fire");
        assert!(out.stats.recovery.gap_nacks > 0, "gaps must be NACKed");
        assert!(out.stats.recovery.retransmits >= out.stats.recovery.gap_nacks);
        assert!(out.stats.recovery.healed_waits > 0);
        assert!(out.stats.recovery.heal_latency_max >= 1);
    }

    #[test]
    fn watchdog_repair_rescues_total_loss() {
        // 100% loss kills every broadcast *including the retransmissions*:
        // each waiter exhausts its NACK budget, falls silent, and the
        // watchdog's repair rung force-syncs the images. The full ladder
        // must be visible: NACKs, then repairs, then completion.
        let c = cfg(2)
            .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
            .with_recovery(RecoveryPolicy::RepairOnly);
        let out = run(&c, &chain_workload(6)).unwrap();
        assert_eq!(out.sync_final[0], 6);
        assert!(out.stats.recovery.gap_nacks > 0);
        assert!(out.stats.recovery.watchdog_repairs > 0, "silence must escalate to repair");
        assert!(out.stats.recovery.images_repaired > 0);
        assert!(out.stats.recovery.healed_waits > 0);
    }

    #[test]
    fn recovery_actions_emit_trace_events() {
        let c = cfg(2)
            .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
            .with_recovery(RecoveryPolicy::RepairOnly);
        let out = run_mode(&c, &chain_workload(4), StepMode::FastForward, 1 << 14).unwrap();
        let kinds: Vec<SimEventKind> = out.events.iter().map(|e| e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, SimEventKind::GapNack { .. })), "{kinds:?}");
        assert!(kinds.iter().any(|k| matches!(k, SimEventKind::Retransmit { .. })));
        assert!(kinds.iter().any(|k| matches!(k, SimEventKind::WatchdogRepair { .. })));
    }

    #[test]
    fn recovery_is_inert_on_fault_free_runs() {
        // Arming the ladder without faults must change nothing observable:
        // gap checks never prove a gap (images track the global exactly),
        // so stats, trace and metrics stay bit-identical to recovery off.
        let w = chain_workload(10);
        let off = run(&cfg(3), &w).unwrap();
        let on = run(&cfg(3).with_recovery(RecoveryPolicy::Full), &w).unwrap();
        assert_eq!(off.stats, on.stats);
        assert_eq!(off.trace, on.trace);
        assert_eq!(off.metrics, on.metrics);
        assert_eq!(on.stats.recovery.actions(), 0);
    }

    #[test]
    fn fast_forward_matches_reference_with_recovery_enabled() {
        // The ladder draws no RNG and acts only at stepped cycles, so the
        // equivalence contract must hold under every fault class with
        // recovery armed — including total loss where repairs fire.
        for class in FaultClass::ALL {
            for seed in [1u64, 7] {
                let c = cfg(3)
                    .with_faults(FaultPlan::only(class, seed, 70))
                    .with_recovery(RecoveryPolicy::RepairOnly);
                assert_equivalent(&c, &chain_workload(8));
            }
        }
        let total = cfg(2)
            .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 5, 100))
            .with_recovery(RecoveryPolicy::RepairOnly);
        assert_equivalent(&total, &chain_workload(6));
        for seed in [3u64, 11] {
            let c = cfg(3)
                .with_faults(FaultPlan::chaos(seed, 55))
                .with_recovery(RecoveryPolicy::RepairOnly);
            assert_equivalent(&c, &chain_workload(8));
        }
    }

    #[test]
    fn unhealable_wedge_still_detected_with_recovery_on() {
        // A wait that is unsatisfied even *globally* is beyond the
        // ladder: it must still be detected promptly, and the failure
        // must carry the unhealable wait-for proof.
        let stuck = Program::from_instrs(vec![Instr::SyncWait { var: 0, pred: Pred::Geq(9) }]);
        let c = cfg(1).with_recovery(RecoveryPolicy::Full);
        match run(&c, &Workload::dynamic(vec![stuck])) {
            Err(SimError::Deadlock { cycle, detail, .. }) => {
                assert!(cycle < 100_000, "took {cycle}");
                assert!(
                    detail.iter().any(|d| d.contains("unhealable")),
                    "proof must mark the edge unhealable: {detail:?}"
                );
            }
            other => panic!("expected detected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn refresh_never_regresses_a_counter() {
        // Waiters NACK while other processors keep advancing the counter
        // through RMWs: because a refresh re-reads the global value at
        // delivery time, no late retransmission can regress it. Heavy
        // loss + a barrier-style RMW workload exercises exactly the
        // overtaking window.
        let n = 4usize;
        let progs: Vec<Program> = (0..n)
            .map(|i| {
                Program::from_instrs(vec![
                    Instr::Compute(3 * (i as u32 + 1)),
                    Instr::SyncRmw { var: 0 },
                    Instr::SyncWait { var: 0, pred: Pred::Geq(n as u64) },
                ])
            })
            .collect();
        let w = Workload::static_assigned(progs, (0..n).map(|p| vec![p]).collect());
        let c = cfg(n)
            .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 17, 70))
            .with_recovery(RecoveryPolicy::RepairOnly);
        let out = run(&c, &w).unwrap();
        assert_eq!(out.sync_final[0], n as u64, "every increment must survive recovery");
    }
}

//! Run statistics.

use crate::faults::FaultCounts;
use crate::recovery::RecoveryCounts;

/// Per-processor cycle breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcBreakdown {
    /// Cycles spent computing (useful work).
    pub busy: u64,
    /// Cycles spent busy-waiting on synchronization.
    pub spin: u64,
    /// Cycles blocked on the data bus / memory.
    pub blocked: u64,
    /// Cycles with no work assigned (before first dispatch or after the
    /// last program finished).
    pub idle: u64,
    /// Cycles frozen by an injected processor stall (fault injection
    /// only; always 0 on a fault-free run).
    pub stalled: u64,
    /// Cycles spent permanently fail-stopped (`ProcFailStop` injection
    /// only; always 0 on a fault-free run). Kept as its own bucket so
    /// stat conservation — every processor accounts for every cycle of
    /// the makespan — holds through participant loss.
    pub dead: u64,
}

impl ProcBreakdown {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.busy + self.spin + self.blocked + self.idle + self.stalled + self.dead
    }
}

/// Aggregate statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total cycles until the last processor finished.
    pub makespan: u64,
    /// Per-processor cycle breakdown.
    pub procs: Vec<ProcBreakdown>,
    /// Data-bus transactions (shared accesses + memory-transport sync ops
    /// + spin polls).
    pub data_transactions: u64,
    /// Of which: polls issued by busy-waits through shared memory.
    pub spin_polls: u64,
    /// Sync-bus broadcasts granted.
    pub sync_broadcasts: u64,
    /// Dedicated-transport sync operations issued (posted writes and
    /// RMWs), counted when a processor hands them to the fabric — before
    /// coalescing folds them and before the fabric grants them. On a
    /// fault-free run with recovery quiet, every fabric conserves them:
    /// `sync_ops_issued == sync_broadcasts + coalesced_writes` (the
    /// cross-fabric broadcast-conservation invariant; redeliveries and
    /// refresh retransmissions under faults add extra grants on top).
    pub sync_ops_issued: u64,
    /// Posted sync-bus writes absorbed by write coalescing.
    pub coalesced_writes: u64,
    /// Clustered fabric only: broadcasts the bridge forwarded to every
    /// cluster (0 on flat fabrics). Each cluster-bus grant submits its
    /// variable to the bridge, where it either forwards or folds into a
    /// pending same-variable forward, extending the conservation
    /// invariant one level down: on a fault-free run,
    /// `sync_broadcasts == bridge_broadcasts + bridge_coalesced`, hence
    /// `sync_ops_issued = local broadcasts + bridged + coalesced`.
    pub bridge_broadcasts: u64,
    /// Clustered fabric only: bridge submissions absorbed into a pending
    /// same-variable forward (monotone-counter aggregation — partial
    /// barrier/SC/PC counts from many clusters collapse into one global
    /// update).
    pub bridge_coalesced: u64,
    /// Atomic read-modify-writes performed.
    pub rmw_ops: u64,
    /// Iterations dispatched.
    pub dispatched: u64,
    /// Injected-fault counts and recovery latencies (all zero on a
    /// fault-free run).
    pub faults: FaultCounts,
    /// Self-healing actions taken (all zero with recovery off or when
    /// nothing needed healing).
    pub recovery: RecoveryCounts,
}

impl RunStats {
    /// Sum of busy cycles over processors.
    pub fn total_busy(&self) -> u64 {
        self.procs.iter().map(|p| p.busy).sum()
    }

    /// Sum of spin cycles over processors.
    pub fn total_spin(&self) -> u64 {
        self.procs.iter().map(|p| p.spin).sum()
    }

    /// Processor utilization: busy cycles / (P * makespan).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.procs.is_empty() {
            return 0.0;
        }
        self.total_busy() as f64 / (self.makespan as f64 * self.procs.len() as f64)
    }

    /// Speedup relative to a given sequential-work cycle count.
    pub fn speedup_vs(&self, sequential_cycles: u64) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        sequential_cycles as f64 / self.makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let stats = RunStats {
            makespan: 100,
            procs: vec![
                ProcBreakdown { busy: 80, spin: 10, blocked: 5, idle: 5, stalled: 0, dead: 0 },
                ProcBreakdown { busy: 40, spin: 30, blocked: 20, idle: 10, stalled: 0, dead: 0 },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_busy(), 120);
        assert_eq!(stats.total_spin(), 40);
        assert!((stats.utilization() - 0.6).abs() < 1e-12);
        assert!((stats.speedup_vs(150) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_safe() {
        let s = RunStats::default();
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.speedup_vs(10), 0.0);
        assert_eq!(ProcBreakdown::default().total(), 0);
    }
}

//! ASCII timelines from execution traces.
//!
//! Renders one row per processor, one column per time bucket; each bucket
//! shows the statement the processor was executing (by its trace notes),
//! or `.` when no statement span covers the bucket (idle, spinning or
//! blocked). Useful to *see* pipelining, barrier idling, and hot-spot
//! serialization.

use crate::trace::Trace;
use std::fmt::Write as _;

/// One statement-execution span recovered from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Processor that ran it.
    pub proc: usize,
    /// Statement id.
    pub stmt: u32,
    /// Iteration.
    pub pid: u64,
    /// First cycle.
    pub start: u64,
    /// Last cycle (inclusive).
    pub end: u64,
}

/// Recovers statement spans by pairing start/end notes per
/// `(proc, stmt, pid)`.
pub fn spans(trace: &Trace) -> Vec<Span> {
    let mut open: std::collections::HashMap<(usize, u32, u64), u64> =
        std::collections::HashMap::new();
    let mut out = Vec::new();
    for e in trace.events() {
        // Synthetic labels (access/copy events) use huge stmt ids; skip
        // anything that is not a plain statement marker.
        if e.label.stmt >= 1 << 24 {
            continue;
        }
        let key = (e.proc, e.label.stmt, e.label.pid);
        if e.label.start {
            open.insert(key, e.cycle);
        } else if let Some(start) = open.remove(&key) {
            out.push(Span {
                proc: e.proc,
                stmt: e.label.stmt,
                pid: e.label.pid,
                start,
                end: e.cycle,
            });
        }
    }
    out.sort_by_key(|s| (s.proc, s.start));
    out
}

/// Renders the timeline with at most `width` columns.
///
/// Statement ids are shown as `0`-`9` then `a`-`z`; simultaneous spans in
/// one bucket keep the earliest. Returns an empty string for an empty
/// trace.
pub fn render(trace: &Trace, procs: usize, width: usize) -> String {
    let spans = spans(trace);
    let Some(last) = spans.iter().map(|s: &Span| s.end).max() else {
        return String::new();
    };
    let width = width.max(10);
    let scale = ((last + 1) as f64 / width as f64).max(1.0);
    let glyph = |stmt: u32| -> char {
        match stmt {
            0..=9 => (b'0' + stmt as u8) as char,
            10..=35 => (b'a' + (stmt - 10) as u8) as char,
            _ => '#',
        }
    };
    let mut rows = vec![vec!['.'; width]; procs];
    for s in &spans {
        if s.proc >= procs {
            continue;
        }
        let c0 = (s.start as f64 / scale) as usize;
        let c1 = ((s.end as f64 / scale) as usize).min(width - 1);
        for cell in &mut rows[s.proc][c0..=c1] {
            if *cell == '.' {
                *cell = glyph(s.stmt);
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "cycles 0..{last} ({:.1} cycles/column)", scale);
    for (p, row) in rows.iter().enumerate() {
        let _ = writeln!(out, "P{p:<2} |{}|", row.iter().collect::<String>());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Label;

    fn note(t: &mut Trace, cycle: u64, proc: usize, stmt: u32, pid: u64, start: bool) {
        t.record(cycle, proc, Label { pid, stmt, start });
    }

    #[test]
    fn spans_pair_start_end() {
        let mut t = Trace::new();
        note(&mut t, 5, 0, 1, 0, true);
        note(&mut t, 9, 0, 1, 0, false);
        note(&mut t, 10, 1, 2, 1, true);
        note(&mut t, 20, 1, 2, 1, false);
        let s = spans(&t);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0], Span { proc: 0, stmt: 1, pid: 0, start: 5, end: 9 });
    }

    #[test]
    fn synthetic_labels_skipped() {
        let mut t = Trace::new();
        note(&mut t, 1, 0, 1 << 30, 0, true);
        note(&mut t, 2, 0, 1 << 30, 0, false);
        assert!(spans(&t).is_empty());
    }

    #[test]
    fn render_shows_stagger() {
        let mut t = Trace::new();
        note(&mut t, 0, 0, 0, 0, true);
        note(&mut t, 49, 0, 0, 0, false);
        note(&mut t, 50, 1, 1, 1, true);
        note(&mut t, 99, 1, 1, 1, false);
        let text = render(&t, 2, 20);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("P0  |0"));
        // P1's first half must be idle dots.
        let p1 = lines[2].split('|').nth(1).unwrap();
        assert!(p1.starts_with(".........."), "{p1}");
        assert!(p1.contains('1'));
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render(&Trace::new(), 4, 40), "");
    }

    #[test]
    fn end_to_end_from_simulation() {
        use crate::config::MachineConfig;
        use crate::machine::{run, Workload};
        use crate::program::{Instr, Program};
        let prog = |pid: u64| {
            Program::from_instrs(vec![
                Instr::Note(Label { pid, stmt: 0, start: true }),
                Instr::Compute(20),
                Instr::Note(Label { pid, stmt: 0, start: false }),
            ])
        };
        let w = Workload::dynamic((0..4).map(prog).collect());
        let out = run(&MachineConfig::with_processors(2), &w).unwrap();
        let text = render(&out.trace, 2, 40);
        assert!(text.contains("P0"));
        assert!(text.contains('0'));
        assert_eq!(spans(&out.trace).len(), 4);
    }
}

//! Ring-buffered structured trace events (the observability layer).
//!
//! The note trace ([`crate::trace::Trace`]) answers *did the right thing
//! happen* (dependence-order validation); this module answers *where the
//! cycles went*: every sync broadcast, wait episode, bus grant, bank
//! conflict, fault injection and watchdog transition is recorded as a
//! [`SimEvent`] with its cycle.
//!
//! Recording is **zero-cost when off**: an [`EventRing`] with capacity 0
//! (the default) rejects events with one branch and allocates nothing.
//! When enabled, the ring keeps the most recent `capacity` events and
//! counts what it evicted, so tracing a pathological run is bounded in
//! memory while still reporting that truncation happened.
//!
//! Equivalence discipline: the machine records events only at *stepped*
//! (non-quiet) cycles — exactly the cycles at which the per-cycle
//! reference stepper would have performed the same action — so the event
//! stream is bit-identical between [`crate::machine::StepMode`]s, and a
//! run with tracing enabled produces the same [`crate::stats::RunStats`]
//! as one with it disabled.

use crate::faults::FaultClass;
use crate::program::SyncVar;
use std::collections::VecDeque;

/// What happened (see [`SimEvent`] for the when).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// The data bus was granted to a processor's request for `dur` cycles
    /// (`poll` marks busy-wait traffic — the hot-spot component).
    DataGrant {
        /// Requesting processor.
        proc: usize,
        /// Cycles the bus is held.
        dur: u64,
        /// True when the transaction is a busy-wait poll or keyed retry.
        poll: bool,
    },
    /// A request arrived at a memory bank that was already busy or had a
    /// queue — a bank conflict (Cedar-style interleaving contention).
    BankConflict {
        /// Bank index.
        bank: usize,
        /// Requests already waiting at the bank (including the active
        /// one) when this request arrived.
        depth: usize,
    },
    /// A memory bank began servicing a request for `dur` cycles.
    BankService {
        /// Bank index.
        bank: usize,
        /// Processor whose request is serviced.
        proc: usize,
        /// Service latency in cycles.
        dur: u64,
    },
    /// The synchronization bus was granted to a broadcast for `dur`
    /// cycles (includes any injected delay).
    SyncGrant {
        /// Target synchronization variable.
        var: SyncVar,
        /// True for an atomic read-modify-write, false for a posted
        /// write.
        rmw: bool,
        /// Cycles the sync bus is held.
        dur: u64,
    },
    /// The inter-cluster bridge began forwarding a (possibly
    /// aggregated) variable update to every cluster's images, holding
    /// the bridge channel for `dur` cycles (clustered fabric only).
    BridgeForward {
        /// Variable whose current global value will be delivered.
        var: SyncVar,
        /// Cycles the bridge is held.
        dur: u64,
    },
    /// A broadcast performed: `val` reached the global variable (or was
    /// discarded as a stale redelivery when `stale`).
    SyncDeliver {
        /// Target synchronization variable.
        var: SyncVar,
        /// Value delivered.
        val: u64,
        /// True when the delivery was discarded as stale (an older write
        /// overtaken by drop/reorder recovery).
        stale: bool,
    },
    /// A processor began waiting on a synchronization condition.
    WaitBegin {
        /// Waiting processor.
        proc: usize,
        /// Variable waited on.
        var: SyncVar,
        /// True when the wait busy-polls through shared memory (costing
        /// bus traffic), false when it spins on a local image.
        through_memory: bool,
    },
    /// A processor's wait was satisfied after `waited` cycles.
    WaitEnd {
        /// Processor whose wait ended.
        proc: usize,
        /// Variable waited on.
        var: SyncVar,
        /// Cycles from wait begin to satisfaction.
        waited: u64,
    },
    /// A program (loop iteration) was dispatched to a processor.
    Dispatch {
        /// Receiving processor.
        proc: usize,
        /// Program index dispatched.
        program: usize,
    },
    /// A fault was injected.
    Fault {
        /// Fault class.
        class: FaultClass,
        /// Processor hit (`None` for bus-level faults).
        proc: Option<usize>,
        /// Magnitude in cycles (0 for drops/reorders).
        magnitude: u64,
    },
    /// The progress watchdog armed at run start with its silence bound.
    WatchdogArm {
        /// Cycles of silence tolerated before the watchdog fires.
        limit: u64,
    },
    /// The progress watchdog fired: the run is about to fail as a
    /// livelock after `silent_for` cycles without observable progress.
    WatchdogFire {
        /// Cycles since the last observable progress.
        silent_for: u64,
    },
    /// A local-image waiter detected a sequence gap (its predicate holds
    /// on the global variable but not on its image) and NACKed.
    GapNack {
        /// The gapped processor.
        proc: usize,
        /// Variable whose image missed a broadcast.
        var: SyncVar,
        /// NACKs issued so far in this wait episode (1-based).
        tries: u32,
    },
    /// The current global value was re-broadcast in response to a NACK
    /// (a fresh sequence tag; subject to faults like any broadcast).
    Retransmit {
        /// Variable being refreshed.
        var: SyncVar,
        /// Global value re-broadcast.
        val: u64,
    },
    /// The watchdog took a repair rung instead of firing: healable
    /// local images were force-synced from the global state.
    WatchdogRepair {
        /// Repair rungs taken so far this run (1-based).
        rung: u32,
        /// Image cells brought up to the global value.
        healed: u64,
    },
    /// An unretired program was reclaimed from a fail-stopped processor
    /// into the rescue pool.
    WorkReclaimed {
        /// The dead processor the work was pulled off.
        from: usize,
        /// Program index reclaimed.
        program: usize,
        /// Instruction index the survivor will resume from (nothing
        /// before it re-executes; nothing at or after it has retired).
        resume: usize,
    },
    /// Rescued work was handed directly to a preempted survivor (the
    /// swap path: no survivor was idle, so a spinning one suspended its
    /// own program to run the lowest rescued iteration).
    WorkReissued {
        /// The survivor now running the rescued program.
        to: usize,
        /// Program index reissued.
        program: usize,
        /// Instruction index execution resumes from.
        resume: usize,
    },
    /// The watchdog took a rescue rung instead of firing: dead
    /// processors' unretired work was reclaimed and the machine
    /// reconfigured to the survivor quorum.
    WatchdogRescue {
        /// Rescue rungs taken so far this run (1-based).
        rung: u32,
        /// Programs reclaimed on this rung.
        reclaimed: u64,
    },
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimEvent {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// What happened.
    pub kind: SimEventKind,
}

/// A bounded ring of [`SimEvent`]s. Capacity 0 (the [`Default`]) means
/// tracing is off: [`EventRing::record`] is a single predictable branch
/// and no memory is ever allocated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRing {
    capacity: usize,
    events: VecDeque<SimEvent>,
    dropped: u64,
}

impl EventRing {
    /// A disabled ring (records nothing).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled ring keeping the most recent `capacity` events
    /// (`capacity == 0` stays disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { capacity, events: VecDeque::with_capacity(capacity.min(4096)), dropped: 0 }
    }

    /// True when recording is on.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records an event; the oldest event is evicted (and counted in
    /// [`EventRing::dropped`]) once the ring is full. A disabled ring
    /// returns immediately: the check is force-inlined so every call
    /// site compiles to a single test-and-skip, while the actual push
    /// stays outlined to keep the simulator's hot loops compact.
    #[inline(always)]
    pub fn record(&mut self, cycle: u64, kind: SimEventKind) {
        if self.capacity == 0 {
            return;
        }
        self.push(cycle, kind);
    }

    #[inline(never)]
    fn push(&mut self, cycle: u64, kind: SimEventKind) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SimEvent { cycle, kind });
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &SimEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full (0 means the ring is a
    /// complete record of the run).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = EventRing::disabled();
        r.record(1, SimEventKind::Dispatch { proc: 0, program: 0 });
        assert!(!r.enabled());
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut r = EventRing::with_capacity(2);
        for p in 0..5 {
            r.record(p as u64, SimEventKind::Dispatch { proc: p, program: p });
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let cycles: Vec<u64> = r.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4], "most recent events are retained");
    }

    #[test]
    fn rings_compare_for_equivalence_tests() {
        let mut a = EventRing::with_capacity(8);
        let mut b = EventRing::with_capacity(8);
        let k = SimEventKind::SyncGrant { var: 3, rmw: false, dur: 1 };
        a.record(10, k);
        b.record(10, k);
        assert_eq!(a, b);
        b.record(11, k);
        assert_ne!(a, b);
    }
}

//! Deterministic fault injection for the simulated machine.
//!
//! The paper's Section 6 hardware is only attractive if its *imperfect*
//! behaviour — broadcasts that arrive late or out of order, local images
//! that lag the global value, processors that stall, a data bus with
//! jitter — still lets every synchronization scheme either complete
//! correctly or fail *detectably*. A [`FaultPlan`] describes how hard to
//! shake the machine; the [`crate::machine::Machine`] draws every fault
//! decision from a splitmix64 stream seeded by [`FaultPlan::seed`], so a
//! faulted run is still a pure function of `(config, workload)` and any
//! failure reproduces byte-for-byte from its seed.
//!
//! Fault classes (see [`FaultClass`]):
//!
//! * **BroadcastDelay** — a granted sync-bus broadcast holds the bus for
//!   extra cycles before performing.
//! * **BroadcastReorder** — the sync-bus arbiter grants a queued
//!   broadcast that is not the oldest one.
//! * **BroadcastDrop** — a performed broadcast is lost and re-queued for
//!   redelivery; redelivery is *bounded* per message, so delivery is
//!   eventually guaranteed (the machine never silently loses a wakeup
//!   forever — it degrades, detectably).
//! * **StaleImage** — a processor's local image of a sync variable lags
//!   the globally-performed write by a bounded window (updates to one
//!   image still apply in order).
//! * **ProcStall** — a processor freezes for a bounded interval (models
//!   an interrupt, a TLB walk, a slow micro-op drain).
//! * **DataJitter** — a data-bus/bank transaction takes extra cycles.
//! * **BroadcastLoss** — a performed broadcast updates the global
//!   variable but a processor's local-image update is *permanently*
//!   lost (a lossy sync-bus tap; the paper's §6 image coherence
//!   silently broken for one listener).
//! * **ProcFailStop** — at a planned cycle a processor permanently
//!   stops: it never dispatches, retires or answers the sync bus again.
//!   Its unretired iterations are stranded until the recovery ladder's
//!   rescue rung reclaims and reissues them to survivors.
//!
//! All classes except `BroadcastLoss` and `ProcFailStop` are *bounded*:
//! delivery, image freshness and stalls have hard caps, which is what
//! makes the outcome classification of `datasync_schemes::robustness`
//! total — a faulted run completes, is detected as
//! deadlocked/livelocked, times out at `max_cycles`, or produces an
//! order violation that the trace validator reports. There is no silent
//! fifth outcome. The *unbounded* classes never resolve on their own:
//! a lost image update (`BroadcastLoss`) never arrives, so a
//! local-image spinner wedges — promptly detected (and proven) with
//! recovery off, and healed by the gap-detection / NACK /
//! watchdog-repair ladder with [`crate::recovery::RecoveryPolicy`]
//! enabled; a fail-stopped processor (`ProcFailStop`) never retires its
//! claimed work, wedging every consumer of its values — detected with
//! recovery off, survived via work reclamation (the rescue rung) with
//! recovery on.

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Extra sync-bus hold cycles before a broadcast performs.
    BroadcastDelay,
    /// Out-of-order grant from the sync-bus queue.
    BroadcastReorder,
    /// Lost broadcast, re-queued with bounded redelivery.
    BroadcastDrop,
    /// Bounded lag between a global sync write and a local image update.
    StaleImage,
    /// Bounded processor freeze.
    ProcStall,
    /// Extra data-bus cycles per transaction.
    DataJitter,
    /// Permanent loss of one processor's local-image update (the global
    /// write still performs). Unbounded: without recovery a local-image
    /// waiter wedges and is detected as a deadlock.
    BroadcastLoss,
    /// Permanent processor death at a planned cycle: the victim stops
    /// dispatching, retiring and answering the sync bus forever.
    /// Unbounded: without recovery its unretired work strands every
    /// consumer, detected as a deadlock; with recovery the rescue rung
    /// reclaims the work and reissues it to survivors.
    ProcFailStop,
}

impl FaultClass {
    /// All classes, in matrix-column order.
    pub const ALL: [FaultClass; 8] = [
        FaultClass::BroadcastDelay,
        FaultClass::BroadcastReorder,
        FaultClass::BroadcastDrop,
        FaultClass::StaleImage,
        FaultClass::ProcStall,
        FaultClass::DataJitter,
        FaultClass::BroadcastLoss,
        FaultClass::ProcFailStop,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::BroadcastDelay => "bcast-delay",
            FaultClass::BroadcastReorder => "bcast-reorder",
            FaultClass::BroadcastDrop => "bcast-drop",
            FaultClass::StaleImage => "stale-image",
            FaultClass::ProcStall => "proc-stall",
            FaultClass::DataJitter => "data-jitter",
            FaultClass::BroadcastLoss => "bcast-loss",
            FaultClass::ProcFailStop => "proc-failstop",
        }
    }

    /// `true` when injected faults are guaranteed to resolve on their
    /// own (capped redeliveries, bounded windows). `BroadcastLoss`
    /// (a wakeup lost forever) and `ProcFailStop` (a participant lost
    /// forever) are the classes where they are not.
    pub fn bounded(self) -> bool {
        !matches!(self, FaultClass::BroadcastLoss | FaultClass::ProcFailStop)
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A deterministic fault-injection plan.
///
/// Probabilities are percentages (0 disables a class); magnitudes are
/// hard caps in cycles. [`FaultPlan::none`] (the [`Default`]) injects
/// nothing and adds no per-cycle cost to the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the splitmix64 stream every fault decision draws from.
    pub seed: u64,
    /// Percent chance a granted broadcast is delayed.
    pub broadcast_delay_pct: u32,
    /// Max extra hold cycles per delayed broadcast.
    pub broadcast_delay_max: u32,
    /// Percent chance the arbiter grants out of queue order.
    pub broadcast_reorder_pct: u32,
    /// Percent chance a performed broadcast is dropped and re-queued.
    pub broadcast_drop_pct: u32,
    /// Hard cap on redeliveries per broadcast (eventual delivery).
    pub max_redeliveries: u32,
    /// Percent chance a local-image update is deferred.
    pub stale_image_pct: u32,
    /// Max deferral window in cycles.
    pub stale_window_max: u32,
    /// Mean cycles between stall onsets per processor (0 = never).
    pub stall_mean_interval: u32,
    /// Max stall length in cycles.
    pub stall_max: u32,
    /// Percent chance a data transaction takes extra cycles.
    pub data_jitter_pct: u32,
    /// Max extra cycles per jittered transaction.
    pub data_jitter_max: u32,
    /// Percent chance a performed broadcast's update to one processor's
    /// local image is lost forever (drawn independently per processor;
    /// the global variable still updates).
    pub broadcast_loss_pct: u32,
    /// Processors that permanently fail-stop during the run (0 = none).
    /// Victims and their planned kill cycles are drawn from the fault
    /// stream at machine construction; at least one processor always
    /// survives (the count is clamped to `P - 1`).
    pub fail_stop_procs: u32,
    /// Upper bound on the planned kill cycle of each fail-stop victim
    /// (kills land in `1..=fail_stop_window`; must be >= 1 when
    /// `fail_stop_procs > 0`).
    pub fail_stop_window: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No faults at all.
    pub const fn none() -> Self {
        Self {
            seed: 0,
            broadcast_delay_pct: 0,
            broadcast_delay_max: 0,
            broadcast_reorder_pct: 0,
            broadcast_drop_pct: 0,
            max_redeliveries: 0,
            stale_image_pct: 0,
            stale_window_max: 0,
            stall_mean_interval: 0,
            stall_max: 0,
            data_jitter_pct: 0,
            data_jitter_max: 0,
            broadcast_loss_pct: 0,
            fail_stop_procs: 0,
            fail_stop_window: 0,
        }
    }

    /// `true` if any class can fire.
    pub fn is_active(&self) -> bool {
        self.broadcast_delay_pct > 0
            || self.broadcast_reorder_pct > 0
            || self.broadcast_drop_pct > 0
            || self.stale_image_pct > 0
            || self.stall_mean_interval > 0
            || self.data_jitter_pct > 0
            || self.broadcast_loss_pct > 0
            || self.fail_stop_procs > 0
    }

    /// A plan that exercises exactly one class at the given intensity
    /// (0..=100). Magnitudes scale with intensity so that `intensity`
    /// reads as "how hard is this class shaken".
    pub fn only(class: FaultClass, seed: u64, intensity: u32) -> Self {
        let mut plan = Self { seed, ..Self::none() };
        let pct = intensity.min(100);
        let mag = 4 + pct;
        match class {
            FaultClass::BroadcastDelay => {
                plan.broadcast_delay_pct = pct;
                plan.broadcast_delay_max = mag;
            }
            FaultClass::BroadcastReorder => {
                plan.broadcast_reorder_pct = pct;
            }
            FaultClass::BroadcastDrop => {
                plan.broadcast_drop_pct = pct;
                plan.max_redeliveries = 3;
            }
            FaultClass::StaleImage => {
                plan.stale_image_pct = pct;
                plan.stale_window_max = mag;
            }
            FaultClass::ProcStall => {
                if let Some(interval) = 4000u32.checked_div(pct) {
                    plan.stall_mean_interval = interval.max(20);
                    plan.stall_max = 2 * mag;
                }
            }
            FaultClass::DataJitter => {
                plan.data_jitter_pct = pct;
                plan.data_jitter_max = mag;
            }
            FaultClass::BroadcastLoss => {
                plan.broadcast_loss_pct = pct;
            }
            FaultClass::ProcFailStop => {
                if pct > 0 {
                    // One victim; a second at high intensity. Kills land
                    // early (more intensity = tighter window) so the dead
                    // processor strands as much unretired work as possible.
                    plan.fail_stop_procs = if pct >= 75 { 2 } else { 1 };
                    plan.fail_stop_window = 64 + 16 * (100 - pct);
                }
            }
        }
        plan
    }

    /// A plan with every *bounded* class active at the same intensity —
    /// the "chaos mode" used for worst-case shaking. The unbounded
    /// classes (`BroadcastLoss`, `ProcFailStop`) are excluded: chaos
    /// keeps the eventual-delivery and full-quorum guarantees so that
    /// chaos runs remain classifiable without recovery; permanent loss
    /// and fail-stop are swept as their own matrix rows.
    pub fn chaos(seed: u64, intensity: u32) -> Self {
        let mut plan = Self::only(FaultClass::BroadcastDelay, seed, intensity);
        for class in FaultClass::ALL[1..].iter().filter(|c| c.bounded()) {
            let single = Self::only(*class, seed, intensity);
            plan = Self {
                seed,
                broadcast_delay_pct: plan.broadcast_delay_pct,
                broadcast_delay_max: plan.broadcast_delay_max,
                broadcast_reorder_pct: plan.broadcast_reorder_pct.max(single.broadcast_reorder_pct),
                broadcast_drop_pct: plan.broadcast_drop_pct.max(single.broadcast_drop_pct),
                max_redeliveries: plan.max_redeliveries.max(single.max_redeliveries),
                stale_image_pct: plan.stale_image_pct.max(single.stale_image_pct),
                stale_window_max: plan.stale_window_max.max(single.stale_window_max),
                stall_mean_interval: plan.stall_mean_interval.max(single.stall_mean_interval),
                stall_max: plan.stall_max.max(single.stall_max),
                data_jitter_pct: plan.data_jitter_pct.max(single.data_jitter_pct),
                data_jitter_max: plan.data_jitter_max.max(single.data_jitter_max),
                broadcast_loss_pct: 0,
                fail_stop_procs: 0,
                fail_stop_window: 0,
            };
        }
        plan
    }

    /// Returns the plan with a different seed (same intensities).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Counts and magnitudes of injected faults in one run, recorded in
/// [`crate::stats::RunStats::faults`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Broadcasts granted with extra hold cycles.
    pub delayed_broadcasts: u64,
    /// Total extra hold cycles across delayed broadcasts.
    pub delay_cycles: u64,
    /// Out-of-order sync-bus grants.
    pub reordered_broadcasts: u64,
    /// Broadcast deliveries dropped (each is re-queued).
    pub dropped_broadcasts: u64,
    /// Local-image updates deferred past the global write.
    pub stale_image_updates: u64,
    /// Stall intervals begun.
    pub stalls: u64,
    /// Total cycles processors spent frozen by injected stalls.
    pub stall_cycles: u64,
    /// Data transactions that drew extra cycles.
    pub jittered_transactions: u64,
    /// Total extra data-path cycles.
    pub jitter_cycles: u64,
    /// Sum over faulted sync ops of (actual perform cycle − first grant
    /// cycle) − the fault-free service time: the total recovery latency.
    pub recovery_cycles: u64,
    /// Largest single recovery latency observed.
    pub recovery_max: u64,
    /// Broadcasts that finally delivered *after* a newer write to the
    /// same variable had already performed (possible under drops and
    /// reorders); recognized by their issue tag and discarded instead of
    /// regressing the variable.
    pub stale_deliveries_discarded: u64,
    /// Local-image updates permanently lost (`BroadcastLoss`): the
    /// global write performed but this processor's image never saw it.
    pub lost_image_updates: u64,
    /// Processors that permanently fail-stopped (`ProcFailStop`).
    pub fail_stops: u64,
}

impl FaultCounts {
    /// Total faults injected across all classes.
    pub fn total(&self) -> u64 {
        self.delayed_broadcasts
            + self.reordered_broadcasts
            + self.dropped_broadcasts
            + self.stale_image_updates
            + self.stalls
            + self.jittered_transactions
            + self.lost_image_updates
            + self.fail_stops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive() {
        assert!(!FaultPlan::none().is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn only_activates_one_class() {
        for class in FaultClass::ALL {
            let plan = FaultPlan::only(class, 1, 50);
            assert!(plan.is_active(), "{class} at 50 must be active");
            let zero = FaultPlan::only(class, 1, 0);
            assert!(!zero.is_active(), "{class} at 0 must be inert");
        }
        let p = FaultPlan::only(FaultClass::BroadcastDrop, 9, 30);
        assert_eq!(p.broadcast_drop_pct, 30);
        assert!(p.max_redeliveries > 0, "drops must be bounded");
        assert_eq!(p.stale_image_pct, 0);
    }

    #[test]
    fn chaos_covers_every_bounded_class() {
        let p = FaultPlan::chaos(7, 40);
        assert!(p.broadcast_delay_pct > 0);
        assert!(p.broadcast_reorder_pct > 0);
        assert!(p.broadcast_drop_pct > 0 && p.max_redeliveries > 0);
        assert!(p.stale_image_pct > 0);
        assert!(p.stall_mean_interval > 0);
        assert!(p.data_jitter_pct > 0);
        assert_eq!(p.broadcast_loss_pct, 0, "chaos keeps eventual delivery");
        assert_eq!(p.seed, 7);
        assert_eq!(p.with_seed(8).seed, 8);
    }

    #[test]
    fn loss_and_failstop_are_the_unbounded_classes() {
        let unbounded: Vec<FaultClass> =
            FaultClass::ALL.into_iter().filter(|c| !c.bounded()).collect();
        assert_eq!(unbounded, vec![FaultClass::BroadcastLoss, FaultClass::ProcFailStop]);
        let p = FaultPlan::only(FaultClass::BroadcastLoss, 3, 60);
        assert_eq!(p.broadcast_loss_pct, 60);
        assert!(p.is_active());
        assert_eq!(p.broadcast_drop_pct, 0);
    }

    #[test]
    fn failstop_plans_are_windowed_and_leave_a_survivor_count() {
        let p = FaultPlan::only(FaultClass::ProcFailStop, 5, 50);
        assert_eq!(p.fail_stop_procs, 1);
        assert!(p.fail_stop_window >= 1, "kills need a nonempty window");
        assert!(p.is_active());
        let hard = FaultPlan::only(FaultClass::ProcFailStop, 5, 100);
        assert_eq!(hard.fail_stop_procs, 2, "high intensity kills two");
        assert!(
            hard.fail_stop_window <= p.fail_stop_window,
            "harder plans kill earlier, stranding more work"
        );
        let chaos = FaultPlan::chaos(5, 80);
        assert_eq!(chaos.fail_stop_procs, 0, "chaos keeps a full quorum");
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = FaultClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultClass::ALL.len());
    }

    #[test]
    fn counts_total() {
        let c = FaultCounts { delayed_broadcasts: 2, stalls: 3, ..Default::default() };
        assert_eq!(c.total(), 5);
    }
}

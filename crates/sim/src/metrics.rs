//! Derived per-run metrics: where the cycles actually went.
//!
//! The paper's figures are all occupancy/traffic arguments — wait-spin
//! time (Fig 2), sync-bus load vs data-bus hot-spots (Section 6), keyed
//! access conflicts (Section 3) — so the simulator keeps the counters
//! needed to reproduce them on **every** run, not just traced ones:
//!
//! * **bus occupancy** — cycles each bus (and the banked memory modules)
//!   were held, charged at grant time, so the counters cost nothing per
//!   quiet cycle and are bit-identical between stepping modes;
//! * **per-processor wait-time histograms** — log2-bucketed durations of
//!   every completed wait episode (local-image spin or through-memory
//!   poll loop);
//! * **per-variable sync traffic** — posted writes, atomic RMWs, waits
//!   and busy-wait polls per synchronization variable, which the scheme
//!   layer aggregates into its key / SC / PC traffic counters.
//!
//! All counters are updated only at stepped (non-quiet) cycles, so
//! [`RunMetrics`] is part of the fast-forward equivalence contract along
//! with [`crate::stats::RunStats`] and [`crate::trace::Trace`].

use crate::stats::RunStats;
use std::fmt::Write as _;

/// Number of log2 buckets in a [`WaitHistogram`] (covers every u64
/// duration: bucket `i` holds durations in `[2^i, 2^(i+1))`).
pub const WAIT_BUCKETS: usize = 64;

/// A log2 histogram of wait-episode durations for one processor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitHistogram {
    /// `buckets[i]` counts episodes of `2^i ..= 2^(i+1)-1` cycles
    /// (bucket 0 holds 0- and 1-cycle episodes).
    pub buckets: [u64; WAIT_BUCKETS],
    /// Completed episodes.
    pub episodes: u64,
    /// Total cycles spent across completed episodes.
    pub total_cycles: u64,
    /// Longest completed episode.
    pub max_cycles: u64,
}

impl Default for WaitHistogram {
    fn default() -> Self {
        Self { buckets: [0; WAIT_BUCKETS], episodes: 0, total_cycles: 0, max_cycles: 0 }
    }
}

impl WaitHistogram {
    /// Records one completed wait episode of `cycles` duration.
    pub fn record(&mut self, cycles: u64) {
        let bucket = (u64::BITS - 1).saturating_sub(cycles.max(1).leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.episodes += 1;
        self.total_cycles += cycles;
        self.max_cycles = self.max_cycles.max(cycles);
    }

    /// Mean episode length (0.0 with no episodes).
    pub fn mean(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.episodes as f64
        }
    }

    /// Highest non-empty bucket index, if any episode was recorded.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// Traffic counters for one synchronization variable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VarTraffic {
    /// Posted writes issued (`SyncSet` / conditional set).
    pub posts: u64,
    /// Atomic read-modify-writes issued (`SyncRmw` / keyed access).
    pub rmws: u64,
    /// Wait instructions issued against the variable.
    pub waits: u64,
    /// Busy-wait polls / keyed retries actually granted the data bus —
    /// the variable's hot-spot traffic.
    pub polls: u64,
}

impl VarTraffic {
    /// Total operations touching the variable.
    pub fn total(&self) -> u64 {
        self.posts + self.rmws + self.waits + self.polls
    }
}

/// Private-cache and coherence-traffic counters, summed over all
/// processors' caches. All zero when the machine runs without caches
/// ([`crate::config::CacheModel::None`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTraffic {
    /// Requests satisfied by the issuing processor's own cache (no bus
    /// transaction).
    pub hits: u64,
    /// Requests that missed and fetched a line over the bus.
    pub misses: u64,
    /// Lines invalidated in other caches by writes (MESI BusRdX /
    /// upgrade snoops).
    pub invalidations: u64,
    /// Ownership upgrades of an already-cached shared line (MESI
    /// write hit on Shared — an address-only bus transaction).
    pub upgrades: u64,
    /// Update broadcasts written into other caches' copies (Dragon
    /// BusUpd).
    pub updates: u64,
    /// Dirty lines written back to memory on eviction.
    pub writebacks: u64,
    /// Misses served cache-to-cache by a snooping owner instead of from
    /// memory.
    pub c2c_transfers: u64,
}

impl CacheTraffic {
    /// Hit fraction of all cache-looked-up requests (0.0 when no
    /// request went through a cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Bus transactions that exist only because of coherence: upgrades,
    /// updates and writebacks (misses are counted separately — a
    /// cacheless machine pays them as plain accesses).
    pub fn coherence_traffic(&self) -> u64 {
        self.upgrades + self.updates + self.writebacks
    }

    /// Whether any request was looked up in a cache.
    pub fn active(&self) -> bool {
        self.hits + self.misses > 0
    }
}

/// Always-on derived metrics of one run (see module docs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Cycles the data bus was held by granted transactions.
    pub data_bus_busy: u64,
    /// Cycles the synchronization bus was held by granted broadcasts.
    /// On the clustered fabric this sums over every per-cluster bus, so
    /// like [`RunMetrics::bank_busy`] it can exceed the makespan —
    /// parallel buses overlap.
    pub sync_bus_busy: u64,
    /// Cycles the inter-cluster bridge was held by forwarded broadcasts
    /// (clustered fabric only; 0 on flat fabrics).
    pub bridge_busy: u64,
    /// Bank-service cycles summed over all memory banks (banked model
    /// only; can exceed the makespan because banks overlap).
    pub bank_busy: u64,
    /// Requests that arrived at an already-busy memory bank.
    pub bank_conflicts: u64,
    /// Private-cache hit/miss and coherence-traffic counters (all zero
    /// without caches).
    pub cache: CacheTraffic,
    /// Per-processor wait-episode histograms.
    pub wait: Vec<WaitHistogram>,
    /// Per-synchronization-variable traffic.
    pub sync_vars: Vec<VarTraffic>,
}

impl RunMetrics {
    /// Empty metrics for `procs` processors and `vars` sync variables.
    pub fn new(procs: usize, vars: usize) -> Self {
        Self {
            wait: vec![WaitHistogram::default(); procs],
            sync_vars: vec![VarTraffic::default(); vars],
            ..Self::default()
        }
    }

    /// Fraction of the makespan the data bus was held (0.0 for an empty
    /// run).
    pub fn data_bus_occupancy(&self, makespan: u64) -> f64 {
        occupancy(self.data_bus_busy, makespan)
    }

    /// Fraction of the makespan the sync bus was held. On the clustered
    /// fabric this is the *summed* per-cluster bus occupancy and can
    /// exceed 1.0; divide by the cluster count for a per-bus figure.
    pub fn sync_bus_occupancy(&self, makespan: u64) -> f64 {
        occupancy(self.sync_bus_busy, makespan)
    }

    /// Fraction of the makespan the inter-cluster bridge was held
    /// (0.0 on flat fabrics).
    pub fn bridge_occupancy(&self, makespan: u64) -> f64 {
        occupancy(self.bridge_busy, makespan)
    }

    /// Completed wait episodes across all processors.
    pub fn wait_episodes(&self) -> u64 {
        self.wait.iter().map(|h| h.episodes).sum()
    }

    /// Total cycles spent in completed wait episodes.
    pub fn wait_cycles(&self) -> u64 {
        self.wait.iter().map(|h| h.total_cycles).sum()
    }

    /// Longest completed wait episode on any processor.
    pub fn wait_max(&self) -> u64 {
        self.wait.iter().map(|h| h.max_cycles).max().unwrap_or(0)
    }

    /// Mean completed wait episode across all processors.
    pub fn wait_mean(&self) -> f64 {
        let n = self.wait_episodes();
        if n == 0 {
            0.0
        } else {
            self.wait_cycles() as f64 / n as f64
        }
    }

    /// Sum of traffic over every synchronization variable (the scheme
    /// layer labels this as key / SC / PC traffic).
    pub fn sync_traffic_total(&self) -> VarTraffic {
        let mut t = VarTraffic::default();
        for v in &self.sync_vars {
            t.posts += v.posts;
            t.rmws += v.rmws;
            t.waits += v.waits;
            t.polls += v.polls;
        }
        t
    }

    /// Renders the human-readable metrics table shown by
    /// `datasync metrics`.
    pub fn render_table(&self, stats: &RunStats) -> String {
        let mut out = String::new();
        let mk = stats.makespan;
        let _ = writeln!(
            out,
            "bus occupancy: data {:.1}%  sync {:.1}%  (makespan {mk} cycles)",
            self.data_bus_occupancy(mk) * 100.0,
            self.sync_bus_occupancy(mk) * 100.0,
        );
        if self.bridge_busy > 0 || stats.bridge_broadcasts > 0 {
            let _ = writeln!(
                out,
                "bridge: {:.1}% occupancy, {} forwarded, {} aggregated",
                self.bridge_occupancy(mk) * 100.0,
                stats.bridge_broadcasts,
                stats.bridge_coalesced,
            );
        }
        if self.bank_busy > 0 || self.bank_conflicts > 0 {
            let _ = writeln!(
                out,
                "banks: {} busy cycles, {} conflicts",
                self.bank_busy, self.bank_conflicts
            );
        }
        if self.cache.active() {
            let c = self.cache;
            let _ = writeln!(
                out,
                "caches: {:.1}% hit rate ({} hits / {} misses), {} invalidations, \
                 {} upgrades, {} updates, {} writebacks, {} cache-to-cache",
                c.hit_rate() * 100.0,
                c.hits,
                c.misses,
                c.invalidations,
                c.upgrades,
                c.updates,
                c.writebacks,
                c.c2c_transfers,
            );
        }
        let t = self.sync_traffic_total();
        let _ = writeln!(
            out,
            "sync traffic: {} posts  {} rmws  {} waits  {} polls over {} vars",
            t.posts,
            t.rmws,
            t.waits,
            t.polls,
            self.sync_vars.len()
        );
        let _ = writeln!(
            out,
            "waits: {} episodes, mean {:.1} cycles, max {}",
            self.wait_episodes(),
            self.wait_mean(),
            self.wait_max()
        );
        let top = self.wait.iter().filter_map(WaitHistogram::max_bucket).max();
        if let Some(top) = top {
            let _ = writeln!(out, "\nwait-time histogram (episodes per log2 bucket)");
            let mut header = format!("{:<6}", "proc");
            for b in 0..=top {
                header.push_str(&format!(" {:>6}", format!("2^{b}")));
            }
            let _ = writeln!(out, "{header}");
            for (p, h) in self.wait.iter().enumerate() {
                let mut row = format!("P{p:<5}");
                for b in 0..=top {
                    if h.buckets[b] == 0 {
                        row.push_str(&format!(" {:>6}", "."));
                    } else {
                        row.push_str(&format!(" {:>6}", h.buckets[b]));
                    }
                }
                let _ = writeln!(out, "{row}");
            }
        }
        out
    }
}

fn occupancy(busy: u64, makespan: u64) -> f64 {
    if makespan == 0 {
        0.0
    } else {
        busy as f64 / makespan as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = WaitHistogram::default();
        h.record(1); // bucket 0
        h.record(2); // bucket 1
        h.record(3); // bucket 1
        h.record(1024); // bucket 10
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.episodes, 4);
        assert_eq!(h.total_cycles, 1030);
        assert_eq!(h.max_cycles, 1024);
        assert_eq!(h.max_bucket(), Some(10));
        assert!((h.mean() - 257.5).abs() < 1e-9);
    }

    #[test]
    fn zero_length_episode_lands_in_bucket_zero() {
        let mut h = WaitHistogram::default();
        h.record(0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.max_cycles, 0);
    }

    #[test]
    fn occupancy_bounds() {
        let mut m = RunMetrics::new(2, 1);
        m.data_bus_busy = 50;
        m.sync_bus_busy = 10;
        assert!((m.data_bus_occupancy(100) - 0.5).abs() < 1e-12);
        assert!((m.sync_bus_occupancy(100) - 0.1).abs() < 1e-12);
        assert_eq!(m.data_bus_occupancy(0), 0.0);
    }

    #[test]
    fn render_table_shows_bridge_line_only_when_clustered_traffic_exists() {
        let mut m = RunMetrics::new(1, 1);
        let mut stats = RunStats { makespan: 100, ..Default::default() };
        assert!(!m.render_table(&stats).contains("bridge:"));
        m.bridge_busy = 20;
        stats.bridge_broadcasts = 7;
        stats.bridge_coalesced = 3;
        assert!((m.bridge_occupancy(100) - 0.2).abs() < 1e-12);
        let table = m.render_table(&stats);
        assert!(table.contains("bridge: 20.0% occupancy, 7 forwarded, 3 aggregated"), "{table}");
    }

    #[test]
    fn traffic_totals_sum() {
        let mut m = RunMetrics::new(1, 2);
        m.sync_vars[0] = VarTraffic { posts: 2, rmws: 1, waits: 3, polls: 4 };
        m.sync_vars[1] = VarTraffic { posts: 1, rmws: 0, waits: 0, polls: 0 };
        let t = m.sync_traffic_total();
        assert_eq!((t.posts, t.rmws, t.waits, t.polls), (3, 1, 3, 4));
        assert_eq!(t.total(), 11);
    }

    #[test]
    fn cache_traffic_math() {
        let mut c = CacheTraffic::default();
        assert!(!c.active());
        assert_eq!(c.hit_rate(), 0.0);
        c.hits = 75;
        c.misses = 25;
        c.upgrades = 3;
        c.updates = 4;
        c.writebacks = 5;
        c.c2c_transfers = 2;
        assert!(c.active());
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(c.coherence_traffic(), 12);
    }

    #[test]
    fn render_table_shows_cache_line_only_when_active() {
        let mut m = RunMetrics::new(1, 1);
        let stats = RunStats { makespan: 10, ..Default::default() };
        assert!(!m.render_table(&stats).contains("caches:"));
        m.cache.hits = 9;
        m.cache.misses = 1;
        let table = m.render_table(&stats);
        assert!(table.contains("caches: 90.0% hit rate"), "{table}");
    }

    #[test]
    fn render_table_mentions_everything() {
        let mut m = RunMetrics::new(2, 1);
        m.data_bus_busy = 5;
        m.sync_bus_busy = 2;
        m.wait[0].record(7);
        m.wait[1].record(100);
        m.sync_vars[0].posts = 1;
        let stats = RunStats { makespan: 100, ..Default::default() };
        let table = m.render_table(&stats);
        assert!(table.contains("bus occupancy"), "{table}");
        assert!(table.contains("sync traffic"), "{table}");
        assert!(table.contains("histogram"), "{table}");
        assert!(table.contains("2^6"), "100-cycle episode needs bucket 6: {table}");
    }
}

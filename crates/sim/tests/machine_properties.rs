//! Property-style tests of the machine model's invariants over random
//! (wait-free, hence always-terminating) programs, drawn from a seeded
//! `SplitMix64` stream so every run covers the same cases.

use datasync_sim::{
    run, run_reference, FaultPlan, Instr, Label, MachineConfig, MemoryModel, Program, SplitMix64,
    SyncTransport, Workload,
};

const CASES: usize = 64;

/// A random wait-free instruction.
fn instr(g: &mut SplitMix64) -> Instr {
    match g.below(5) {
        0 => Instr::Compute(g.range_u32(1, 19)),
        1 => Instr::Access { addr: g.below(64), write: g.chance_pct(50) },
        2 => Instr::SyncSet { var: g.range_usize(0, 7), val: g.range_u64(1, 99) },
        3 => Instr::SyncRmw { var: g.range_usize(0, 7) },
        _ => Instr::Note(Label {
            pid: g.below(32),
            stmt: g.range_u32(0, 3),
            start: g.chance_pct(50),
        }),
    }
}

fn programs(g: &mut SplitMix64) -> Vec<Program> {
    let n = g.range_usize(1, 9);
    (0..n)
        .map(|_| {
            let len = g.range_usize(0, 11);
            Program::from_instrs((0..len).map(|_| instr(g)).collect())
        })
        .collect()
}

fn config(g: &mut SplitMix64) -> MachineConfig {
    MachineConfig {
        processors: g.range_usize(1, 5),
        data_bus_latency: g.range_u32(1, 3),
        memory_latency: g.range_u32(0, 5),
        memory_model: if g.chance_pct(50) {
            MemoryModel::BusHeld
        } else {
            MemoryModel::Banked { banks: g.range_usize(1, 4) }
        },
        sync_transport: if g.chance_pct(50) {
            SyncTransport::DedicatedBus
        } else {
            SyncTransport::SharedMemory
        },
        coalesce_sync_writes: g.chance_pct(50),
        ..MachineConfig::default()
    }
}

/// Wait-free workloads always terminate, every processor's cycle
/// breakdown sums to the makespan, and every program is dispatched.
#[test]
fn conservation_and_termination() {
    let mut g = SplitMix64::new(0x0c01);
    for case in 0..CASES {
        let progs = programs(&mut g);
        let cfg = config(&mut g);
        let n = progs.len() as u64;
        let w = Workload::dynamic(progs);
        let out = run(&cfg, &w).expect("wait-free workloads terminate");
        assert_eq!(out.stats.dispatched, n, "case {case}");
        for (i, p) in out.stats.procs.iter().enumerate() {
            assert_eq!(p.total(), out.stats.makespan, "case {case} proc {i} breakdown");
        }
    }
}

/// Determinism: two runs of the same configuration agree exactly.
#[test]
fn deterministic() {
    let mut g = SplitMix64::new(0x0c02);
    for case in 0..CASES {
        let progs = programs(&mut g);
        let cfg = config(&mut g);
        let w = Workload::dynamic(progs);
        let a = run(&cfg, &w).expect("terminates");
        let b = run(&cfg, &w).expect("terminates");
        assert_eq!(a.stats, b.stats, "case {case}");
        assert_eq!(a.trace, b.trace, "case {case}");
        assert_eq!(a.sync_final, b.sync_final, "case {case}");
    }
}

/// Final sync-variable values are transport- and policy-independent
/// for RMW-only traffic (increments commute), and the RMW count is
/// exact.
#[test]
fn rmw_counts_exact() {
    let mut g = SplitMix64::new(0x0c03);
    for case in 0..CASES {
        let n = g.range_usize(1, 11);
        let increments: Vec<usize> = (0..n).map(|_| g.range_usize(0, 3)).collect();
        let cfg = config(&mut g);
        let progs: Vec<Program> = increments
            .iter()
            .map(|&v| Program::from_instrs(vec![Instr::SyncRmw { var: v }]))
            .collect();
        let w = Workload::dynamic(progs);
        let out = run(&cfg, &w).expect("terminates");
        assert_eq!(out.stats.rmw_ops, increments.len() as u64, "case {case}");
        for var in 0..4usize {
            let expect = increments.iter().filter(|&&v| v == var).count() as u64;
            let got = out.sync_final.get(var).copied().unwrap_or(0);
            assert_eq!(got, expect, "case {case} var {var}");
        }
    }
}

/// The event-driven fast-forward kernel is bit-identical to per-cycle
/// reference stepping over random workloads, configurations and fault
/// plans: same stats, same trace, same final sync state.
#[test]
fn fast_forward_equivalent_to_reference() {
    let mut g = SplitMix64::new(0x0c05);
    for case in 0..CASES {
        let progs = programs(&mut g);
        let mut cfg = config(&mut g);
        if g.chance_pct(50) {
            cfg.faults = FaultPlan::chaos(g.below(1 << 20), g.range_u32(10, 80));
        }
        let w = Workload::dynamic(progs);
        let fast = run(&cfg, &w).expect("wait-free workloads terminate");
        let slow = run_reference(&cfg, &w).expect("wait-free workloads terminate");
        assert_eq!(fast.stats, slow.stats, "case {case} stats");
        assert_eq!(fast.trace, slow.trace, "case {case} trace");
        assert_eq!(fast.sync_final, slow.sync_final, "case {case} sync_final");
    }
}

/// Static cyclic and blocked assignments run the same programs to the
/// same final sync state as dynamic dispatch (order-insensitive ops).
#[test]
fn assignment_mode_equivalence() {
    let mut g = SplitMix64::new(0x0c04);
    for case in 0..CASES {
        let n = g.range_usize(1, 11);
        let increments: Vec<usize> = (0..n).map(|_| g.range_usize(0, 3)).collect();
        let procs = g.range_usize(1, 4);
        let progs: Vec<Program> = increments
            .iter()
            .map(|&v| Program::from_instrs(vec![Instr::SyncRmw { var: v }]))
            .collect();
        let config = MachineConfig::with_processors(procs);
        let dynamic = run(&config, &Workload::dynamic(progs.clone())).expect("ok");
        let cyclic = run(&config, &Workload::static_cyclic(progs.clone(), procs)).expect("ok");
        let blocked = run(&config, &Workload::static_blocked(progs, procs)).expect("ok");
        assert_eq!(&dynamic.sync_final, &cyclic.sync_final, "case {case}");
        assert_eq!(&dynamic.sync_final, &blocked.sync_final, "case {case}");
    }
}

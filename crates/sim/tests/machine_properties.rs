//! Property-based tests of the machine model's invariants over random
//! (wait-free, hence always-terminating) programs.

use datasync_sim::{
    run, Instr, Label, MachineConfig, MemoryModel, Program, SyncTransport, Workload,
};
use proptest::prelude::*;

/// Strategy: a random wait-free instruction.
fn instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (1u32..20).prop_map(Instr::Compute),
        (0u64..64, prop::bool::ANY).prop_map(|(addr, write)| Instr::Access { addr, write }),
        (0usize..8, 1u64..100).prop_map(|(var, val)| Instr::SyncSet { var, val }),
        (0usize..8).prop_map(|var| Instr::SyncRmw { var }),
        (0u64..32, 0u32..4, prop::bool::ANY)
            .prop_map(|(pid, stmt, start)| Instr::Note(Label { pid, stmt, start })),
    ]
}

fn programs() -> impl Strategy<Value = Vec<Program>> {
    prop::collection::vec(
        prop::collection::vec(instr(), 0..12).prop_map(Program::from_instrs),
        1..10,
    )
}

fn configs() -> impl Strategy<Value = MachineConfig> {
    (
        1usize..6,
        1u32..4,
        0u32..6,
        prop_oneof![
            Just(MemoryModel::BusHeld),
            (1usize..5).prop_map(|banks| MemoryModel::Banked { banks })
        ],
        prop_oneof![Just(SyncTransport::DedicatedBus), Just(SyncTransport::SharedMemory)],
        prop::bool::ANY,
    )
        .prop_map(|(p, bus, mem, memory_model, transport, coalesce)| MachineConfig {
            processors: p,
            data_bus_latency: bus,
            memory_latency: mem,
            memory_model,
            sync_transport: transport,
            coalesce_sync_writes: coalesce,
            ..MachineConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Wait-free workloads always terminate, every processor's cycle
    /// breakdown sums to the makespan, and every program is dispatched.
    #[test]
    fn conservation_and_termination(progs in programs(), config in configs()) {
        let n = progs.len() as u64;
        let w = Workload::dynamic(progs);
        let out = run(&config, &w).expect("wait-free workloads terminate");
        prop_assert_eq!(out.stats.dispatched, n);
        for (i, p) in out.stats.procs.iter().enumerate() {
            prop_assert_eq!(p.total(), out.stats.makespan, "proc {} breakdown", i);
        }
    }

    /// Determinism: two runs of the same configuration agree exactly.
    #[test]
    fn deterministic(progs in programs(), config in configs()) {
        let w = Workload::dynamic(progs);
        let a = run(&config, &w).expect("terminates");
        let b = run(&config, &w).expect("terminates");
        prop_assert_eq!(a.stats, b.stats);
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.sync_final, b.sync_final);
    }

    /// Final sync-variable values are transport- and policy-independent
    /// for RMW-only traffic (increments commute), and the RMW count is
    /// exact.
    #[test]
    fn rmw_counts_exact(increments in prop::collection::vec(0usize..4, 1..12),
                        config in configs()) {
        let progs: Vec<Program> = increments
            .iter()
            .map(|&v| Program::from_instrs(vec![Instr::SyncRmw { var: v }]))
            .collect();
        let w = Workload::dynamic(progs);
        let out = run(&config, &w).expect("terminates");
        prop_assert_eq!(out.stats.rmw_ops, increments.len() as u64);
        for var in 0..4usize {
            let expect = increments.iter().filter(|&&v| v == var).count() as u64;
            let got = out.sync_final.get(var).copied().unwrap_or(0);
            prop_assert_eq!(got, expect, "var {}", var);
        }
    }

    /// Static cyclic and blocked assignments run the same programs to the
    /// same final sync state as dynamic dispatch (order-insensitive ops).
    #[test]
    fn assignment_mode_equivalence(increments in prop::collection::vec(0usize..4, 1..12),
                                   procs in 1usize..5) {
        let progs: Vec<Program> = increments
            .iter()
            .map(|&v| Program::from_instrs(vec![Instr::SyncRmw { var: v }]))
            .collect();
        let config = MachineConfig::with_processors(procs);
        let dynamic = run(&config, &Workload::dynamic(progs.clone())).expect("ok");
        let cyclic = run(&config, &Workload::static_cyclic(progs.clone(), procs)).expect("ok");
        let blocked = run(&config, &Workload::static_blocked(progs, procs)).expect("ok");
        prop_assert_eq!(&dynamic.sync_final, &cyclic.sync_final);
        prop_assert_eq!(&dynamic.sync_final, &blocked.sync_final);
    }
}

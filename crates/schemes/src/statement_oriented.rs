//! The statement-oriented scheme (Section 3.2): one statement counter per
//! carried-dependence source, Alliant FX/8 `Advance`/`Await` semantics.
//!
//! After process `i` completes source statement `Sa`, it `Advance`s
//! `SC[a]`: it waits until `SC[a] = i-1` and then sets it to `i` — the
//! "horizontal" sharing that serializes consecutive iterations on every
//! source statement. A sink `Sb` with distance `D` executes
//! `Await(D, a)`: wait until `SC[a] >= i - D`.
//!
//! Counters are stored shifted by one (`sc_enc = last_advanced_pid + 1`,
//! initially 0) so 0-based pids need no signed values.
//!
//! Branch rule (Example 3): every arm must advance every SC whose source
//! lives inside the branch, so the sequential handoff never stalls.

use crate::scheme::{emit_stmt, validation_arcs, CompiledLoop, CostFn, Scheme, SyncStorage};
use datasync_loopir::covering;
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::{BodyItem, LoopNest, StmtId};
use datasync_loopir::space::IterSpace;
use datasync_sim::{Instr, Pred, Program, SyncTransport, Workload};
use std::collections::HashMap;

/// The statement-oriented scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatementOriented;

impl StatementOriented {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self
    }
}

/// Emits `Advance(sc)` for iteration `pid`.
fn advance(prog: &mut Program, sc: usize, pid: u64) {
    prog.push(Instr::SyncWait { var: sc, pred: Pred::Eq(pid) });
    prog.push(Instr::SyncSet { var: sc, val: pid + 1 });
}

impl Scheme for StatementOriented {
    fn name(&self) -> String {
        "statement-oriented".to_string()
    }

    fn natural_transport(&self) -> SyncTransport {
        SyncTransport::DedicatedBus
    }

    fn sync_var_kind(&self) -> &'static str {
        "SC"
    }

    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop {
        let reduced = covering::reduce(nest, graph).linearized(space);
        let sources = reduced.carried_sources();
        let sc_of: HashMap<StmtId, usize> =
            sources.iter().enumerate().map(|(i, &s)| (s, i)).collect();

        // Waits before each sink: (sc index, distance), deduped to the
        // tightest (the smallest pid-d is the binding one per sc).
        let mut waits: Vec<Vec<(usize, i64)>> = vec![Vec::new(); nest.n_stmts()];
        for d in reduced.carried() {
            let sc = sc_of[&d.src];
            let dist = d.linear();
            let w = &mut waits[d.dst.0];
            match w.iter_mut().find(|(s, _)| *s == sc) {
                Some(existing) => existing.1 = existing.1.min(dist),
                None => w.push((sc, dist)),
            }
        }

        let n = space.count();
        let mut programs = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let indices = space.indices(pid);
            let mut prog = Program::new();
            for item in &nest.body {
                match item {
                    BodyItem::Stmt(s) => {
                        emit_one(&mut prog, nest, s.id, pid, &indices, &waits, &sc_of, cost);
                    }
                    BodyItem::Branch(b) => {
                        let arm = b.arm_taken(pid);
                        let mut advanced: Vec<usize> = Vec::new();
                        for s in &b.arms[arm] {
                            emit_one(&mut prog, nest, s.id, pid, &indices, &waits, &sc_of, cost);
                            if let Some(&sc) = sc_of.get(&s.id) {
                                advanced.push(sc);
                            }
                        }
                        // Branch rule: advance the SCs of sources in the
                        // arms not taken, ascending.
                        let mut missing: Vec<usize> = b
                            .stmts()
                            .filter_map(|s| sc_of.get(&s.id).copied())
                            .filter(|sc| !advanced.contains(sc))
                            .collect();
                        missing.sort_unstable();
                        for sc in missing {
                            advance(&mut prog, sc, pid);
                        }
                    }
                }
            }
            programs.push(prog);
        }

        CompiledLoop {
            workload: Workload::dynamic(programs),
            storage: SyncStorage {
                vars: sources.len() as u64,
                init_ops: sources.len() as u64,
                extra_data_cells: 0,
            },
            presets: Vec::new(),
            validation_arcs: validation_arcs(graph, space),
            instance_pairs: Vec::new(),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn emit_one(
    prog: &mut Program,
    nest: &LoopNest,
    s: StmtId,
    pid: u64,
    indices: &[i64],
    waits: &[Vec<(usize, i64)>],
    sc_of: &HashMap<StmtId, usize>,
    cost: Option<CostFn<'_>>,
) {
    // Sink first: Await every source this statement depends on.
    for &(sc, dist) in &waits[s.0] {
        if (dist as u64) <= pid {
            prog.push(Instr::SyncWait { var: sc, pred: Pred::Geq(pid - dist as u64 + 1) });
        }
    }
    let stmt = nest.stmt(s);
    let c = cost.map_or(stmt.cost, |f| f(s, pid));
    emit_stmt(prog, stmt, pid, indices, c, None);
    if let Some(&sc) = sc_of.get(&s) {
        advance(prog, sc, pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::{example2_nested, example3_branches, fig21_loop};
    use datasync_sim::MachineConfig;

    fn check(nest: &LoopNest, procs: usize) -> datasync_sim::RunOutcome {
        let graph = analyze(nest);
        let space = IterSpace::of(nest);
        let compiled = StatementOriented::new().compile(nest, &graph, &space);
        let out = compiled.run(&MachineConfig::with_processors(procs)).expect("simulation failed");
        let violations = out.trace.validate_order(&compiled.validation_arcs);
        assert!(violations.is_empty(), "order violations: {violations:?}");
        out
    }

    #[test]
    fn fig21_orders_all_deps() {
        check(&fig21_loop(40), 4);
    }

    #[test]
    fn storage_is_source_count() {
        let nest = fig21_loop(200);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let c = StatementOriented::new().compile(&nest, &graph, &space);
        // Sources after covering: S1..S4.
        assert_eq!(c.storage.vars, 4);
        assert_eq!(c.storage.init_ops, 4);
    }

    #[test]
    fn nested_loop_works() {
        check(&example2_nested(5, 6, 3), 4);
    }

    #[test]
    fn branches_advance_missing_sources() {
        check(&example3_branches(60, 2), 4);
    }

    #[test]
    fn advance_serializes_consecutive_iterations() {
        // The SC handoff forces iteration i's Advance after i-1's even
        // when the dependence distance is large: a slow iteration delays
        // every later one (the Section 4 criticism).
        let nest = fig21_loop(24);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let slowdown: crate::scheme::CostFn<'_> = &|_s, pid| if pid == 5 { 400 } else { 4 };
        let compiled = StatementOriented::new().compile_with(&nest, &graph, &space, Some(slowdown));
        let out = compiled.run(&MachineConfig::with_processors(8)).unwrap();
        // S2 at pid 8 awaits SC[S1] >= 7, i.e. iteration 6 advanced SC[S1];
        // the sequential Advance handoff forces that after iteration 5's
        // slow S1 completed — even though no data dependence links them.
        let slow_s1_end = out.trace.end_of(0, 5).unwrap();
        let s2_at_8_start = out.trace.start_of(1, 8).unwrap();
        assert!(
            s2_at_8_start > slow_s1_end,
            "statement-oriented must stall S2@8 ({s2_at_8_start}) past slow S1@5 ({slow_s1_end})"
        );
    }
}

//! Scheme degradation under deterministic fault injection.
//!
//! The paper argues (Section 6) that its process-oriented scheme tolerates
//! the realities of a broadcast synchronization bus. This module stresses
//! that claim: it sweeps every scheme across every fault class at several
//! intensities and classifies each run into exactly one of seven outcomes —
//! completes-and-validates, completes-after-self-healing ([`Outcome::
//! Recovered`]), completes-after-fail-stop-reconfiguration ([`Outcome::
//! Reconfigured`]), completes-on-the-conservative-fallback ([`Outcome::
//! Degraded`]), detected deadlock, timeout, or dependence-order violation.
//! There is no silent eighth outcome: the simulator's progress watchdog
//! plus the `max_cycles` cap guarantee every run terminates, and trace
//! validation runs on every completion — including recovered and degraded
//! ones, so a healed run that reordered dependences would still be caught.
//!
//! With [`RecoveryPolicy::Full`], a run the machine cannot heal (its
//! wait-for proof shows an edge unsatisfied even globally — e.g. a
//! conditional post whose guard read a lossy image) is re-run under a
//! conservative barrier-phased fallback scheme: correctness is preserved
//! at a performance cost, which is exactly what "graceful degradation"
//! means here.

use crate::barrier_phased::BarrierPhased;
use crate::instance_based::InstanceBased;
use crate::process_oriented::ProcessOriented;
use crate::reference_based::ReferenceBased;
use crate::scheme::{CompiledLoop, Scheme};
use crate::statement_oriented::StatementOriented;
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_sim::{FabricKind, FaultClass, FaultPlan, MachineConfig, SimError};

/// The exhaustive classification of one faulted run.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The run finished and its trace satisfies every dependence
    /// obligation.
    Completed {
        /// Total cycles.
        makespan: u64,
        /// Faults actually injected.
        faults_injected: u64,
        /// Worst single-broadcast recovery latency (cycles).
        recovery_max: u64,
        /// Fraction of the makespan the data bus was held.
        data_bus_occupancy: f64,
        /// Fraction of the makespan the sync bus was held.
        sync_bus_occupancy: f64,
        /// Longest completed wait episode (cycles).
        wait_max: u64,
    },
    /// The run finished and validated, but only because the self-healing
    /// ladder intervened (gap NACKs and/or watchdog repairs fired).
    Recovered {
        /// Total cycles.
        makespan: u64,
        /// Recovery actions taken (gap NACKs + watchdog repairs).
        actions: u64,
        /// Watchdog repair rungs among those actions.
        watchdog_repairs: u64,
        /// Longest healed wait episode (cycles) — the recovery latency.
        heal_latency_max: u64,
    },
    /// The run finished and validated, but only because the machine
    /// reconfigured around a fail-stopped processor: the rescue rung
    /// reclaimed the dead processor's unretired work and reissued it to
    /// the survivor quorum. One rung below [`Outcome::Recovered`] on the
    /// ladder — the machine lost a participant, not just messages.
    Reconfigured {
        /// Total cycles.
        makespan: u64,
        /// Fail-stop rescue rungs that fired.
        rescues: u64,
        /// Unretired programs reclaimed from dead processors.
        reclaimed: u64,
        /// Processors that fail-stopped.
        fail_stops: u64,
    },
    /// The primary scheme wedged beyond repair, but the conservative
    /// fallback scheme completed and validated the same loop: correctness
    /// was preserved at a performance cost.
    Degraded {
        /// Fallback scheme that carried the run.
        fallback: String,
        /// Fallback makespan (cycles).
        makespan: u64,
        /// What the primary scheme did (its matrix cell).
        original: String,
    },
    /// The machine proved no processor can ever progress again (includes
    /// watchdog-detected livelock).
    DeadlockDetected {
        /// Detection cycle.
        cycle: u64,
        /// Stuck processors.
        spinning: Vec<usize>,
    },
    /// The run hit the `max_cycles` safety cap without a deadlock proof.
    TimedOut {
        /// The cap that was hit.
        max_cycles: u64,
    },
    /// The run finished but the trace violates dependence order.
    OrderViolation {
        /// Number of violated obligations.
        violations: usize,
        /// First violation, human-readable.
        first: String,
    },
}

impl Outcome {
    /// Short cell label for the degradation matrix.
    pub fn cell(&self) -> String {
        match self {
            Outcome::Completed { recovery_max, wait_max, .. } => {
                let mut tags = Vec::new();
                if *recovery_max > 0 {
                    tags.push(format!("r{recovery_max}"));
                }
                if *wait_max > 0 {
                    tags.push(format!("w{wait_max}"));
                }
                if tags.is_empty() {
                    "ok".into()
                } else {
                    format!("ok({})", tags.join(","))
                }
            }
            Outcome::Recovered { actions, watchdog_repairs, heal_latency_max, .. } => {
                if *watchdog_repairs > 0 {
                    format!("recovered(a{actions},rep{watchdog_repairs},h{heal_latency_max})")
                } else {
                    format!("recovered(a{actions},h{heal_latency_max})")
                }
            }
            Outcome::Reconfigured { rescues, reclaimed, fail_stops, .. } => {
                format!("reconfigured(x{rescues},p{reclaimed},d{fail_stops})")
            }
            Outcome::Degraded { fallback, .. } => format!("DEGRADED({fallback})"),
            Outcome::DeadlockDetected { .. } => "DEADLOCK".into(),
            Outcome::TimedOut { .. } => "TIMEOUT".into(),
            Outcome::OrderViolation { violations, .. } => format!("VIOLATED({violations})"),
        }
    }

    /// True only for a clean completion (no recovery intervention).
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Completed { .. })
    }

    /// True for every outcome that preserved correctness: a clean
    /// completion, a self-healed one, a survivor-quorum reconfiguration,
    /// or a fallback completion. These never lose or reorder work; the
    /// others do (or never finish).
    pub fn is_acceptable(&self) -> bool {
        matches!(
            self,
            Outcome::Completed { .. }
                | Outcome::Recovered { .. }
                | Outcome::Reconfigured { .. }
                | Outcome::Degraded { .. }
        )
    }
}

/// One row of the degradation matrix: a scheme under one fault class at
/// each swept intensity.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// Scheme name.
    pub scheme: String,
    /// Sync-fabric backend the row's runs used (`dedicated` / `shared` /
    /// `ideal`).
    pub fabric: String,
    /// Fault class label (or "chaos" for all classes at once).
    pub fault: String,
    /// One outcome per swept intensity.
    pub outcomes: Vec<Outcome>,
}

/// The full degradation matrix.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Intensities swept (percent, column headers).
    pub intensities: Vec<u8>,
    /// Rows, grouped by scheme then fault class.
    pub rows: Vec<MatrixRow>,
    /// The fault seed every cell's plan was built from.
    pub seed: u64,
    /// Loop iteration count the sweep ran.
    pub iterations: i64,
    /// Processor count of every machine in the sweep.
    pub processors: usize,
    /// Recovery policy label (`off` / `repair-only` / `full`).
    pub recovery: String,
}

/// Runs one compiled loop on one config and classifies the result.
///
/// Total by construction: every [`SimError`] maps to a variant
/// (`BadConfig` is a caller bug and panics loudly rather than being
/// silently folded into a fault outcome), and every completion is
/// validated.
pub fn classify_run(compiled: &CompiledLoop, config: &MachineConfig) -> Outcome {
    match compiled.run(config) {
        Ok(out) => {
            // Recovered runs re-validate dependence order like any other:
            // a heal that broke ordering would surface as a violation, not
            // be papered over.
            let problems = compiled.validate(&out);
            if !problems.is_empty() {
                return Outcome::OrderViolation {
                    violations: problems.len(),
                    first: problems.into_iter().next().unwrap_or_default(),
                };
            }
            // Participant loss outranks message loss: a run that needed a
            // fail-stop rescue is Reconfigured even if gap NACKs or
            // watchdog repairs also fired along the way.
            if out.stats.recovery.reconfigured() {
                return Outcome::Reconfigured {
                    makespan: out.stats.makespan,
                    rescues: out.stats.recovery.fail_stop_rescues,
                    reclaimed: out.stats.recovery.programs_reclaimed,
                    fail_stops: out.stats.faults.fail_stops,
                };
            }
            if out.stats.recovery.actions() > 0 {
                return Outcome::Recovered {
                    makespan: out.stats.makespan,
                    actions: out.stats.recovery.actions(),
                    watchdog_repairs: out.stats.recovery.watchdog_repairs,
                    heal_latency_max: out.stats.recovery.heal_latency_max,
                };
            }
            Outcome::Completed {
                makespan: out.stats.makespan,
                faults_injected: out.stats.faults.total(),
                recovery_max: out.stats.faults.recovery_max,
                data_bus_occupancy: out.metrics.data_bus_occupancy(out.stats.makespan),
                sync_bus_occupancy: out.metrics.sync_bus_occupancy(out.stats.makespan),
                wait_max: out.metrics.wait_max(),
            }
        }
        Err(SimError::Deadlock { cycle, spinning, .. }) => {
            Outcome::DeadlockDetected { cycle, spinning }
        }
        Err(SimError::Timeout { max_cycles }) => Outcome::TimedOut { max_cycles },
        Err(SimError::BadConfig(msg)) => {
            panic!("robustness sweep built an invalid config: {msg}")
        }
    }
}

/// [`classify_run`], plus the degradation rung: when the config's
/// recovery policy allows degrading and the primary scheme wedged
/// (deadlock or timeout), the same loop is re-run under the conservative
/// `fallback` scheme — abort-and-restart semantics, matching a runtime
/// that switches synchronization modes after a fatal sync-bus fault. A
/// fallback completion (clean or self-healed) reports
/// [`Outcome::Degraded`]; if the fallback fails too, the primary's
/// failure stands.
pub fn classify_with_fallback(
    compiled: &CompiledLoop,
    config: &MachineConfig,
    fallback_name: &str,
    fallback: &CompiledLoop,
    fallback_config: &MachineConfig,
) -> Outcome {
    let first = classify_run(compiled, config);
    if !config.recovery.degrades()
        || !matches!(first, Outcome::DeadlockDetected { .. } | Outcome::TimedOut { .. })
    {
        return first;
    }
    match classify_run(fallback, fallback_config) {
        Outcome::Completed { makespan, .. }
        | Outcome::Recovered { makespan, .. }
        | Outcome::Reconfigured { makespan, .. } => Outcome::Degraded {
            fallback: fallback_name.to_string(),
            makespan,
            original: first.cell(),
        },
        _ => first,
    }
}

/// The scheme roster the sweep exercises (all four paper families; the
/// process-oriented scheme in its improved variant).
fn roster(processors: usize, x: usize) -> Vec<Box<dyn Scheme>> {
    let mut v: Vec<Box<dyn Scheme>> = vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::new(x)),
    ];
    if processors.is_power_of_two() {
        v.push(Box::new(BarrierPhased::new(processors)));
    }
    v
}

/// Sweeps every scheme x every fault class (plus combined chaos) x every
/// intensity on the paper's Fig 2.1 workload and classifies each run.
///
/// `seed` drives all fault randomness: the same seed reproduces the same
/// matrix bit for bit. `max_cycles` bounds each run (keep it small enough
/// that a wedged run times out quickly).
///
/// Each cell is an independent simulation (its own machine, its own
/// fault stream), so they are classified in parallel via
/// [`datasync_core::par::par_map`]; results come back in job order, so
/// the matrix is bit-identical to a serial sweep.
pub fn sweep(iterations: i64, base: &MachineConfig, intensities: &[u8], seed: u64) -> Matrix {
    sweep_fabrics(iterations, base, intensities, seed, &[base.sync_fabric])
}

/// [`sweep`] with an explicit fabric axis: the whole scheme x fault x
/// intensity grid is repeated once per [`FabricKind`] in `fabrics`,
/// quantifying how the §6 transport choice changes fault tolerance (the
/// ideal fabric has no lossy bus to fault; the shared fabric exposes
/// sync traffic to data-bus contention on top of the injected faults).
pub fn sweep_fabrics(
    iterations: i64,
    base: &MachineConfig,
    intensities: &[u8],
    seed: u64,
    fabrics: &[FabricKind],
) -> Matrix {
    let nest = fig21_loop(iterations);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let x = base.processors.max(2);
    // Compile once per scheme; every cell borrows its compilation.
    let compiled: Vec<(String, FabricKind, CompiledLoop, MachineConfig)> = fabrics
        .iter()
        .flat_map(|&kind| roster(base.processors, x).into_iter().map(move |scheme| (kind, scheme)))
        .map(|(kind, scheme)| {
            let loop_ = scheme.compile(&nest, &graph, &space);
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                sync_fabric: kind,
                ..base.clone()
            };
            (scheme.name(), kind, loop_, config)
        })
        .collect();
    // The degradation target: the most conservative scheme available —
    // barrier-phased where the processor count allows it, otherwise the
    // statement-oriented baseline. Compiled once; only consulted when the
    // policy allows degrading and a primary wedges beyond repair.
    let fallback_scheme: Box<dyn Scheme> = if base.processors.is_power_of_two() {
        Box::new(BarrierPhased::new(base.processors))
    } else {
        Box::new(StatementOriented::new())
    };
    let fallback_name = fallback_scheme.name();
    let fallback_loop = fallback_scheme.compile(&nest, &graph, &space);
    let fallback_base =
        MachineConfig { sync_transport: fallback_scheme.natural_transport(), ..base.clone() };
    let mut classes: Vec<(String, Option<FaultClass>)> = FaultClass::ALL
        .iter()
        .map(|&class| (class.label().to_string(), Some(class)))
        .collect();
    classes.push(("chaos".into(), None));
    let mut jobs: Vec<(&CompiledLoop, MachineConfig, MachineConfig)> = Vec::new();
    for (_, kind, loop_, config) in &compiled {
        for (_, class) in &classes {
            for &i in intensities {
                let plan = match class {
                    Some(c) => FaultPlan::only(*c, seed, i.into()),
                    None => FaultPlan::chaos(seed, i.into()),
                };
                // The fallback runs on the same fabric as the primary:
                // degradation swaps the scheme, not the hardware.
                let fb = MachineConfig { sync_fabric: *kind, ..fallback_base.clone() };
                // Raise (never lower) each cell's cycle cap to what its
                // machine and fault magnitudes can legitimately need: a
                // flat cap misreports big or heavily-faulted cells as
                // TIMEOUT when they are merely slow.
                let mut cell_cfg = config.clone().with_faults(plan);
                let n_progs = loop_.workload.programs.len();
                cell_cfg.max_cycles = cell_cfg.max_cycles.max(cell_cfg.scaled_max_cycles(n_progs));
                let mut fb_cfg = fb.with_faults(plan);
                fb_cfg.max_cycles = fb_cfg.max_cycles.max(fb_cfg.scaled_max_cycles(n_progs));
                jobs.push((loop_, cell_cfg, fb_cfg));
            }
        }
    }
    let mut outcomes = datasync_core::par::par_map(jobs, |(loop_, config, fb_config)| {
        classify_with_fallback(loop_, &config, &fallback_name, &fallback_loop, &fb_config)
    })
    .into_iter();
    let mut rows = Vec::new();
    for (name, kind, _, _) in &compiled {
        for (label, _) in &classes {
            rows.push(MatrixRow {
                scheme: name.clone(),
                fabric: kind.to_string(),
                fault: label.clone(),
                outcomes: intensities
                    .iter()
                    .map(|_| outcomes.next().expect("one per cell"))
                    .collect(),
            });
        }
    }
    Matrix {
        intensities: intensities.to_vec(),
        rows,
        seed,
        iterations,
        processors: base.processors,
        recovery: base.recovery.to_string(),
    }
}

/// Renders the matrix as an aligned text table. The fabric column only
/// appears when the matrix actually swept more than one fabric, keeping
/// single-fabric output (the common case) unchanged in shape.
pub fn render(matrix: &Matrix) -> String {
    let multi_fabric = matrix.rows.windows(2).any(|w| w[0].fabric != w[1].fabric);
    let mut header = vec!["scheme".to_string()];
    if multi_fabric {
        header.push("fabric".to_string());
    }
    header.push("fault".to_string());
    header.extend(matrix.intensities.iter().map(|i| format!("{i}%")));
    let mut body: Vec<Vec<String>> = Vec::with_capacity(matrix.rows.len());
    for row in &matrix.rows {
        let mut cells = vec![row.scheme.clone()];
        if multi_fabric {
            cells.push(row.fabric.clone());
        }
        cells.push(row.fault.clone());
        cells.extend(row.outcomes.iter().map(Outcome::cell));
        body.push(cells);
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in &body {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::new();
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                s.push_str("  ");
            }
            s.push_str(cell);
            if c + 1 < cols {
                for _ in cell.len()..widths[c] {
                    s.push(' ');
                }
            }
        }
        s
    };
    let mut out = String::new();
    out.push_str(&fmt_row(&header));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    let mut last_scheme = String::new();
    for row in body {
        if row[0] != last_scheme && !last_scheme.is_empty() {
            out.push('\n');
        }
        last_scheme.clone_from(&row[0]);
        out.push_str(&fmt_row(&row));
        out.push('\n');
    }
    out
}

impl Matrix {
    /// Renders the matrix as a machine-readable JSON document (hand-rolled
    /// like every serializer in this workspace — the repo is
    /// dependency-free by policy).
    ///
    /// Schema version 2: the document carries everything needed to replay
    /// any cell byte-exact from the JSON alone — the sweep parameters
    /// (`seed`, `iterations`, `processors`, `recovery`, `intensities`)
    /// plus, per row, the fault seed its plans were built from. A cell is
    /// replayed as `FaultPlan::only(class_of(row.fault), row.seed,
    /// intensity)` (or `FaultPlan::chaos` for the `chaos` row) on a
    /// machine with the documented processor count and recovery policy.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"schema_version\": 2,\n");
        let _ = write!(
            out,
            "  \"seed\": {},\n  \"iterations\": {},\n  \"processors\": {},\n  \
             \"recovery\": \"{}\",\n",
            self.seed,
            self.iterations,
            self.processors,
            esc(&self.recovery)
        );
        out.push_str("  \"intensities\": [");
        for (i, pct) in self.intensities.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{pct}");
        }
        out.push_str("],\n  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"scheme\": \"{}\", \"fabric\": \"{}\", \"fault\": \"{}\", \
                 \"seed\": {}, \"cells\": [",
                esc(&row.scheme),
                esc(&row.fabric),
                esc(&row.fault),
                self.seed
            );
            for (j, o) in row.outcomes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\"", esc(&o.cell()));
            }
            out.push(']');
            out.push('}');
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let t = Tally::of(self);
        let _ = write!(
            out,
            "  ],\n  \"tally\": {{\"ok\": {}, \"recovered\": {}, \"reconfigured\": {}, \
             \"degraded\": {}, \"deadlock\": {}, \"timeout\": {}, \"violated\": {}}}\n}}\n",
            t.ok, t.recovered, t.reconfigured, t.degraded, t.deadlock, t.timeout, t.violated
        );
        out
    }
}

/// Summary counts over a matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tally {
    /// Runs that completed and validated without recovery intervention.
    pub ok: usize,
    /// Runs the self-healing ladder carried to completion.
    pub recovered: usize,
    /// Runs that survived a fail-stopped processor by reconfiguring to
    /// the survivor quorum.
    pub reconfigured: usize,
    /// Runs rescued by the conservative fallback scheme.
    pub degraded: usize,
    /// Detected deadlocks.
    pub deadlock: usize,
    /// Timeouts.
    pub timeout: usize,
    /// Order violations.
    pub violated: usize,
}

impl Tally {
    /// Counts outcomes across all rows.
    pub fn of(matrix: &Matrix) -> Self {
        let mut t = Tally::default();
        for row in &matrix.rows {
            for o in &row.outcomes {
                match o {
                    Outcome::Completed { .. } => t.ok += 1,
                    Outcome::Recovered { .. } => t.recovered += 1,
                    Outcome::Reconfigured { .. } => t.reconfigured += 1,
                    Outcome::Degraded { .. } => t.degraded += 1,
                    Outcome::DeadlockDetected { .. } => t.deadlock += 1,
                    Outcome::TimedOut { .. } => t.timeout += 1,
                    Outcome::OrderViolation { .. } => t.violated += 1,
                }
            }
        }
        t
    }

    /// Total classified runs.
    pub fn total(&self) -> usize {
        self.ok
            + self.recovered
            + self.reconfigured
            + self.degraded
            + self.deadlock
            + self.timeout
            + self.violated
    }

    /// Runs that preserved correctness (ok + recovered + reconfigured +
    /// degraded).
    pub fn acceptable(&self) -> usize {
        self.ok + self.recovered + self.reconfigured + self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_sim::{RecoveryPolicy, SyncTransport};

    fn base() -> MachineConfig {
        let mut c = MachineConfig::with_processors(4);
        c.max_cycles = 3_000_000;
        c
    }

    #[test]
    fn sweep_classifies_every_run() {
        let m = sweep(12, &base(), &[0, 40], 99);
        // 5 schemes (4 procs = power of two, barrier included) x 9 fault
        // rows (8 classes + chaos) x 2 intensities.
        assert_eq!(m.rows.len(), 5 * 9);
        let t = Tally::of(&m);
        assert_eq!(t.total(), 5 * 9 * 2, "no run may go unclassified");
    }

    #[test]
    fn zero_intensity_column_is_all_ok() {
        let m = sweep(12, &base(), &[0], 7);
        for row in &m.rows {
            assert!(
                row.outcomes[0].is_ok(),
                "{} under {} failed fault-free",
                row.scheme,
                row.fault
            );
        }
    }

    #[test]
    fn schemes_survive_moderate_chaos() {
        // The paper's schemes are real synchronization: *bounded* delivery
        // faults slow them down but cannot break them. Broadcast loss is
        // the deliberate exception — with recovery off (the default) it
        // wedges the dedicated-bus schemes, and that wedge must be
        // detected, not silent.
        let m = sweep(10, &base(), &[50], 3);
        let t = Tally::of(&m);
        assert_eq!(t.violated, 0, "faults must never reorder dependences");
        assert_eq!(t.recovered + t.reconfigured + t.degraded, 0, "recovery is off by default");
        let unbounded: Vec<&str> =
            FaultClass::ALL.iter().filter(|c| !c.bounded()).map(|c| c.label()).collect();
        for row in &m.rows {
            let wedged = row.outcomes.iter().filter(|o| !o.is_ok()).count();
            if unbounded.contains(&row.fault.as_str()) {
                continue; // loss and fail-stop are unbounded by design; split out below
            }
            assert_eq!(wedged, 0, "{} under bounded {} must survive", row.scheme, row.fault);
        }
        assert!(t.deadlock > 0, "50% broadcast loss must wedge at least one dedicated-bus scheme");
        let failstop_wedged = m
            .rows
            .iter()
            .filter(|r| r.fault == FaultClass::ProcFailStop.label())
            .any(|r| r.outcomes.iter().any(|o| !o.is_acceptable()));
        assert!(failstop_wedged, "a fail-stopped processor must wedge with recovery off");
    }

    #[test]
    fn recovery_clears_every_wedge_in_the_matrix() {
        // The before/after story: the same sweep that deadlocks under
        // broadcast loss with recovery off has zero DEADLOCK/TIMEOUT
        // cells with the full ladder armed — every loss cell completes
        // as ok, recovered, or (beyond repair) degraded.
        let cfg = MachineConfig { recovery: RecoveryPolicy::Full, ..base() };
        let m = sweep(10, &cfg, &[0, 50, 75], 3);
        let t = Tally::of(&m);
        assert_eq!(t.violated, 0, "healed runs must still validate dependence order");
        assert_eq!(t.deadlock, 0, "full recovery must leave no deadlock cells");
        assert_eq!(t.timeout, 0, "full recovery must leave no timeout cells");
        assert!(t.recovered > 0, "loss cells must show healed runs");
        assert!(t.reconfigured > 0, "fail-stop cells must show survivor-quorum reconfigurations");
        assert_eq!(t.acceptable(), t.total());
    }

    #[test]
    fn failstop_cells_reconfigure_under_full_recovery() {
        // The before/after story for participant loss: every fail-stop
        // cell that wedges with recovery off finishes with the full
        // ladder armed — and the rescued completions re-validated their
        // dependence obligations inside classify_run like any other.
        let off = sweep(10, &base(), &[50, 100], 3);
        let wedged_off = off
            .rows
            .iter()
            .filter(|r| r.fault == FaultClass::ProcFailStop.label())
            .flat_map(|r| &r.outcomes)
            .filter(|o| !o.is_acceptable())
            .count();
        assert!(wedged_off > 0, "fail-stop at 50/100% must wedge some scheme with recovery off");
        let cfg = MachineConfig { recovery: RecoveryPolicy::Full, ..base() };
        let on = sweep(10, &cfg, &[50, 100], 3);
        for row in on.rows.iter().filter(|r| r.fault == FaultClass::ProcFailStop.label()) {
            for o in &row.outcomes {
                assert!(
                    o.is_acceptable(),
                    "{} fail-stop cell must survive under full recovery, got {}",
                    row.scheme,
                    o.cell()
                );
            }
        }
        let t = Tally::of(&on);
        assert!(t.reconfigured > 0, "rescued cells must classify as reconfigured");
        assert_eq!(t.violated, 0, "reconfigured runs must validate dependence order");
    }

    #[test]
    fn fabric_axis_repeats_the_grid_and_shields_the_ideal_backend() {
        use datasync_sim::FabricKind;
        let m = sweep_fabrics(8, &base(), &[0, 50], 3, &FabricKind::ALL);
        // 3 fabrics x 5 schemes x 9 fault rows.
        assert_eq!(m.rows.len(), 3 * 5 * 9);
        let text = render(&m);
        assert!(text.contains("fabric"), "multi-fabric render must show the axis:\n{text}");
        for kind in FabricKind::ALL {
            assert!(m.rows.iter().any(|r| r.fabric == kind.to_string()), "{kind} missing");
        }
        // Fault-free column is all ok on every fabric.
        for row in &m.rows {
            assert!(row.outcomes[0].is_ok(), "{}/{}/{}", row.scheme, row.fabric, row.fault);
        }
        // The ideal fabric has no queue or image tap: broadcast loss
        // cannot wedge dedicated-transport schemes there, while it does
        // wedge at least one of them on the real buses (recovery off).
        let loss_wedged = |fabric: &str| {
            m.rows
                .iter()
                .filter(|r| r.fabric == fabric && r.fault == FaultClass::BroadcastLoss.label())
                .any(|r| r.outcomes.iter().any(|o| !o.is_acceptable()))
        };
        assert!(loss_wedged("dedicated"), "loss must wedge some scheme on the dedicated bus");
        assert!(!loss_wedged("ideal"), "the oracle fabric has no broadcasts to lose");
        // Single-fabric sweeps keep the default matrix bit-identical in
        // classification to the dedicated slice of the full axis.
        let single = sweep(8, &base(), &[0, 50], 3);
        let dedicated: Vec<_> = m.rows.iter().filter(|r| r.fabric == "dedicated").collect();
        assert_eq!(single.rows.len(), dedicated.len());
        for (s, d) in single.rows.iter().zip(dedicated) {
            assert_eq!(s.outcomes, d.outcomes, "{}/{}", s.scheme, s.fault);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = sweep(8, &base(), &[30, 70], 5);
        let b = sweep(8, &base(), &[30, 70], 5);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.outcomes, rb.outcomes, "{}/{}", ra.scheme, ra.fault);
        }
        assert_eq!(render(&a), render(&b));
    }

    #[test]
    fn classify_run_surfaces_deadlock() {
        // Sabotage: compile normally, then strip every sync-setting
        // instruction so waiters starve.
        use datasync_sim::Instr;
        let nest = fig21_loop(6);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let scheme = ProcessOriented::new(4);
        let mut compiled = scheme.compile(&nest, &graph, &space);
        for prog in &mut compiled.workload.programs {
            prog.instrs
                .retain(|i| !matches!(i, Instr::SyncSet { .. } | Instr::SyncSetIfGeq { .. }));
        }
        let config = MachineConfig {
            sync_transport: SyncTransport::DedicatedBus,
            max_cycles: 1_000_000,
            ..MachineConfig::with_processors(4)
        };
        let o = classify_run(&compiled, &config);
        assert!(
            matches!(o, Outcome::DeadlockDetected { .. } | Outcome::TimedOut { .. }),
            "sabotaged run must be caught, got {o:?}"
        );
    }

    #[test]
    fn render_shape() {
        let m = sweep(6, &base(), &[0, 60], 1);
        let text = render(&m);
        assert!(text.contains("scheme"));
        assert!(text.contains("chaos"));
        assert!(text.contains("bcast-loss"));
        assert!(text.contains("0%") && text.contains("60%"));
        assert!(text.lines().count() > m.rows.len());
    }

    #[test]
    fn fallback_degrades_an_unhealable_wedge() {
        // Sabotage the process-oriented scheme (strip its posts) so even
        // the ladder cannot heal it, then let the classifier fall back.
        use datasync_sim::Instr;
        let nest = fig21_loop(6);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let scheme = ProcessOriented::new(4);
        let mut compiled = scheme.compile(&nest, &graph, &space);
        for prog in &mut compiled.workload.programs {
            prog.instrs
                .retain(|i| !matches!(i, Instr::SyncSet { .. } | Instr::SyncSetIfGeq { .. }));
        }
        let fb_scheme = BarrierPhased::new(4);
        let fb = fb_scheme.compile(&nest, &graph, &space);
        let config = MachineConfig {
            sync_transport: SyncTransport::DedicatedBus,
            max_cycles: 1_000_000,
            recovery: RecoveryPolicy::Full,
            ..MachineConfig::with_processors(4)
        };
        let fb_config =
            MachineConfig { sync_transport: fb_scheme.natural_transport(), ..config.clone() };
        let o = classify_with_fallback(&compiled, &config, &fb_scheme.name(), &fb, &fb_config);
        match &o {
            Outcome::Degraded { fallback, original, .. } => {
                assert_eq!(fallback, &fb_scheme.name());
                assert!(original.contains("DEADLOCK") || original.contains("TIMEOUT"));
            }
            other => panic!("expected degradation, got {other:?}"),
        }
        assert!(o.is_acceptable() && !o.is_ok());
        // RepairOnly must NOT degrade: the primary's failure stands.
        let ro = MachineConfig { recovery: RecoveryPolicy::RepairOnly, ..config };
        let o2 = classify_with_fallback(&compiled, &ro, &fb_scheme.name(), &fb, &fb_config);
        assert!(
            matches!(o2, Outcome::DeadlockDetected { .. } | Outcome::TimedOut { .. }),
            "repair-only must surface the wedge, got {o2:?}"
        );
    }

    #[test]
    fn matrix_json_is_balanced_and_complete() {
        let m = sweep(6, &base(), &[0, 50], 1);
        let json = m.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"schema_version\": 2"));
        assert!(json.contains("\"intensities\": [0, 50]"));
        assert!(json.contains("\"tally\""));
        assert!(json.contains("\"reconfigured\""));
        assert_eq!(json.matches("\"scheme\"").count(), m.rows.len());
        // Every row carries its fault seed for standalone replay.
        assert_eq!(json.matches("\"seed\": 1").count(), m.rows.len() + 1);
    }

    /// Pulls `"key": value` (unquoted) out of a flat JSON document.
    fn json_u64(json: &str, key: &str) -> u64 {
        let pat = format!("\"{key}\": ");
        let at = json.find(&pat).unwrap_or_else(|| panic!("{key} missing")) + pat.len();
        json[at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .unwrap()
    }

    #[test]
    fn matrix_json_round_trips_byte_exact() {
        // Satellite contract: the JSON alone carries enough to replay the
        // whole sweep — re-running from nothing but fields extracted out
        // of the document reproduces the document bit for bit.
        let cfg = MachineConfig { recovery: RecoveryPolicy::Full, ..base() };
        let m = sweep(8, &cfg, &[0, 75], 42);
        let json = m.to_json();
        let seed = json_u64(&json, "seed");
        let iterations = json_u64(&json, "iterations") as i64;
        let processors = json_u64(&json, "processors") as usize;
        let rec_at = json.find("\"recovery\": \"").unwrap() + "\"recovery\": \"".len();
        let recovery = &json[rec_at..rec_at + json[rec_at..].find('"').unwrap()];
        let ints_at = json.find("\"intensities\": [").unwrap() + "\"intensities\": [".len();
        let intensities: Vec<u8> = json[ints_at..ints_at + json[ints_at..].find(']').unwrap()]
            .split(", ")
            .map(|s| s.parse().unwrap())
            .collect();
        let mut replay_base = MachineConfig::with_processors(processors);
        replay_base.recovery = RecoveryPolicy::parse(recovery).expect("recovery label");
        let replayed = sweep(iterations, &replay_base, &intensities, seed);
        assert_eq!(replayed.to_json(), json, "replay from JSON fields must be byte-exact");
    }

    #[test]
    fn scaled_cap_prevents_flat_cap_timeout_false_positives() {
        // Regression at the old false-positive boundary: an explicit cap
        // far below any legitimate makespan used to misreport slow
        // bounded-fault cells as TIMEOUT. The sweep now raises each
        // cell's cap to what its machine and fault magnitudes need, so
        // the only failures left are genuine (detected) wedges.
        let mut c = MachineConfig::with_processors(4);
        c.max_cycles = 10_000;
        let m = sweep(24, &c, &[75], 11);
        let t = Tally::of(&m);
        assert_eq!(t.timeout, 0, "a live cell must never be misclassified as TIMEOUT");
        assert_eq!(t.violated, 0);
    }
}

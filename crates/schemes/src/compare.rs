//! Running one workload under every scheme — the engine behind the
//! Fig 3.x reproduction tables.

use crate::barrier_phased::BarrierPhased;
use crate::instance_based::InstanceBased;
use crate::process_oriented::ProcessOriented;
use crate::reference_based::ReferenceBased;
use crate::scheme::{emit_stmt, CompiledLoop, CostFn, Scheme};
use crate::statement_oriented::StatementOriented;
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::LoopNest;
use datasync_loopir::space::IterSpace;
use datasync_sim::{FabricKind, MachineConfig, Program, RunOutcome, SimError, Workload};

/// One row of a scheme-comparison table.
#[derive(Debug, Clone)]
pub struct SchemeReport {
    /// Scheme name.
    pub scheme: String,
    /// Transport the run used.
    pub transport: String,
    /// Sync-fabric backend the run used (`dedicated` / `shared` /
    /// `ideal`; only meaningful for dedicated-transport schemes).
    pub fabric: String,
    /// Synchronization variables allocated.
    pub sync_vars: u64,
    /// Initialization writes.
    pub init_ops: u64,
    /// Renamed data cells (instance-based only).
    pub extra_cells: u64,
    /// Total cycles.
    pub makespan: u64,
    /// Busy-cycle fraction of `P * makespan`.
    pub utilization: f64,
    /// Total busy cycles.
    pub busy: u64,
    /// Total spin cycles.
    pub spin: u64,
    /// Total bus/memory-blocked cycles.
    pub blocked: u64,
    /// Data-bus transactions.
    pub data_transactions: u64,
    /// Busy-wait polls through memory (hot-spot traffic).
    pub spin_polls: u64,
    /// Sync-bus broadcasts.
    pub sync_broadcasts: u64,
    /// Broadcasts saved by write coalescing.
    pub coalesced: u64,
    /// Clustered fabric only: updates the inter-cluster bridge forwarded
    /// globally (0 on flat fabrics).
    pub bridge_broadcasts: u64,
    /// Clustered fabric only: bridge submissions aggregated into a
    /// pending same-variable forward.
    pub bridge_coalesced: u64,
    /// Fraction of the makespan the inter-cluster bridge was held
    /// (0 on flat fabrics).
    pub bridge_occupancy: f64,
    /// Speedup over the single-processor no-synchronization baseline.
    pub speedup: f64,
    /// Dependence-order violations found in the trace (must be 0).
    pub violations: usize,
    /// Section 3 label of the scheme's sync variables (`key` / `SC` /
    /// `PC` / `barrier`).
    pub var_kind: String,
    /// Fraction of the makespan the data bus was held.
    pub data_bus_occupancy: f64,
    /// Fraction of the makespan the sync bus was held.
    pub sync_bus_occupancy: f64,
    /// Completed wait episodes across all processors.
    pub wait_episodes: u64,
    /// Mean completed wait episode, in cycles.
    pub wait_mean: f64,
    /// Longest completed wait episode, in cycles.
    pub wait_max: u64,
    /// Total operations on the scheme's sync variables
    /// (posts + rmws + waits + granted polls).
    pub sync_ops: u64,
    /// Private-cache hit rate (0 when caches are disabled or untouched).
    pub cache_hit_rate: f64,
    /// Lines invalidated in other processors' caches (MESI writes).
    pub cache_invalidations: u64,
    /// Coherence-only bus transactions: upgrades + updates + writebacks.
    pub cache_coherence: u64,
}

/// Compiles the nest with no synchronization at all (for the sequential
/// baseline and for Doall-style upper bounds).
pub fn plain_compiled(
    nest: &LoopNest,
    space: &IterSpace,
    cost: Option<CostFn<'_>>,
) -> CompiledLoop {
    let n = space.count();
    let mut programs = Vec::with_capacity(n as usize);
    for pid in 0..n {
        let indices = space.indices(pid);
        let mut prog = Program::new();
        for stmt in nest.executed_stmts(pid) {
            let c = cost.map_or(stmt.cost, |f| f(stmt.id, pid));
            emit_stmt(&mut prog, stmt, pid, &indices, c, None);
        }
        programs.push(prog);
    }
    CompiledLoop {
        workload: Workload::dynamic(programs),
        storage: Default::default(),
        presets: Vec::new(),
        validation_arcs: Vec::new(),
        instance_pairs: Vec::new(),
    }
}

/// Makespan of the unsynchronized loop on one processor.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn sequential_cycles(
    nest: &LoopNest,
    space: &IterSpace,
    base: &MachineConfig,
    cost: Option<CostFn<'_>>,
) -> Result<u64, SimError> {
    let compiled = plain_compiled(nest, space, cost);
    let mut config = MachineConfig { processors: 1, ..base.clone() };
    if config.sync_fabric.is_clustered() {
        // The unsynchronized one-processor baseline issues no sync
        // traffic, and a multi-cluster geometry cannot divide P=1 —
        // run it on the flat bus (same makespan either way).
        config.sync_fabric = FabricKind::Dedicated;
    }
    Ok(compiled.run(&config)?.stats.makespan)
}

/// Runs one scheme and builds its report row.
///
/// # Errors
///
/// Propagates simulator failures (a deadlock here means the scheme's
/// compilation is wrong).
pub fn report_for(
    scheme: &dyn Scheme,
    nest: &LoopNest,
    graph: &DepGraph,
    space: &IterSpace,
    base: &MachineConfig,
    cost: Option<CostFn<'_>>,
) -> Result<SchemeReport, SimError> {
    let compiled = scheme.compile_with(nest, graph, space, cost);
    let config = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() };
    let out = compiled.run(&config)?;
    let seq = sequential_cycles(nest, space, base, cost)?;
    Ok(build_report(scheme.name(), scheme.sync_var_kind(), &compiled, &config, &out, seq))
}

/// Assembles one report row from a finished run.
fn build_report(
    name: String,
    var_kind: &str,
    compiled: &CompiledLoop,
    config: &MachineConfig,
    out: &RunOutcome,
    seq: u64,
) -> SchemeReport {
    SchemeReport {
        scheme: name,
        transport: format!("{:?}", config.sync_transport),
        fabric: config.sync_fabric.to_string(),
        sync_vars: compiled.storage.vars,
        init_ops: compiled.storage.init_ops,
        extra_cells: compiled.storage.extra_data_cells,
        makespan: out.stats.makespan,
        utilization: out.stats.utilization(),
        busy: out.stats.total_busy(),
        spin: out.stats.total_spin(),
        blocked: out.stats.procs.iter().map(|p| p.blocked).sum(),
        data_transactions: out.stats.data_transactions,
        spin_polls: out.stats.spin_polls,
        sync_broadcasts: out.stats.sync_broadcasts,
        coalesced: out.stats.coalesced_writes,
        bridge_broadcasts: out.stats.bridge_broadcasts,
        bridge_coalesced: out.stats.bridge_coalesced,
        bridge_occupancy: out.metrics.bridge_occupancy(out.stats.makespan),
        speedup: out.stats.speedup_vs(seq),
        violations: compiled.validate(out).len(),
        var_kind: var_kind.to_string(),
        data_bus_occupancy: out.metrics.data_bus_occupancy(out.stats.makespan),
        sync_bus_occupancy: out.metrics.sync_bus_occupancy(out.stats.makespan),
        wait_episodes: out.metrics.wait_episodes(),
        wait_mean: out.metrics.wait_mean(),
        wait_max: out.metrics.wait_max(),
        sync_ops: out.metrics.sync_traffic_total().total(),
        cache_hit_rate: out.metrics.cache.hit_rate(),
        cache_invalidations: out.metrics.cache.invalidations,
        cache_coherence: out.metrics.cache.coherence_traffic(),
    }
}

/// Runs the four scheme families (process-oriented in both primitive
/// variants) on one workload.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn compare_all(
    nest: &LoopNest,
    graph: &DepGraph,
    space: &IterSpace,
    base: &MachineConfig,
    x: usize,
) -> Result<Vec<SchemeReport>, SimError> {
    let mut schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(x)),
        Box::new(ProcessOriented::new(x)),
    ];
    if base.processors.is_power_of_two() {
        schemes.push(Box::new(BarrierPhased::new(base.processors)));
    }
    // The sequential baseline is the same for every scheme — compute it
    // once instead of once per row. Each scheme's run is an independent
    // simulation, so the runs fan out across cores; `par_map` returns
    // results in input order, keeping the table bit-identical to the
    // serial version.
    let seq = sequential_cycles(nest, space, base, None)?;
    let prepared: Vec<(String, &'static str, CompiledLoop, MachineConfig)> = schemes
        .iter()
        .map(|s| {
            let compiled = s.compile_with(nest, graph, space, None);
            let config = MachineConfig { sync_transport: s.natural_transport(), ..base.clone() };
            (s.name(), s.sync_var_kind(), compiled, config)
        })
        .collect();
    datasync_core::par::par_map(prepared, |(name, var_kind, compiled, config)| {
        let out = compiled.run(&config)?;
        Ok(build_report(name, var_kind, &compiled, &config, &out, seq))
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::fig21_loop;

    #[test]
    fn compare_all_runs_and_validates() {
        let nest = fig21_loop(24);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let base = MachineConfig::with_processors(4);
        let rows = compare_all(&nest, &graph, &space, &base, 8).unwrap();
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.violations, 0, "{} violated dependences", r.scheme);
            assert!(r.makespan > 0);
        }
        // Storage shape (E12): keys scale with N, SCs with statements,
        // PCs with X.
        let by_name = |n: &str| rows.iter().find(|r| r.scheme.starts_with(n)).unwrap();
        assert!(by_name("reference-based").sync_vars > by_name("statement-oriented").sync_vars);
        assert_eq!(by_name("statement-oriented").sync_vars, 4);
        assert_eq!(by_name("process-oriented (X=8, improved)").sync_vars, 8);
    }

    #[test]
    fn compare_all_reports_cache_traffic_when_enabled() {
        use datasync_sim::{CacheModel, CoherenceProtocol};
        let nest = fig21_loop(24);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let plain = MachineConfig::with_processors(4);
        let cached = plain.clone().with_cache(CacheModel::private(CoherenceProtocol::Mesi));
        let rows = compare_all(&nest, &graph, &space, &cached, 8).unwrap();
        for r in &rows {
            assert_eq!(r.violations, 0, "{} violated dependences under caches", r.scheme);
        }
        assert!(rows.iter().any(|r| r.cache_hit_rate > 0.0), "no scheme produced any cache hits");
        assert!(
            rows.iter().any(|r| r.cache_invalidations + r.cache_coherence > 0),
            "no row produced any coherence activity"
        );
        // And the cacheless table reports all-zero cache columns.
        for r in compare_all(&nest, &graph, &space, &plain, 8).unwrap() {
            assert_eq!(r.cache_hit_rate, 0.0, "{}: phantom hit rate", r.scheme);
            assert_eq!(r.cache_invalidations + r.cache_coherence, 0, "{}", r.scheme);
        }
    }

    #[test]
    fn sequential_baseline_positive() {
        let nest = fig21_loop(10);
        let space = IterSpace::of(&nest);
        let base = MachineConfig::with_processors(4);
        let seq = sequential_cycles(&nest, &space, &base, None).unwrap();
        // 10 iterations, 5 stmts, cost 4 each + accesses.
        assert!(seq > 10 * 5 * 4);
    }

    #[test]
    fn schemes_speed_up_over_sequential() {
        let nest = fig21_loop(48);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let base = MachineConfig::with_processors(8);
        let rows = compare_all(&nest, &graph, &space, &base, 16).unwrap();
        // The process-oriented scheme must actually exploit parallelism.
        let po = rows.iter().find(|r| r.scheme.contains("improved")).unwrap();
        assert!(po.speedup > 1.5, "speedup {}", po.speedup);
    }
}

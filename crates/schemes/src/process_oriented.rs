//! The process-oriented scheme (Section 4) compiled onto the simulator.
//!
//! One process counter per iteration, folded onto `X` physical counters.
//! Uses the covering-reduced dependence graph and the placement computed
//! by [`SyncPlan`] — the same placement the real-thread executor uses, so
//! the two substrates are guaranteed to agree.
//!
//! Two primitive sets are supported:
//!
//! * **basic** (Fig 4.2): `get_PC` before the first source statement,
//!   `set_PC` after each source, `release_PC` after the last;
//! * **improved** (Fig 4.3): `mark_PC` (conditional on ownership, free
//!   when skipped) and `transfer_PC` (acquire-if-needed then release).

use crate::scheme::{emit_stmt, validation_arcs, CompiledLoop, CostFn, Scheme, SyncStorage};
use datasync_loopir::covering;
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::LoopNest;
use datasync_loopir::plan::{IterOp, PcOp, SyncPlan};
use datasync_loopir::space::IterSpace;
use datasync_sim::{pack_pc, Instr, Pred, Program, SyncTransport, Workload};

/// The process-oriented scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessOriented {
    /// Number of physical process counters (`X`). The paper recommends a
    /// power of two, a small multiple of the processor count.
    pub x: usize,
    /// Use the improved primitives of Fig 4.3.
    pub improved: bool,
}

impl ProcessOriented {
    /// Improved-primitive scheme with `x` counters.
    pub fn new(x: usize) -> Self {
        Self { x, improved: true }
    }

    /// Basic-primitive scheme (Fig 4.2) with `x` counters.
    pub fn basic(x: usize) -> Self {
        Self { x, improved: false }
    }

    fn pc_var(&self, pid: u64) -> usize {
        (pid % self.x as u64) as usize
    }
}

impl Scheme for ProcessOriented {
    fn name(&self) -> String {
        format!(
            "process-oriented (X={}, {})",
            self.x,
            if self.improved { "improved" } else { "basic" }
        )
    }

    fn sync_var_kind(&self) -> &'static str {
        "PC"
    }

    fn natural_transport(&self) -> SyncTransport {
        SyncTransport::DedicatedBus
    }

    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop {
        assert!(self.x > 0, "X must be positive");
        let reduced = covering::reduce(nest, graph).linearized(space);
        let plan = SyncPlan::build(nest, &reduced);
        let n = space.count();
        let mut programs = Vec::with_capacity(n as usize);

        for pid in 0..n {
            let indices = space.indices(pid);
            let mut prog = Program::new();
            let own = self.pc_var(pid);
            let ownership_guard = pack_pc(pid, 0);
            // Basic primitives: get_PC before anything that updates the PC.
            if !self.improved && plan.has_sync() {
                prog.push(Instr::SyncWait { var: own, pred: Pred::Geq(ownership_guard) });
            }
            for op in plan.iteration_ops(nest, pid) {
                match op {
                    IterOp::Wait(w) => {
                        let target = pid - w.dist as u64;
                        prog.push(Instr::SyncWait {
                            var: self.pc_var(target),
                            pred: Pred::Geq(pack_pc(target, w.step)),
                        });
                    }
                    IterOp::Exec(s) => {
                        let stmt = nest.stmt(s);
                        let c = cost.map_or(stmt.cost, |f| f(s, pid));
                        emit_stmt(&mut prog, stmt, pid, &indices, c, None);
                    }
                    IterOp::Pc(PcOp::Mark(step)) => {
                        let val = pack_pc(pid, step);
                        if self.improved {
                            // mark_PC: skip while the counter still belongs
                            // to an earlier process.
                            prog.push(Instr::SyncSetIfGeq {
                                var: own,
                                guard: ownership_guard,
                                val,
                            });
                        } else {
                            prog.push(Instr::SyncSet { var: own, val });
                        }
                    }
                    IterOp::Pc(PcOp::Transfer) => {
                        if self.improved {
                            // transfer_PC: acquire ownership if never
                            // obtained, then hand the counter on.
                            prog.push(Instr::SyncWait {
                                var: own,
                                pred: Pred::Geq(ownership_guard),
                            });
                        }
                        prog.push(Instr::SyncSet {
                            var: own,
                            val: pack_pc(pid + self.x as u64, 0),
                        });
                    }
                }
            }
            programs.push(prog);
        }

        let presets = (0..self.x.min(n as usize)).map(|i| (i, pack_pc(i as u64, 0))).collect();
        CompiledLoop {
            workload: Workload::dynamic(programs),
            storage: SyncStorage {
                vars: self.x as u64,
                init_ops: self.x as u64,
                extra_data_cells: 0,
            },
            presets,
            validation_arcs: validation_arcs(graph, space),
            instance_pairs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::{example2_nested, example3_branches, fig21_loop};
    use datasync_sim::MachineConfig;

    fn check(nest: &LoopNest, scheme: ProcessOriented, procs: usize) -> datasync_sim::RunOutcome {
        let graph = analyze(nest);
        let space = IterSpace::of(nest);
        let compiled = scheme.compile(nest, &graph, &space);
        let out = compiled.run(&MachineConfig::with_processors(procs)).expect("simulation failed");
        let violations = out.trace.validate_order(&compiled.validation_arcs);
        assert!(violations.is_empty(), "order violations: {violations:?}");
        out
    }

    #[test]
    fn fig21_improved_orders_all_deps() {
        let nest = fig21_loop(40);
        let out = check(&nest, ProcessOriented::new(8), 4);
        // 40 iterations * 5 statements, each with start+end notes.
        assert_eq!(out.trace.events().len(), 40 * 5 * 2);
    }

    #[test]
    fn fig21_basic_orders_all_deps() {
        let nest = fig21_loop(40);
        check(&nest, ProcessOriented::basic(8), 4);
    }

    #[test]
    fn tiny_pool_still_correct() {
        let nest = fig21_loop(30);
        check(&nest, ProcessOriented::new(1), 4);
        check(&nest, ProcessOriented::basic(2), 4);
    }

    #[test]
    fn nested_loop_linearized() {
        let nest = example2_nested(6, 5, 3);
        check(&nest, ProcessOriented::new(8), 4);
    }

    #[test]
    fn branches_every_path_transfers() {
        let nest = example3_branches(50, 2);
        check(&nest, ProcessOriented::new(4), 4);
    }

    #[test]
    fn storage_is_x_independent_of_n() {
        let space = IterSpace::of(&fig21_loop(500));
        let nest = fig21_loop(500);
        let graph = analyze(&nest);
        let c = ProcessOriented::new(16).compile(&nest, &graph, &space);
        assert_eq!(c.storage.vars, 16);
        assert_eq!(c.storage.init_ops, 16);
    }

    #[test]
    fn improved_beats_basic_in_makespan_or_ties() {
        // The improved primitives never wait before intermediate marks, so
        // they can only help.
        let nest = fig21_loop(60);
        let imp = check(&nest, ProcessOriented::new(4), 4).stats.makespan;
        let bas = check(&nest, ProcessOriented::basic(4), 4).stats.makespan;
        assert!(imp <= bas, "improved {imp} > basic {bas}");
    }

    #[test]
    fn more_processors_do_not_slow_down_much() {
        let nest = fig21_loop(64);
        let p2 = check(&nest, ProcessOriented::new(8), 2).stats.makespan;
        let p8 = check(&nest, ProcessOriented::new(16), 8).stats.makespan;
        assert!(p8 < p2, "8 procs ({p8}) should beat 2 procs ({p2})");
    }
}

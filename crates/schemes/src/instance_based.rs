//! The instance-based (data-oriented) scheme of Fig 3.1.b.
//!
//! Every updated value gets a fresh memory location (single assignment,
//! as in the HEP's full/empty bits plus compile-time renaming), and one
//! **copy per reader** so reads after the update proceed in parallel:
//! the writer writes all copies and sets their full bits; each reader
//! waits only on its own copy's bit. Anti- and output dependences vanish
//! entirely — at the price of storage proportional to the number of
//! write *instances* times their reader counts.
//!
//! Reads whose value predates the loop (reaching definition outside)
//! need no synchronization: initial data is full.

use crate::scheme::{element_addr, emit_stmt, CompiledLoop, CostFn, Scheme, SyncStorage};
use datasync_loopir::exec::mix2;
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::{ArrayId, LoopNest, StmtId};
use datasync_loopir::space::IterSpace;
use datasync_sim::{Instr, Label, Pred, Program, SyncTransport, Workload};
use std::collections::HashMap;

/// Trace-label offset for per-copy events: copy `key` is published by the
/// writer as an *end* event and consumed by its reader as a *start* event
/// under the synthetic statement id `COPY_EVENT_BASE + key`, giving the
/// validator exactly the write-before-read obligation renaming must keep.
const COPY_EVENT_BASE: u32 = 1 << 30;

/// The instance-based scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceBased {
    /// Charge the `O(r*d)` boundary-test overhead on multiply-nested
    /// loops (Example 2's criticism applies to data-oriented schemes in
    /// general). Default `true`.
    pub boundary_checks: bool,
}

impl Default for InstanceBased {
    fn default() -> Self {
        Self { boundary_checks: true }
    }
}

impl InstanceBased {
    /// Creates the scheme.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A write instance discovered by the renaming pass.
#[derive(Debug, Default, Clone)]
struct WriteInstance {
    readers: Vec<(u64, StmtId, usize)>,
}

impl Scheme for InstanceBased {
    fn name(&self) -> String {
        "instance-based".to_string()
    }

    fn natural_transport(&self) -> SyncTransport {
        // Full/empty bits live with the memory words (HEP).
        SyncTransport::SharedMemory
    }

    fn sync_var_kind(&self) -> &'static str {
        "key"
    }

    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop {
        let _ = graph; // renaming needs reaching definitions, not arcs
        let n = space.count();

        // Pass 1: reaching definitions over the sequential access order.
        let mut last_writer: HashMap<(ArrayId, Vec<i64>), usize> = HashMap::new();
        let mut writes: Vec<WriteInstance> = Vec::new();
        let mut write_site: Vec<(u64, StmtId)> = Vec::new();
        // write instance id per (pid, stmt, pos); reader's (write, copy) too.
        let mut write_of: HashMap<(u64, StmtId, usize), usize> = HashMap::new();
        let mut source_of: HashMap<(u64, StmtId, usize), (usize, usize)> = HashMap::new();
        for pid in 0..n {
            let indices = space.indices(pid);
            for stmt in nest.executed_stmts(pid) {
                for (pos, r) in crate::scheme::ordered_accesses(stmt).into_iter().enumerate() {
                    let element = r.element(&indices);
                    if r.kind.is_write() {
                        let id = writes.len();
                        writes.push(WriteInstance::default());
                        write_site.push((pid, stmt.id));
                        write_of.insert((pid, stmt.id, pos), id);
                        last_writer.insert((r.array, element), id);
                    } else if let Some(&w) = last_writer.get(&(r.array, element)) {
                        let copy = writes[w].readers.len();
                        writes[w].readers.push((pid, stmt.id, pos));
                        source_of.insert((pid, stmt.id, pos), (w, copy));
                    }
                }
            }
        }

        // Key variables: one per (write instance, copy). Assign offsets.
        let mut key_base: Vec<usize> = Vec::with_capacity(writes.len());
        let mut next = 0usize;
        for w in &writes {
            key_base.push(next);
            next += w.readers.len();
        }
        let total_keys = next as u64;
        let total_cells: u64 = writes.iter().map(|w| w.readers.len().max(1) as u64).sum();

        // Pass 2: program emission.
        let depth = space.depth();
        let mut programs = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let indices = space.indices(pid);
            let mut prog = Program::new();
            let refs: u32 = nest.executed_stmts(pid).iter().map(|s| s.refs.len() as u32).sum();
            if self.boundary_checks && depth > 1 {
                prog.push(Instr::Compute(refs * depth as u32));
            }
            for stmt in nest.executed_stmts(pid) {
                let c = cost.map_or(stmt.cost, |f| f(stmt.id, pid));
                let mut pos = 0usize;
                let mut wrap =
                    |prog: &mut Program, r: &datasync_loopir::ir::ArrayRef, element: &[i64]| {
                        let my_pos = pos;
                        pos += 1;
                        if r.kind.is_write() {
                            let w = write_of[&(pid, stmt.id, my_pos)];
                            let copies = writes[w].readers.len().max(1);
                            for copy in 0..copies {
                                prog.push(Instr::Access { addr: copy_addr(w, copy), write: true });
                                if copy < writes[w].readers.len() {
                                    let key = key_base[w] + copy;
                                    prog.push(Instr::SyncSet { var: key, val: 1 });
                                    prog.push(Instr::Note(Label {
                                        pid,
                                        stmt: COPY_EVENT_BASE + key as u32,
                                        start: false,
                                    }));
                                }
                            }
                        } else if let Some(&(w, copy)) = source_of.get(&(pid, stmt.id, my_pos)) {
                            let key = key_base[w] + copy;
                            prog.push(Instr::SyncWait { var: key, pred: Pred::Eq(1) });
                            prog.push(Instr::Note(Label {
                                pid,
                                stmt: COPY_EVENT_BASE + key as u32,
                                start: true,
                            }));
                            prog.push(Instr::Access { addr: copy_addr(w, copy), write: false });
                        } else {
                            // Initial data: full from the start.
                            prog.push(Instr::Access {
                                addr: element_addr(r.array, element),
                                write: false,
                            });
                        }
                    };
                emit_stmt(&mut prog, stmt, pid, &indices, c, Some(&mut wrap));
            }
            programs.push(prog);
        }

        assert!(total_keys < u64::from(COPY_EVENT_BASE), "too many copies to label");
        // Validation: only the flow obligations the renaming actually
        // enforces — each copy published before it is consumed.
        let instance_pairs = source_of
            .iter()
            .map(|(&(rpid, _, _), &(w, copy))| {
                let (wpid, _) = write_site[w];
                let ev = COPY_EVENT_BASE + (key_base[w] + copy) as u32;
                (ev, wpid, ev, rpid)
            })
            .collect();

        CompiledLoop {
            workload: Workload::dynamic(programs),
            storage: SyncStorage {
                vars: total_keys,
                init_ops: total_keys,
                extra_data_cells: total_cells,
            },
            presets: Vec::new(),
            validation_arcs: Vec::new(),
            instance_pairs,
        }
    }
}

/// Address of a renamed copy.
fn copy_addr(write_instance: usize, copy: usize) -> u64 {
    mix2(0x7265_6e61_6d65, mix2(write_instance as u64, copy as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::{example2_nested, fig21_loop};
    use datasync_sim::MachineConfig;

    fn check(nest: &LoopNest, procs: usize) -> (CompiledLoop, datasync_sim::RunOutcome) {
        let graph = analyze(nest);
        let space = IterSpace::of(nest);
        let compiled = InstanceBased::new().compile(nest, &graph, &space);
        let config = MachineConfig::with_processors(procs).transport(SyncTransport::SharedMemory);
        let out = compiled.run(&config).expect("simulation failed");
        let violations = compiled.validate(&out);
        assert!(violations.is_empty(), "flow violations: {violations:?}");
        (compiled, out)
    }

    #[test]
    fn fig21_flow_ordered() {
        check(&fig21_loop(25), 4);
    }

    #[test]
    fn storage_scales_with_write_instances() {
        let nest = fig21_loop(30);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let c = InstanceBased::new().compile(&nest, &graph, &space);
        // Every iteration writes: A[I+3] (read by S2@+2, S3@+1, S5@+4 until
        // killed by S4@+3 -> readers S2, S3 only), A[I] (read by S5@+1),
        // R2, R3, R5 (no readers). Roughly 3 reader-copies per iteration
        // plus 5 cells; exact numbers depend on boundaries.
        assert!(c.storage.vars > 2 * 30 && c.storage.vars <= 4 * 30, "keys = {}", c.storage.vars);
        assert!(
            c.storage.extra_data_cells >= 5 * 30 - 20,
            "cells = {}",
            c.storage.extra_data_cells
        );
        assert_eq!(c.storage.init_ops, c.storage.vars);
    }

    #[test]
    fn anti_and_output_deps_do_not_serialize() {
        // A loop with ONLY anti/output dependences: instance-based runs
        // every iteration fully parallel (no sync waits at all).
        use datasync_loopir::ir::{AccessKind, ArrayRef, LoopNestBuilder};
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 20)
            .stmt("S1", 2, vec![ArrayRef::simple(a, AccessKind::Read, 1)])
            .stmt("S2", 2, vec![ArrayRef::simple(a, AccessKind::Write, 0)])
            .build();
        let graph = analyze(&nest);
        assert!(graph.carried().next().is_some(), "loop must have an anti dep");
        let space = IterSpace::of(&nest);
        let compiled = InstanceBased::new().compile(&nest, &graph, &space);
        let has_waits = compiled
            .workload
            .programs
            .iter()
            .flat_map(|p| &p.instrs)
            .any(|i| matches!(i, Instr::SyncWait { .. }));
        assert!(!has_waits, "renaming must remove all waits for anti-only loops");
    }

    #[test]
    fn nested_flow_ordered() {
        check(&example2_nested(5, 5, 3), 4);
    }

    #[test]
    fn multiple_readers_get_own_copies() {
        let nest = fig21_loop(15);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = InstanceBased::new().compile(&nest, &graph, &space);
        // A[I+3] written by S1 is read by S2 (dist 2) and S3 (dist 1):
        // at least two copies for interior iterations.
        let writes_per_prog: Vec<usize> = compiled
            .workload
            .programs
            .iter()
            .map(|p| {
                p.instrs
                    .iter()
                    .filter(|i| matches!(i, Instr::Access { write: true, .. }))
                    .count()
            })
            .collect();
        // Interior iterations write 2 copies of A[I+3] + 1 of A[I] +
        // 1 of each result array = at least 6 stores.
        assert!(writes_per_prog.iter().skip(4).take(6).all(|&w| w >= 6), "{writes_per_prog:?}");
    }
}

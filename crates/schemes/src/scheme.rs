//! The common scheme interface and shared program-building helpers.
//!
//! A [`Scheme`] compiles a loop nest plus its dependence graph into
//! simulator programs (one per iteration) and accounts for the
//! synchronization-variable storage and initialization overhead the
//! paper's Section 3 classification compares.

use datasync_loopir::exec::mix2;
use datasync_loopir::graph::{DepGraph, Distance};
use datasync_loopir::ir::{ArrayRef, LoopNest, Stmt, StmtId};
use datasync_loopir::space::IterSpace;
use datasync_sim::{
    Instr, Label, MachineConfig, Program, RunOutcome, SimError, SyncTransport, Workload,
};

/// Synchronization-variable accounting (the Section 3 / Section 6
/// storage comparison, experiment E12).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStorage {
    /// Number of synchronization variables the scheme allocates.
    pub vars: u64,
    /// Writes needed to initialize them before the loop starts.
    pub init_ops: u64,
    /// Extra *data* storage (renamed copies, instance-based scheme only).
    pub extra_data_cells: u64,
}

/// A loop compiled for the simulator under one scheme.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// One program per iteration, dispatched dynamically in pid order.
    pub workload: Workload,
    /// Storage accounting.
    pub storage: SyncStorage,
    /// Initial sync-variable values that differ from zero.
    pub presets: Vec<(usize, u64)>,
    /// Every carried dependence as `(src_stmt, dst_stmt, linear_distance)`
    /// for trace validation — always the *full* (unreduced) set, so
    /// validation also proves covering soundness.
    ///
    /// The instance-based scheme leaves this empty (renaming legitimately
    /// removes anti/output dependences) and uses
    /// [`CompiledLoop::instance_pairs`] instead.
    pub validation_arcs: Vec<(u32, u32, i64)>,
    /// Instance-granular obligations `(src_stmt, src_pid, dst_stmt,
    /// dst_pid)`: the source instance's end must precede the sink
    /// instance's start.
    pub instance_pairs: Vec<(u32, u64, u32, u64)>,
}

impl CompiledLoop {
    /// Runs the compiled loop on a machine (fast-forward kernel). The
    /// machine borrows this compiled loop's workload, so sweeps re-running
    /// one compilation under many configurations allocate nothing per run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn run(&self, config: &MachineConfig) -> Result<RunOutcome, SimError> {
        self.run_with(config, datasync_sim::StepMode::FastForward)
    }

    /// [`CompiledLoop::run`] with an explicit stepping mode (the
    /// equivalence tests run both and compare bit for bit).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn run_with(
        &self,
        config: &MachineConfig,
        mode: datasync_sim::StepMode,
    ) -> Result<RunOutcome, SimError> {
        self.run_inner(config, mode, 0)
    }

    /// [`CompiledLoop::run`] with structured event recording on: the
    /// outcome's event ring keeps the most recent `capacity` events for
    /// `datasync trace` / Chrome export. Stats, trace and metrics are
    /// bit-identical to an untraced run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn run_traced(
        &self,
        config: &MachineConfig,
        capacity: usize,
    ) -> Result<RunOutcome, SimError> {
        self.run_inner(config, datasync_sim::StepMode::FastForward, capacity)
    }

    /// [`CompiledLoop::run_traced`] with an explicit stepping mode (the
    /// equivalence tests prove the event streams match across modes).
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the simulator.
    pub fn run_traced_with(
        &self,
        config: &MachineConfig,
        mode: datasync_sim::StepMode,
        capacity: usize,
    ) -> Result<RunOutcome, SimError> {
        self.run_inner(config, mode, capacity)
    }

    fn run_inner(
        &self,
        config: &MachineConfig,
        mode: datasync_sim::StepMode,
        event_capacity: usize,
    ) -> Result<RunOutcome, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mut m = datasync_sim::Machine::new(config, &self.workload);
        m.set_mode(mode);
        if event_capacity > 0 {
            m.enable_events(event_capacity);
        }
        for &(var, val) in &self.presets {
            m.preset_sync(var, val);
        }
        m.run_to_completion()
    }

    /// Validates a run's trace against both the distance arcs and the
    /// instance pairs; returns human-readable violations (empty = correct).
    pub fn validate(&self, out: &RunOutcome) -> Vec<String> {
        let mut problems: Vec<String> = out
            .trace
            .validate_order(&self.validation_arcs)
            .into_iter()
            .map(|v| {
                format!(
                    "S{}@{} (ends {}) must precede S{}@{} (starts {})",
                    v.src_stmt + 1,
                    v.src_pid,
                    v.src_end,
                    v.dst_stmt + 1,
                    v.dst_pid,
                    v.dst_start
                )
            })
            .collect();
        for &(ss, sp, ds, dp) in &self.instance_pairs {
            let (Some(end), Some(start)) = (out.trace.end_of(ss, sp), out.trace.start_of(ds, dp))
            else {
                continue;
            };
            if start < end {
                problems.push(format!(
                    "instance S{}@{sp} (ends {end}) must precede S{}@{dp} (starts {start})",
                    ss + 1,
                    ds + 1
                ));
            }
        }
        problems
    }
}

/// A synchronization scheme, in the paper's Section 3 classification.
pub trait Scheme {
    /// Human-readable name for report tables.
    fn name(&self) -> String;

    /// The hardware the scheme was designed for: data-oriented schemes
    /// keep their keys in shared memory; statement- and process-oriented
    /// schemes use the dedicated synchronization bus.
    fn natural_transport(&self) -> SyncTransport;

    /// Section 3 classification of the scheme's synchronization
    /// variables, used to label its traffic counters: `"key"`
    /// (data-oriented keys), `"SC"` (statement counters), `"PC"`
    /// (process counters) or `"barrier"` (barrier phases).
    fn sync_var_kind(&self) -> &'static str {
        "sync"
    }

    /// Compiles the nest (with its **raw, unreduced** dependence graph in
    /// vector-distance form) into simulator programs. `cost` optionally
    /// overrides per-instance statement costs (delay-injection
    /// experiments).
    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop;

    /// [`Scheme::compile_with`] using every statement's own cost.
    fn compile(&self, nest: &LoopNest, graph: &DepGraph, space: &IterSpace) -> CompiledLoop {
        self.compile_with(nest, graph, space, None)
    }
}

/// Per-iteration cost override used by the delay-injection experiments
/// (`None` means every instance uses the statement's own cost).
pub type CostFn<'a> = &'a dyn Fn(StmtId, u64) -> u32;

/// Deterministic memory address of an array element.
pub fn element_addr(array: datasync_loopir::ir::ArrayId, element: &[i64]) -> u64 {
    let mut h = mix2(0x6164_6472, array.0 as u64);
    for &e in element {
        h = mix2(h, e as u64);
    }
    h
}

/// The canonical intra-statement access order every scheme must use:
/// reads in textual reference order, then writes in textual order.
pub fn ordered_accesses(stmt: &Stmt) -> Vec<&ArrayRef> {
    stmt.reads().chain(stmt.writes()).collect()
}

/// Per-access hook of [`emit_stmt`]: emits scheme-specific instructions
/// for one array access instead of a plain `Access`.
pub type AccessWrap<'a> = &'a mut dyn FnMut(&mut Program, &ArrayRef, &[i64]);

/// Emits the body of a statement instance: start note, read accesses,
/// compute, write accesses, end note. `wrap_access` lets a scheme insert
/// per-access synchronization (reference-based keys); pass `None` for
/// plain accesses.
#[allow(clippy::too_many_arguments)]
pub fn emit_stmt(
    prog: &mut Program,
    stmt: &Stmt,
    pid: u64,
    indices: &[i64],
    cost: u32,
    mut wrap_access: Option<AccessWrap<'_>>,
) {
    prog.push(Instr::Note(Label { pid, stmt: stmt.id.0 as u32, start: true }));
    for r in stmt.reads() {
        let element = r.element(indices);
        match wrap_access.as_deref_mut() {
            Some(f) => f(prog, r, &element),
            None => {
                prog.push(Instr::Access { addr: element_addr(r.array, &element), write: false });
            }
        }
    }
    prog.push(Instr::Compute(cost));
    for w in stmt.writes() {
        let element = w.element(indices);
        match wrap_access.as_deref_mut() {
            Some(f) => f(prog, w, &element),
            None => {
                prog.push(Instr::Access { addr: element_addr(w.array, &element), write: true });
            }
        }
    }
    prog.push(Instr::Note(Label { pid, stmt: stmt.id.0 as u32, start: false }));
}

/// Expands a dependence graph into trace-validation arcs
/// `(src, dst, linear_distance)`. Serial chains become the two arcs that
/// realize the total order; loop-independent arcs are included with
/// distance 0 (program order must satisfy them).
pub fn validation_arcs(graph: &DepGraph, space: &IterSpace) -> Vec<(u32, u32, i64)> {
    let mut arcs = Vec::new();
    for d in graph.deps() {
        match &d.distance {
            Distance::Vector(v) => {
                let dist = space.linear_distance(v);
                debug_assert!(dist >= 0);
                arcs.push((d.src.0 as u32, d.dst.0 as u32, dist));
            }
            Distance::SerialChain => {
                if d.src == d.dst {
                    arcs.push((d.src.0 as u32, d.src.0 as u32, 1));
                } else {
                    arcs.push((d.src.0 as u32, d.dst.0 as u32, 0));
                    arcs.push((d.dst.0 as u32, d.src.0 as u32, 1));
                }
            }
        }
    }
    arcs.sort_unstable();
    arcs.dedup();
    arcs
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::ir::{AccessKind, ArrayId};
    use datasync_loopir::workpatterns::fig21_loop;

    #[test]
    fn element_addr_distinguishes_elements() {
        let a = ArrayId(0);
        assert_ne!(element_addr(a, &[1]), element_addr(a, &[2]));
        assert_ne!(element_addr(a, &[1]), element_addr(ArrayId(1), &[1]));
        assert_eq!(element_addr(a, &[1, 2]), element_addr(a, &[1, 2]));
    }

    #[test]
    fn ordered_accesses_reads_before_writes() {
        let nest = fig21_loop(4);
        let s2 = nest.stmt(StmtId(1)); // reads A, writes R2
        let order = ordered_accesses(s2);
        assert_eq!(order.len(), 2);
        assert_eq!(order[0].kind, AccessKind::Read);
        assert_eq!(order[1].kind, AccessKind::Write);
    }

    #[test]
    fn emit_stmt_shape() {
        let nest = fig21_loop(4);
        let s2 = nest.stmt(StmtId(1));
        let mut prog = Program::new();
        emit_stmt(&mut prog, s2, 3, &[4], 7, None);
        assert!(matches!(prog.instrs[0], Instr::Note(Label { start: true, .. })));
        assert!(matches!(prog.instrs[1], Instr::Access { write: false, .. }));
        assert!(matches!(prog.instrs[2], Instr::Compute(7)));
        assert!(matches!(prog.instrs[3], Instr::Access { write: true, .. }));
        assert!(matches!(prog.instrs[4], Instr::Note(Label { start: false, .. })));
    }

    #[test]
    fn validation_arcs_cover_graph() {
        let nest = fig21_loop(20);
        let g = analyze(&nest);
        let space = IterSpace::of(&nest);
        let arcs = validation_arcs(&g, &space);
        assert_eq!(arcs.len(), g.deps().len(), "no serial chains in fig 2.1");
        assert!(arcs.contains(&(0, 1, 2)));
        assert!(arcs.contains(&(3, 4, 1)));
    }
}

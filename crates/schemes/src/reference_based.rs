//! The reference-based (data-oriented) scheme of Fig 3.1.a.
//!
//! One key per array element; every access to a synchronized array is a
//! Cedar-style atomic *test-and-access*: wait until `key >= rank`,
//! perform the access, increment the key. Ranks follow the sequential
//! access order of the element, with **consecutive reads sharing a rank**
//! so independent fetches (S2 and S3 in Fig 2.1) can proceed in any
//! order.
//!
//! The compile pass brute-forces the sequential access sequence to assign
//! ranks — for multiply-nested loops a real compiler would instead emit
//! boundary tests costing `O(r*d)` per iteration (Example 2's criticism);
//! that overhead is charged as extra compute when the nest depth exceeds
//! one.

use crate::scheme::{element_addr, emit_stmt, CompiledLoop, CostFn, Scheme, SyncStorage};
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::{ArrayId, LoopNest, StmtId};
use datasync_loopir::space::IterSpace;
use datasync_sim::{Instr, Label, Program, SyncTransport, Workload};
use std::collections::{HashMap, HashSet};

/// Trace-label offset for per-access events. The scheme orders *element
/// accesses*, not whole statements, so each keyed access `q` records its
/// completion under the synthetic statement id `ACCESS_EVENT_BASE + q`
/// (as both a start and an end event) and the validator checks the
/// element's access order directly.
const ACCESS_EVENT_BASE: u32 = 1 << 30;

/// The reference-based scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReferenceBased {
    /// Charge the `O(r*d)` per-iteration boundary-test overhead on
    /// multiply-nested loops (Example 2). Default `true`.
    pub boundary_checks: bool,
}

impl Default for ReferenceBased {
    fn default() -> Self {
        Self { boundary_checks: true }
    }
}

impl ReferenceBased {
    /// Creates the scheme with boundary-check charging enabled.
    pub fn new() -> Self {
        Self::default()
    }
}

#[derive(Debug, Default)]
struct ElementState {
    total: u64,
    group_start: u64,
    last_was_read: bool,
    writes: u64,
    /// Pid of the access preceding the current read group (a write), if
    /// any, as `(seq, pid)`.
    pre_group: Option<(u64, u64)>,
    /// The current read group's accesses, `(seq, pid)`.
    group: Vec<(u64, u64)>,
}

impl ElementState {
    /// Ranks a read; returns `(rank, obligations)` where each obligation
    /// is a `(pred_seq, pred_pid)` that must complete before this access.
    fn rank_read(&mut self, seq: u64, pid: u64) -> (u64, Vec<(u64, u64)>) {
        let rank = if self.last_was_read { self.group_start } else { self.total };
        if !self.last_was_read {
            self.group_start = self.total;
            debug_assert!(self.group.is_empty(), "a write must have closed the read group");
        }
        self.last_was_read = true;
        self.total += 1;
        let obligations = self.pre_group.into_iter().collect();
        self.group.push((seq, pid));
        (rank, obligations)
    }

    /// Ranks a write; the write must follow every access of the preceding
    /// read group (or the preceding write when adjacent).
    fn rank_write(&mut self, seq: u64, pid: u64) -> (u64, Vec<(u64, u64)>) {
        let rank = self.total;
        self.last_was_read = false;
        self.total += 1;
        self.writes += 1;
        let mut obligations: Vec<(u64, u64)> = std::mem::take(&mut self.group);
        if obligations.is_empty() {
            obligations.extend(self.pre_group);
        }
        self.pre_group = Some((seq, pid));
        (rank, obligations)
    }
}

impl Scheme for ReferenceBased {
    fn name(&self) -> String {
        "reference-based".to_string()
    }

    fn natural_transport(&self) -> SyncTransport {
        // Keys live in the memory modules next to their data.
        SyncTransport::SharedMemory
    }

    fn sync_var_kind(&self) -> &'static str {
        "key"
    }

    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop {
        let n = space.count();

        // Pass 1: sequential walk — rank every access, find which arrays
        // actually need ordering, and collect the per-element ordering
        // obligations for trace validation.
        let mut elems: HashMap<(ArrayId, Vec<i64>), ElementState> = HashMap::new();
        // (rank, access seq) per (pid, stmt, position in ordered_accesses)
        let mut ranks: HashMap<(u64, StmtId, usize), (u64, u64)> = HashMap::new();
        let mut pairs: Vec<(u32, u64, u32, u64)> = Vec::new();
        let mut next_seq = 0u64;
        for pid in 0..n {
            let indices = space.indices(pid);
            for stmt in nest.executed_stmts(pid) {
                for (pos, r) in crate::scheme::ordered_accesses(stmt).into_iter().enumerate() {
                    let element = r.element(&indices);
                    let st = elems.entry((r.array, element)).or_default();
                    let seq = next_seq;
                    next_seq += 1;
                    let (rank, obligations) = if r.kind.is_write() {
                        st.rank_write(seq, pid)
                    } else {
                        st.rank_read(seq, pid)
                    };
                    for (pseq, ppid) in obligations {
                        pairs.push((
                            ACCESS_EVENT_BASE + pseq as u32,
                            ppid,
                            ACCESS_EVENT_BASE + seq as u32,
                            pid,
                        ));
                    }
                    ranks.insert((pid, stmt.id, pos), (rank, seq));
                }
            }
        }
        assert!(next_seq < u64::from(ACCESS_EVENT_BASE), "too many accesses to label");
        let synced_arrays: HashSet<ArrayId> = elems
            .iter()
            .filter(|(_, st)| st.total >= 2 && st.writes >= 1)
            .map(|((a, _), _)| *a)
            .collect();

        // Keys: one per touched element of every synchronized array,
        // assigned deterministically.
        let mut key_of: HashMap<(ArrayId, Vec<i64>), usize> = HashMap::new();
        {
            let mut touched: Vec<&(ArrayId, Vec<i64>)> =
                elems.keys().filter(|(a, _)| synced_arrays.contains(a)).collect();
            touched.sort();
            for (i, k) in touched.into_iter().enumerate() {
                key_of.insert(k.clone(), i);
            }
        }

        // Pass 2: program emission.
        let depth = space.depth();
        let mut programs = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let indices = space.indices(pid);
            let mut prog = Program::new();
            let synced_refs: u32 = nest
                .executed_stmts(pid)
                .iter()
                .flat_map(|s| s.refs.iter())
                .filter(|r| synced_arrays.contains(&r.array))
                .count() as u32;
            if self.boundary_checks && depth > 1 && synced_refs > 0 {
                // O(r*d) boundary testing per iteration.
                prog.push(Instr::Compute(synced_refs * depth as u32));
            }
            for stmt in nest.executed_stmts(pid) {
                let c = cost.map_or(stmt.cost, |f| f(stmt.id, pid));
                let mut pos = 0usize;
                let mut wrap =
                    |prog: &mut Program, r: &datasync_loopir::ir::ArrayRef, element: &[i64]| {
                        let my_pos = pos;
                        pos += 1;
                        if let Some(&key) = key_of.get(&(r.array, element.to_vec())) {
                            let (rank, seq) = ranks[&(pid, stmt.id, my_pos)];
                            prog.push(Instr::KeyedAccess { var: key, geq: rank });
                            // Completion event, both as a start and an end so
                            // obligation pairs compare completion order.
                            let ev = ACCESS_EVENT_BASE + seq as u32;
                            prog.push(Instr::Note(Label { pid, stmt: ev, start: true }));
                            prog.push(Instr::Note(Label { pid, stmt: ev, start: false }));
                        } else {
                            prog.push(Instr::Access {
                                addr: element_addr(r.array, element),
                                write: r.kind.is_write(),
                            });
                        }
                    };
                emit_stmt(&mut prog, stmt, pid, &indices, c, Some(&mut wrap));
            }
            programs.push(prog);
        }

        let _ = graph; // ordering is derived per element, not from arcs
                       // Only keep obligations between accesses of *synchronized*
                       // elements (unsynchronized arrays have no ordering needs).
        let keys = key_of.len() as u64;
        CompiledLoop {
            workload: Workload::dynamic(programs),
            storage: SyncStorage { vars: keys, init_ops: keys, extra_data_cells: 0 },
            presets: Vec::new(),
            validation_arcs: Vec::new(),
            instance_pairs: pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::{example2_nested, example3_branches, fig21_loop};
    use datasync_sim::MachineConfig;

    fn check(nest: &LoopNest, procs: usize) -> (CompiledLoop, datasync_sim::RunOutcome) {
        let graph = analyze(nest);
        let space = IterSpace::of(nest);
        let compiled = ReferenceBased::new().compile(nest, &graph, &space);
        let config = MachineConfig::with_processors(procs)
            .transport(ReferenceBased::new().natural_transport());
        let out = compiled.run(&config).expect("simulation failed");
        let violations = compiled.validate(&out);
        assert!(violations.is_empty(), "order violations: {violations:?}");
        (compiled, out)
    }

    #[test]
    fn fig21_orders_all_deps() {
        check(&fig21_loop(30), 4);
    }

    #[test]
    fn storage_scales_with_elements_not_statements() {
        let (c20, _) = check(&fig21_loop(20), 2);
        let (c40, _) = check(&fig21_loop(40), 2);
        // Elements of A touched: I-1 .. I+3 over I = 1..N -> N + 4 keys.
        assert_eq!(c20.storage.vars, 24);
        assert_eq!(c40.storage.vars, 44);
        assert_eq!(c40.storage.init_ops, 44);
    }

    #[test]
    fn read_groups_share_rank() {
        // In Fig 2.1 the fetches of S2 (A[I+1]) and S3 (A[I+2]) hit an
        // element between its writes; those consecutive reads form rank
        // groups, so the key final value still counts every access.
        let nest = fig21_loop(12);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = ReferenceBased::new().compile(&nest, &graph, &space);
        let config = MachineConfig::with_processors(3).transport(SyncTransport::SharedMemory);
        let out = compiled.run(&config).unwrap();
        // Every keyed access incremented exactly once: sum of final key
        // values == number of keyed accesses (5 per iteration).
        let total: u64 = out.sync_final.iter().sum();
        assert_eq!(total, 12 * 5);
    }

    #[test]
    fn private_arrays_need_no_keys() {
        let nest = fig21_loop(10);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = ReferenceBased::new().compile(&nest, &graph, &space);
        // Keys only for A's elements (14), not for R2/R3/R5.
        assert_eq!(compiled.storage.vars, 14);
    }

    #[test]
    fn nested_loop_ordered() {
        check(&example2_nested(5, 6, 3), 4);
    }

    #[test]
    fn branches_ordered() {
        check(&example3_branches(40, 2), 4);
    }

    #[test]
    fn works_on_dedicated_bus_too() {
        let nest = fig21_loop(20);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = ReferenceBased::new().compile(&nest, &graph, &space);
        let out = compiled
            .run(&MachineConfig::with_processors(4).transport(SyncTransport::DedicatedBus))
            .unwrap();
        assert!(compiled.validate(&out).is_empty());
    }
}

//! The barrier baseline: Allen–Kennedy loop distribution with a global
//! barrier between phases.
//!
//! The classic alternative to data synchronization (and the one the
//! paper's Examples 1 and 5 argue against): compute the strongly
//! connected components of the dependence graph, order them
//! topologically, and run one *phase* per component with a barrier in
//! between. A non-recurrent component's phase runs its iterations in
//! parallel (it is vectorizable); a component containing a recurrence
//! (a carried arc within it) must run serially — all its iterations on
//! one processor, exactly what a vectorizing compiler faced with a
//! recurrence must do. The price relative to the paper's scheme:
//! barrier idling and the loss of cross-statement pipelining.

use crate::scheme::{emit_stmt, validation_arcs, CompiledLoop, CostFn, Scheme, SyncStorage};
use datasync_loopir::graph::DepGraph;
use datasync_loopir::ir::LoopNest;
use datasync_loopir::ir::StmtId;
use datasync_loopir::space::IterSpace;
use datasync_sim::{Instr, Pred, Program, SyncTransport, Workload};

/// The loop-distribution + barrier scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierPhased {
    /// Number of processors the phases are split across (must match the
    /// machine the compiled loop runs on).
    pub procs: usize,
}

impl BarrierPhased {
    /// Creates the scheme for a `procs`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics unless `procs` is a power of two (the inter-phase barrier
    /// is a butterfly).
    pub fn new(procs: usize) -> Self {
        assert!(
            procs >= 1 && procs.is_power_of_two(),
            "barrier-phased needs power-of-two processors"
        );
        Self { procs }
    }
}

impl Scheme for BarrierPhased {
    fn name(&self) -> String {
        format!("barrier-phased (P={})", self.procs)
    }

    fn natural_transport(&self) -> SyncTransport {
        SyncTransport::DedicatedBus
    }

    fn sync_var_kind(&self) -> &'static str {
        "barrier"
    }

    fn compile_with(
        &self,
        nest: &LoopNest,
        graph: &DepGraph,
        space: &IterSpace,
        cost: Option<CostFn<'_>>,
    ) -> CompiledLoop {
        let procs = self.procs;
        let rounds = procs.trailing_zeros();
        let n = space.count();
        // Allen–Kennedy: phases = SCCs of the (linearized) dependence
        // graph in topological order; recurrent components serialize.
        let linear = graph.linearized(space);
        let phases: Vec<(Vec<StmtId>, bool)> = linear
            .sccs()
            .into_iter()
            .map(|comp| {
                let recurrent = linear.component_recurrent(&comp);
                (comp, recurrent)
            })
            .collect();

        let mut programs: Vec<Program> = Vec::new();
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); procs];
        let mut episode = 0u64;
        for (phase_ix, (comp, recurrent)) in phases.iter().enumerate() {
            for (p, assigned) in assignment.iter_mut().enumerate() {
                let mut prog = Program::new();
                for pid in 0..n {
                    // A recurrent phase runs entirely on processor 0; a
                    // parallel phase splits iterations round-robin.
                    let mine = if *recurrent { p == 0 } else { pid % procs as u64 == p as u64 };
                    if !mine {
                        continue;
                    }
                    let indices = space.indices(pid);
                    for stmt in nest.executed_stmts(pid) {
                        if !comp.contains(&stmt.id) {
                            continue;
                        }
                        let c = cost.map_or(stmt.cost, |f| f(stmt.id, pid));
                        emit_stmt(&mut prog, stmt, pid, &indices, c, None);
                    }
                }
                // Butterfly barrier between phases.
                if phase_ix + 1 < phases.len() {
                    for r in 0..rounds {
                        let round = episode * u64::from(rounds) + u64::from(r) + 1;
                        prog.push(Instr::SyncSet { var: p, val: round });
                        prog.push(Instr::SyncWait { var: p ^ (1 << r), pred: Pred::Geq(round) });
                    }
                }
                assigned.push(programs.len());
                programs.push(prog);
            }
            episode += 1;
        }

        CompiledLoop {
            workload: Workload::static_assigned(programs, assignment),
            storage: SyncStorage {
                vars: procs as u64,
                init_ops: procs as u64,
                extra_data_cells: 0,
            },
            presets: Vec::new(),
            validation_arcs: validation_arcs(graph, space),
            instance_pairs: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasync_loopir::analysis::analyze;
    use datasync_loopir::workpatterns::{example2_nested, example3_branches, fig21_loop};
    use datasync_sim::MachineConfig;

    fn check(nest: &LoopNest, procs: usize) -> datasync_sim::RunOutcome {
        let graph = analyze(nest);
        let space = IterSpace::of(nest);
        let compiled = BarrierPhased::new(procs).compile(nest, &graph, &space);
        let out = compiled.run(&MachineConfig::with_processors(procs)).expect("simulation failed");
        let violations = compiled.validate(&out);
        assert!(violations.is_empty(), "order violations: {violations:?}");
        out
    }

    #[test]
    fn fig21_ordered() {
        check(&fig21_loop(24), 4);
    }

    #[test]
    fn nested_ordered() {
        check(&example2_nested(5, 5, 3), 4);
    }

    #[test]
    fn branches_ordered() {
        check(&example3_branches(32, 2), 4);
    }

    #[test]
    fn self_dependence_serializes_its_phase() {
        use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
        let a = ArrayId(0);
        let nest = LoopNestBuilder::new(1, 16)
            .stmt(
                "S",
                4,
                vec![
                    ArrayRef::simple(a, AccessKind::Read, -1),
                    ArrayRef::simple(a, AccessKind::Write, 0),
                ],
            )
            .build();
        let out = check(&nest, 4);
        // All 16 instances ran on processor 0 (busy only there aside from
        // barrier spinning).
        assert!(out.stats.procs[0].busy > out.stats.procs[1].busy * 4);
    }

    #[test]
    fn mutual_recurrence_groups_into_one_serial_phase() {
        use datasync_loopir::ir::{AccessKind, ArrayId, ArrayRef, LoopNestBuilder};
        // S1 reads B[I-1] writes A[I]; S2 reads A[I] writes B[I]:
        // a cross-statement recurrence -> one serial phase.
        let (a, b) = (ArrayId(0), ArrayId(1));
        let nest = LoopNestBuilder::new(1, 12)
            .stmt(
                "S1",
                3,
                vec![
                    ArrayRef::simple(b, AccessKind::Read, -1),
                    ArrayRef::simple(a, AccessKind::Write, 0),
                ],
            )
            .stmt(
                "S2",
                3,
                vec![
                    ArrayRef::simple(a, AccessKind::Read, 0),
                    ArrayRef::simple(b, AccessKind::Write, 0),
                ],
            )
            .build();
        let out = check(&nest, 4);
        // All statement work runs on processor 0; the others only pay the
        // dispatch cost of their (empty) phase program.
        assert!(out.stats.procs[0].busy > 12 * 6, "{:?}", out.stats.procs[0]);
        assert!(
            out.stats.procs[1].busy <= 4,
            "recurrent SCC must serialize, proc1 busy = {}",
            out.stats.procs[1].busy
        );
    }

    #[test]
    fn loses_to_process_oriented_pipelining() {
        // Fig 2.1 pipelines perfectly (delay 0); the phased baseline
        // inserts 4 barriers per sweep and cannot overlap statements.
        use crate::process_oriented::ProcessOriented;
        let nest = fig21_loop(32);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let config = MachineConfig::with_processors(4);
        let phased = BarrierPhased::new(4)
            .compile(&nest, &graph, &space)
            .run(&config)
            .unwrap()
            .stats
            .makespan;
        let po = ProcessOriented::new(8)
            .compile(&nest, &graph, &space)
            .run(&config)
            .unwrap()
            .stats
            .makespan;
        assert!(po <= phased, "process-oriented {po} must not lose to barrier-phased {phased}");
    }
}

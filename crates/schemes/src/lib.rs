//! The paper's synchronization-scheme taxonomy (Section 3), compiled onto
//! the multiprocessor simulator.
//!
//! Four scheme families from Su & Yew, *On Data Synchronization for
//! Multiprocessors* (ISCA 1989):
//!
//! | Scheme | Sync variables | Hardware model |
//! |---|---|---|
//! | [`reference_based::ReferenceBased`] | one key per array element | Cedar keyed memory access |
//! | [`instance_based::InstanceBased`] | full/empty bit per renamed copy | HEP full/empty bits |
//! | [`statement_oriented::StatementOriented`] | one SC per source statement | Alliant Advance/Await |
//! | [`process_oriented::ProcessOriented`] | `X` process counters | the paper's proposal (Section 6 bus) |
//! | [`barrier_phased::BarrierPhased`] | barrier per statement phase | loop distribution baseline |
//!
//! Every scheme implements [`scheme::Scheme`]: it compiles a loop nest and
//! its dependence graph into per-iteration simulator programs plus
//! storage/initialization accounting, and every compiled loop carries the
//! validation obligations that prove, from the run's trace, that the
//! synchronization actually enforced the dependences.
//!
//! [`compare`] runs one workload under all schemes and produces the
//! report rows the benchmark harnesses print.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod barrier_phased;
pub mod compare;
pub mod instance_based;
pub mod process_oriented;
pub mod reference_based;
pub mod robustness;
pub mod scheme;
pub mod statement_oriented;

pub use barrier_phased::BarrierPhased;
pub use compare::{compare_all, SchemeReport};
pub use instance_based::InstanceBased;
pub use process_oriented::ProcessOriented;
pub use reference_based::ReferenceBased;
pub use robustness::{classify_run, render as render_matrix, sweep, Matrix, Outcome, Tally};
pub use scheme::{CompiledLoop, CostFn, Scheme, SyncStorage};
pub use statement_oriented::StatementOriented;

//! Fast-forward/reference equivalence across every synchronization
//! scheme: the event-driven kernel must produce **bit-identical**
//! `RunStats`, `Trace`, and final sync-variable state to per-cycle
//! stepping — on clean runs, under every fault class, under combined
//! chaos, and on runs that fail (deadlock, timeout).

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, CompiledLoop, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{
    CacheModel, CoherenceProtocol, FabricKind, FaultClass, FaultPlan, MachineConfig,
    RecoveryPolicy, StepMode, SyncTransport,
};

fn roster(procs: usize, x: usize) -> Vec<Box<dyn Scheme>> {
    let mut v: Vec<Box<dyn Scheme>> = vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(x)),
        Box::new(ProcessOriented::new(x)),
    ];
    if procs.is_power_of_two() {
        v.push(Box::new(BarrierPhased::new(procs)));
    }
    v
}

fn assert_equivalent(compiled: &CompiledLoop, config: &MachineConfig, what: &str) {
    let fast = compiled.run_with(config, StepMode::FastForward);
    let reference = compiled.run_with(config, StepMode::Reference);
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.stats, r.stats, "{what}: stats diverged");
            assert_eq!(f.trace, r.trace, "{what}: trace diverged");
            assert_eq!(f.sync_final, r.sync_final, "{what}: sync state diverged");
            assert_eq!(f.metrics, r.metrics, "{what}: metrics diverged");
        }
        (Err(f), Err(r)) => assert_eq!(f, r, "{what}: errors diverged"),
        (f, r) => panic!(
            "{what}: one mode failed and the other did not (fast ok = {}, reference ok = {})",
            f.is_ok(),
            r.is_ok()
        ),
    }
}

#[test]
fn every_scheme_fault_free() {
    let nest = fig21_loop(24);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    for procs in [1usize, 3, 4] {
        for scheme in roster(procs, 8) {
            let compiled = scheme.compile(&nest, &graph, &space);
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(procs)
            };
            assert_equivalent(&compiled, &config, &format!("{} P={procs}", scheme.name()));
        }
    }
}

#[test]
fn every_scheme_under_every_fault_class() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let clean = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() };
        for class in FaultClass::ALL {
            for seed in [1u64, 42] {
                let config = clean.clone().with_faults(FaultPlan::only(class, seed, 65));
                assert_equivalent(
                    &compiled,
                    &config,
                    &format!("{} {class:?} seed={seed}", scheme.name()),
                );
            }
        }
        for seed in [3u64, 11] {
            let config = clean.clone().with_faults(FaultPlan::chaos(seed, 55));
            assert_equivalent(&compiled, &config, &format!("{} chaos seed={seed}", scheme.name()));
        }
    }
}

/// The fabric axis: the fast-forward kernel must stay bit-identical to
/// per-cycle stepping under every [`FabricKind`] — the shared fabric's
/// cross-bus blocking and the ideal fabric's instant delivery both have
/// to survive quiet-span jumping, clean and under chaos faults.
#[test]
fn every_scheme_on_every_fabric() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    let kinds = FabricKind::ALL.into_iter().chain([
        FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 4 },
        FabricKind::Clustered { clusters: 4, bridge_latency: 1, coalesce_window: 0 },
    ]);
    for kind in kinds {
        for scheme in roster(4, 8) {
            let compiled = scheme.compile(&nest, &graph, &space);
            let clean = MachineConfig {
                sync_transport: scheme.natural_transport(),
                sync_fabric: kind,
                ..base.clone()
            };
            assert_equivalent(&compiled, &clean, &format!("{} {kind}", scheme.name()));
            let chaotic = clean.clone().with_faults(FaultPlan::chaos(7, 55));
            assert_equivalent(&compiled, &chaotic, &format!("{} {kind} chaos", scheme.name()));
            let recovering = MachineConfig { recovery: RecoveryPolicy::RepairOnly, ..clean }
                .with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 2, 80));
            assert_equivalent(&compiled, &recovering, &format!("{} {kind} loss", scheme.name()));
        }
    }
}

#[test]
fn failure_outcomes_are_identical() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(8);
    let compiled = scheme.compile(&nest, &graph, &space);

    // Timeout: the cap lands mid-run.
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        max_cycles: 157,
        ..MachineConfig::with_processors(4)
    };
    assert_equivalent(&compiled, &config, "timeout");

    // Wedged runs (deadlock/livelock detection or timeout, whichever the
    // fault stream produces): statement-oriented on shared memory with
    // heavy broadcast drops, bounded by a small cycle cap.
    let so = StatementOriented::new();
    let compiled = so.compile(&nest, &graph, &space);
    let config = MachineConfig {
        sync_transport: SyncTransport::SharedMemory,
        max_cycles: 300_000,
        ..MachineConfig::with_processors(4)
    };
    for seed in 0..6u64 {
        let faulted =
            config.clone().with_faults(FaultPlan::only(FaultClass::BroadcastDrop, seed, 95));
        assert_equivalent(&compiled, &faulted, &format!("wedged seed={seed}"));
    }
}

/// The self-healing ladder (gap NACKs, refresh retransmissions, watchdog
/// repairs) must preserve bit-identical equivalence between the
/// fast-forward and reference kernels — for every scheme, under every
/// fault class, under chaos, and under the unbounded broadcast-loss
/// class the ladder exists to heal.
#[test]
fn every_scheme_with_recovery_enabled() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig {
        max_cycles: 400_000,
        recovery: RecoveryPolicy::RepairOnly,
        ..MachineConfig::with_processors(4)
    };
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let clean = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() };
        for class in FaultClass::ALL {
            let config = clean.clone().with_faults(FaultPlan::only(class, 9, 65));
            assert_equivalent(&compiled, &config, &format!("{} recovery {class:?}", scheme.name()));
        }
        // Total broadcast loss: NACKs go silent and the watchdog repairs.
        let config = clean.clone().with_faults(FaultPlan::only(FaultClass::BroadcastLoss, 2, 100));
        assert_equivalent(&compiled, &config, &format!("{} recovery total-loss", scheme.name()));
        let config = clean.clone().with_faults(FaultPlan::chaos(13, 55));
        assert_equivalent(&compiled, &config, &format!("{} recovery chaos", scheme.name()));
    }
}

/// Regression: on a clustered fabric, bridge lag makes fault-free gap
/// NACKs legitimate (the predicate holds globally before the update
/// crosses the bridge), so armed recovery fires refreshes on perfectly
/// healthy runs. A refresh rides the NACKer's own cluster bus and can
/// complete *before* an older-seq real post still queued on another
/// cluster's bus; it must not advance the variable's applied sequence,
/// or that real post — carrying the genuinely newer value — is
/// discarded as stale and its write is lost for good. The observable
/// wedge was a barrier stuck one arrival short: DEADLOCK at P >= 64
/// with recovery *on* and zero faults injected. Every NACK must heal,
/// the run must complete, and both kernels must agree bit for bit.
#[test]
fn clustered_recovery_refreshes_never_discard_inflight_posts() {
    let nest = fig21_loop(8);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let procs = 64;
    let scheme = BarrierPhased::new(procs);
    let compiled = scheme.compile(&nest, &graph, &space);
    for clusters in [4u32, 8] {
        let config = MachineConfig {
            sync_transport: scheme.natural_transport(),
            sync_fabric: FabricKind::Clustered { clusters, bridge_latency: 2, coalesce_window: 4 },
            recovery: RecoveryPolicy::Full,
            max_cycles: 3_000_000,
            ..MachineConfig::with_processors(procs)
        };
        let out = compiled
            .run(&config)
            .unwrap_or_else(|e| panic!("fault-free clustered c={clusters} wedged: {e:?}"));
        assert_eq!(
            out.stats.recovery.gap_nacks, out.stats.recovery.healed_waits,
            "c={clusters}: every fault-free NACK must heal"
        );
        assert_eq!(out.stats.faults.total(), 0, "c={clusters}: no faults were injected");
        assert_equivalent(&compiled, &config, &format!("barrier clustered c={clusters} recovery"));
    }
}

/// Event recording must be a pure observer: enabling the ring changes
/// nothing about a run, and the captured event stream is itself
/// bit-identical across stepping modes — for every scheme, clean and
/// under chaos faults.
#[test]
fn event_streams_match_across_modes_and_recording_is_inert() {
    let nest = fig21_loop(20);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let clean = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() };
        for (label, config) in [
            ("clean", clean.clone()),
            ("chaos", clean.clone().with_faults(FaultPlan::chaos(7, 50))),
        ] {
            let what = format!("{} {label}", scheme.name());
            let plain = compiled.run(&config).expect("run");
            let traced_fast = compiled
                .run_traced_with(&config, StepMode::FastForward, 1 << 16)
                .expect("traced fast");
            let traced_ref = compiled
                .run_traced_with(&config, StepMode::Reference, 1 << 16)
                .expect("traced reference");
            // Recording is inert.
            assert_eq!(plain.stats, traced_fast.stats, "{what}: recording changed stats");
            assert_eq!(plain.trace, traced_fast.trace, "{what}: recording changed the trace");
            assert_eq!(plain.metrics, traced_fast.metrics, "{what}: recording changed metrics");
            assert_eq!(plain.sync_final, traced_fast.sync_final, "{what}: sync state changed");
            // The event stream itself is mode-independent.
            assert_eq!(traced_fast.events, traced_ref.events, "{what}: event streams diverged");
            assert!(!traced_fast.events.is_empty(), "{what}: no events captured");
            assert_eq!(traced_fast.events.dropped(), 0, "{what}: ring too small for the test");
        }
    }
}

/// Fail-stop reconfiguration — the rescue rung reclaiming a dead
/// processor's unretired work and reissuing it to the survivor quorum —
/// must preserve bit-identical equivalence between the fast-forward and
/// reference kernels, for every scheme on every fabric, at both the
/// one-victim and two-victim intensities.
#[test]
fn failstop_reconfiguration_is_identical_across_modes() {
    let nest = fig21_loop(12);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig {
        max_cycles: 3_000_000,
        recovery: RecoveryPolicy::Full,
        ..MachineConfig::with_processors(4)
    };
    for kind in FabricKind::ALL {
        for scheme in roster(4, 8) {
            let compiled = scheme.compile(&nest, &graph, &space);
            let clean = MachineConfig {
                sync_transport: scheme.natural_transport(),
                sync_fabric: kind,
                ..base.clone()
            };
            for pct in [50u32, 100] {
                let mut config =
                    clean.clone().with_faults(FaultPlan::only(FaultClass::ProcFailStop, 3, pct));
                config.max_cycles = config
                    .max_cycles
                    .max(config.scaled_max_cycles(compiled.workload.programs.len()));
                assert_equivalent(
                    &compiled,
                    &config,
                    &format!("{} {kind} fail-stop {pct}%", scheme.name()),
                );
            }
        }
    }
}

/// Private caches are a pure timing/traffic model riding the data bus,
/// and the fast-forward kernel must stay bit-identical to per-cycle
/// stepping with them enabled — for every scheme under both coherence
/// protocols, clean and under chaos faults. The shared-memory transport
/// cells must actually exercise the caches (non-zero traffic), or the
/// test would prove nothing.
#[test]
fn every_scheme_with_private_caches() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    for protocol in CoherenceProtocol::ALL {
        for scheme in roster(4, 8) {
            let compiled = scheme.compile(&nest, &graph, &space);
            let clean =
                MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() }
                    .with_cache(CacheModel::private(protocol));
            let what = format!("{} {protocol} cached", scheme.name());
            assert_equivalent(&compiled, &clean, &what);
            let out = compiled.run(&clean).expect("cached run");
            assert!(out.metrics.cache.active(), "{what}: caches saw no traffic");
            if scheme.natural_transport() == SyncTransport::SharedMemory {
                assert!(
                    out.metrics.cache.coherence_traffic() > 0,
                    "{what}: spinning on memory produced no coherence traffic"
                );
            }
            let chaotic = clean.clone().with_faults(FaultPlan::chaos(7, 55));
            assert_equivalent(&compiled, &chaotic, &format!("{what} chaos"));
        }
    }
}

/// With caching of sync variables disabled (`cache_sync: false`), sync
/// traffic must bypass the caches entirely while plain shared accesses
/// still hit — and equivalence must hold in that mixed mode too.
#[test]
fn uncached_sync_variables_bypass_the_caches() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = StatementOriented::new();
    let compiled = scheme.compile(&nest, &graph, &space);
    let cache = CacheModel::private(CoherenceProtocol::Mesi).sync_uncached();
    let config = MachineConfig {
        sync_transport: SyncTransport::SharedMemory,
        max_cycles: 400_000,
        ..MachineConfig::with_processors(4)
    }
    .with_cache(cache);
    assert_equivalent(&compiled, &config, "sync-uncached");
    let out = compiled.run(&config).expect("run");
    assert!(out.metrics.cache.active(), "data accesses should still use the caches");
}

/// `CacheModel::None` (the default) must be byte-identical to a config
/// that never mentions caches at all: the golden pins of earlier PRs
/// stay valid because the cacheless path is the same code path.
#[test]
fn cacheless_model_is_the_default_and_inert() {
    assert_eq!(CacheModel::default(), CacheModel::None);
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let implicit = MachineConfig {
            sync_transport: scheme.natural_transport(),
            max_cycles: 400_000,
            ..MachineConfig::with_processors(4)
        };
        let explicit = implicit.clone().with_cache(CacheModel::None);
        let a = compiled.run(&implicit).expect("implicit");
        let b = compiled.run(&explicit).expect("explicit");
        assert_eq!(a.stats, b.stats, "{}: explicit None changed stats", scheme.name());
        assert_eq!(a.trace, b.trace, "{}: explicit None changed trace", scheme.name());
        assert_eq!(a.metrics, b.metrics, "{}: explicit None changed metrics", scheme.name());
        assert!(!a.metrics.cache.active(), "{}: cacheless run counted traffic", scheme.name());
    }
}

/// Sync-operation conservation across fabrics (the broadcast-count
/// "discrepancy" from the bench report): on a fault-free run every
/// issued sync operation is either granted as its own broadcast or
/// folded into a queued one by write coalescing, so
/// `sync_ops_issued == sync_broadcasts + coalesced_writes` on every
/// fabric — and the *issued* count is fabric-invariant. The dedicated
/// bus showing fewer broadcasts than the ideal fabric is coalescing
/// under arbitration latency, not message loss.
#[test]
fn sync_op_conservation_holds_on_every_fabric() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    for scheme in roster(4, 8) {
        if scheme.natural_transport() != SyncTransport::DedicatedBus {
            continue;
        }
        let compiled = scheme.compile(&nest, &graph, &space);
        let mut issued = Vec::new();
        let kinds = FabricKind::ALL.into_iter().chain([
            FabricKind::Clustered { clusters: 2, bridge_latency: 2, coalesce_window: 4 },
            FabricKind::Clustered { clusters: 4, bridge_latency: 1, coalesce_window: 8 },
        ]);
        for kind in kinds {
            let config = MachineConfig {
                sync_transport: SyncTransport::DedicatedBus,
                sync_fabric: kind,
                max_cycles: 400_000,
                ..MachineConfig::with_processors(4)
            };
            let out = compiled.run(&config).expect("run");
            assert_eq!(
                out.stats.sync_ops_issued,
                out.stats.sync_broadcasts + out.stats.coalesced_writes,
                "{} {kind}: issued ops must equal broadcasts + coalesced",
                scheme.name()
            );
            // The clustered fabric extends the identity one level down:
            // every cluster-bus grant either crosses the bridge or folds
            // into a pending same-variable forward. Flat fabrics keep
            // both bridge counters at zero.
            if kind.is_clustered() {
                assert_eq!(
                    out.stats.sync_broadcasts,
                    out.stats.bridge_broadcasts + out.stats.bridge_coalesced,
                    "{} {kind}: broadcasts must equal bridged + aggregated",
                    scheme.name()
                );
            } else {
                assert_eq!(out.stats.bridge_broadcasts, 0, "{kind}: no bridge on flat fabrics");
                assert_eq!(out.stats.bridge_coalesced, 0, "{kind}: no bridge on flat fabrics");
            }
            issued.push(out.stats.sync_ops_issued);
        }
        assert!(
            issued.windows(2).all(|w| w[0] == w[1]),
            "{}: issued sync ops differ across fabrics: {issued:?}",
            scheme.name()
        );
    }
}

/// Tracing off, two runs of the same compiled loop under the same seed
/// are byte-identical — for every scheme (satellite 4's determinism
/// guarantee, the foundation under the robustness matrix).
#[test]
fn identical_seeds_give_identical_runs_for_every_scheme() {
    let nest = fig21_loop(14);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let config = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() }
            .with_faults(FaultPlan::chaos(1989, 45));
        let a = compiled.run(&config).expect("run a");
        let b = compiled.run(&config).expect("run b");
        assert_eq!(a.stats, b.stats, "{}: stats not deterministic", scheme.name());
        assert_eq!(a.trace, b.trace, "{}: trace not deterministic", scheme.name());
        assert_eq!(a.metrics, b.metrics, "{}: metrics not deterministic", scheme.name());
        assert_eq!(a.sync_final, b.sync_final, "{}: sync state not deterministic", scheme.name());
        // And the recorded event sequence reproduces too.
        let ta = compiled.run_traced(&config, 1 << 16).expect("traced a");
        let tb = compiled.run_traced(&config, 1 << 16).expect("traced b");
        assert_eq!(ta.events, tb.events, "{}: event stream not deterministic", scheme.name());
    }
}

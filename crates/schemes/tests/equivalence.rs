//! Fast-forward/reference equivalence across every synchronization
//! scheme: the event-driven kernel must produce **bit-identical**
//! `RunStats`, `Trace`, and final sync-variable state to per-cycle
//! stepping — on clean runs, under every fault class, under combined
//! chaos, and on runs that fail (deadlock, timeout).

use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{
    BarrierPhased, CompiledLoop, InstanceBased, ProcessOriented, ReferenceBased, StatementOriented,
};
use datasync_sim::{FaultClass, FaultPlan, MachineConfig, StepMode, SyncTransport};

fn roster(procs: usize, x: usize) -> Vec<Box<dyn Scheme>> {
    let mut v: Vec<Box<dyn Scheme>> = vec![
        Box::new(ReferenceBased::new()),
        Box::new(InstanceBased::new()),
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(x)),
        Box::new(ProcessOriented::new(x)),
    ];
    if procs.is_power_of_two() {
        v.push(Box::new(BarrierPhased::new(procs)));
    }
    v
}

fn assert_equivalent(compiled: &CompiledLoop, config: &MachineConfig, what: &str) {
    let fast = compiled.run_with(config, StepMode::FastForward);
    let reference = compiled.run_with(config, StepMode::Reference);
    match (fast, reference) {
        (Ok(f), Ok(r)) => {
            assert_eq!(f.stats, r.stats, "{what}: stats diverged");
            assert_eq!(f.trace, r.trace, "{what}: trace diverged");
            assert_eq!(f.sync_final, r.sync_final, "{what}: sync state diverged");
        }
        (Err(f), Err(r)) => assert_eq!(f, r, "{what}: errors diverged"),
        (f, r) => panic!(
            "{what}: one mode failed and the other did not (fast ok = {}, reference ok = {})",
            f.is_ok(),
            r.is_ok()
        ),
    }
}

#[test]
fn every_scheme_fault_free() {
    let nest = fig21_loop(24);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    for procs in [1usize, 3, 4] {
        for scheme in roster(procs, 8) {
            let compiled = scheme.compile(&nest, &graph, &space);
            let config = MachineConfig {
                sync_transport: scheme.natural_transport(),
                ..MachineConfig::with_processors(procs)
            };
            assert_equivalent(&compiled, &config, &format!("{} P={procs}", scheme.name()));
        }
    }
}

#[test]
fn every_scheme_under_every_fault_class() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig { max_cycles: 400_000, ..MachineConfig::with_processors(4) };
    for scheme in roster(4, 8) {
        let compiled = scheme.compile(&nest, &graph, &space);
        let clean = MachineConfig { sync_transport: scheme.natural_transport(), ..base.clone() };
        for class in FaultClass::ALL {
            for seed in [1u64, 42] {
                let config = clean.clone().with_faults(FaultPlan::only(class, seed, 65));
                assert_equivalent(
                    &compiled,
                    &config,
                    &format!("{} {class:?} seed={seed}", scheme.name()),
                );
            }
        }
        for seed in [3u64, 11] {
            let config = clean.clone().with_faults(FaultPlan::chaos(seed, 55));
            assert_equivalent(&compiled, &config, &format!("{} chaos seed={seed}", scheme.name()));
        }
    }
}

#[test]
fn failure_outcomes_are_identical() {
    let nest = fig21_loop(16);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let scheme = ProcessOriented::new(8);
    let compiled = scheme.compile(&nest, &graph, &space);

    // Timeout: the cap lands mid-run.
    let config = MachineConfig {
        sync_transport: scheme.natural_transport(),
        max_cycles: 157,
        ..MachineConfig::with_processors(4)
    };
    assert_equivalent(&compiled, &config, "timeout");

    // Wedged runs (deadlock/livelock detection or timeout, whichever the
    // fault stream produces): statement-oriented on shared memory with
    // heavy broadcast drops, bounded by a small cycle cap.
    let so = StatementOriented::new();
    let compiled = so.compile(&nest, &graph, &space);
    let config = MachineConfig {
        sync_transport: SyncTransport::SharedMemory,
        max_cycles: 300_000,
        ..MachineConfig::with_processors(4)
    };
    for seed in 0..6u64 {
        let faulted =
            config.clone().with_faults(FaultPlan::only(FaultClass::BroadcastDrop, seed, 95));
        assert_equivalent(&compiled, &faulted, &format!("wedged seed={seed}"));
    }
}

//! Criterion micro-benchmarks of the real-thread primitives:
//! process-counter operations and barrier episodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasync_core::barrier::{ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier};
use datasync_core::handle::ProcessHandle;
use datasync_core::pc::PcPool;
use std::time::Duration;

fn bench_pc_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("pc_primitives");
    g.measurement_time(Duration::from_millis(800)).warm_up_time(Duration::from_millis(200));

    g.bench_function("mark+transfer (uncontended)", |b| {
        b.iter_batched(
            || PcPool::new(16),
            |pool| {
                let mut h = ProcessHandle::load_index(&pool, 0);
                h.mark_pc(1);
                h.mark_pc(2);
                h.transfer_pc();
            },
            criterion::BatchSize::SmallInput,
        );
    });

    g.bench_function("wait_pc satisfied", |b| {
        let pool = PcPool::new(16);
        pool.set_pc(3, 5);
        b.iter(|| pool.wait_pc(4, 1, 3));
    });

    g.bench_function("handoff chain x1000", |b| {
        b.iter_batched(
            || PcPool::new(8),
            |pool| {
                for pid in 0..1000u64 {
                    let mut h = ProcessHandle::load_index(&pool, pid);
                    h.mark_pc(1);
                    h.transfer_pc();
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_100_episodes");
    g.measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(300));
    g.sample_size(10);

    for p in [2usize, 4, 8] {
        let run = |barrier: &dyn PhaseBarrier| {
            std::thread::scope(|s| {
                for pid in 0..p {
                    s.spawn(move || {
                        for _ in 0..100 {
                            barrier.wait(pid);
                        }
                    });
                }
            });
        };
        g.bench_with_input(BenchmarkId::new("butterfly", p), &p, |b, &p| {
            b.iter_batched(
                || ButterflyBarrier::new(p),
                |bar| run(&bar),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("dissemination", p), &p, |b, &p| {
            b.iter_batched(
                || DisseminationBarrier::new(p),
                |bar| run(&bar),
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("counter", p), &p, |b, &p| {
            b.iter_batched(
                || CounterBarrier::new(p),
                |bar| run(&bar),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

/// The E4 story on real threads: one slow iteration; statement counters
/// serialize every later iteration's update, process counters do not.
fn bench_sc_vs_pc_skew(c: &mut Criterion) {
    use datasync_core::sc::ScPool;
    use std::sync::atomic::{AtomicU64, Ordering};

    let n = 400u64;
    let threads = 4;
    let slow = move |pid: u64| {
        if pid == 50 {
            // ~30us of real work
            let mut h = 0u64;
            for i in 0..60_000u64 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(h);
        }
    };

    let mut g = c.benchmark_group("skewed_chain_real_threads");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    g.sample_size(10);

    g.bench_function("statement-counters", |b| {
        b.iter(|| {
            let scs = ScPool::new(1);
            let next = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..threads {
                    let (scs, next) = (&scs, &next);
                    s.spawn(move || loop {
                        let pid = next.fetch_add(1, Ordering::Relaxed);
                        if pid >= n {
                            return;
                        }
                        scs.await_sc(0, pid, 4);
                        slow(pid);
                        scs.advance(0, pid); // serial handoff
                    });
                }
            });
        });
    });

    g.bench_function("process-counters", |b| {
        b.iter(|| {
            datasync_core::doacross::Doacross::new(n).threads(threads).pcs(16).run(
                |pid, ctx| {
                    ctx.wait(4, 1);
                    slow(pid);
                    ctx.mark(1); // independent per-iteration mark
                },
            );
        });
    });
    g.finish();
}

criterion_group!(benches, bench_pc_ops, bench_barriers, bench_sc_vs_pc_skew);
criterion_main!(benches);

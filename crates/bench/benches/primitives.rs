//! Micro-benchmarks of the real-thread primitives: process-counter
//! operations and barrier episodes. Plain `main` on the in-tree harness.

use datasync_bench::harness::{bench, bench_with_setup, group};
use datasync_core::barrier::{
    ButterflyBarrier, CounterBarrier, DisseminationBarrier, PhaseBarrier,
};
use datasync_core::handle::ProcessHandle;
use datasync_core::pc::PcPool;

fn bench_pc_ops() {
    group("pc_primitives");

    bench_with_setup(
        "mark+transfer (uncontended)",
        || PcPool::new(16),
        |pool| {
            let mut h = ProcessHandle::load_index(&pool, 0);
            h.mark_pc(1);
            h.mark_pc(2);
            h.transfer_pc();
        },
    );

    let pool = PcPool::new(16);
    pool.set_pc(3, 5);
    bench("wait_pc satisfied", || pool.wait_pc(4, 1, 3));

    bench_with_setup(
        "handoff chain x1000",
        || PcPool::new(8),
        |pool| {
            for pid in 0..1000u64 {
                let mut h = ProcessHandle::load_index(&pool, pid);
                h.mark_pc(1);
                h.transfer_pc();
            }
        },
    );
}

fn bench_barriers() {
    group("barrier_100_episodes");

    fn run(barrier: &dyn PhaseBarrier, p: usize) {
        std::thread::scope(|s| {
            for pid in 0..p {
                s.spawn(move || {
                    for _ in 0..100 {
                        barrier.wait(pid);
                    }
                });
            }
        });
    }

    for p in [2usize, 4, 8] {
        bench_with_setup(
            &format!("butterfly/{p}"),
            || ButterflyBarrier::new(p),
            |bar| run(&bar, p),
        );
        bench_with_setup(
            &format!("dissemination/{p}"),
            || DisseminationBarrier::new(p),
            |bar| run(&bar, p),
        );
        bench_with_setup(&format!("counter/{p}"), || CounterBarrier::new(p), |bar| run(&bar, p));
    }
}

/// The E4 story on real threads: one slow iteration; statement counters
/// serialize every later iteration's update, process counters do not.
fn bench_sc_vs_pc_skew() {
    use datasync_core::sc::ScPool;
    use std::sync::atomic::{AtomicU64, Ordering};

    let n = 400u64;
    let threads = 4;
    let slow = move |pid: u64| {
        if pid == 50 {
            // ~30us of real work
            let mut h = 0u64;
            for i in 0..60_000u64 {
                h = h.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(h);
        }
    };

    group("skewed_chain_real_threads");

    bench("statement-counters", || {
        let scs = ScPool::new(1);
        let next = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let (scs, next) = (&scs, &next);
                s.spawn(move || loop {
                    let pid = next.fetch_add(1, Ordering::Relaxed);
                    if pid >= n {
                        return;
                    }
                    scs.await_sc(0, pid, 4);
                    slow(pid);
                    scs.advance(0, pid); // serial handoff
                });
            }
        });
    });

    bench("process-counters", || {
        datasync_core::doacross::Doacross::new(n)
            .threads(threads)
            .pcs(16)
            .run(|pid, ctx| {
                ctx.wait(4, 1);
                slow(pid);
                ctx.mark(1); // independent per-iteration mark
            });
    });
}

fn main() {
    bench_pc_ops();
    bench_barriers();
    bench_sc_vs_pc_skew();
}

//! Wrapper around the per-figure experiment harnesses, so `cargo bench`
//! regenerates every table of the paper reproduction and prints it once
//! per run, then times the cheap harnesses.

use datasync_bench::harness::{bench, group};

fn main() {
    println!("\n================ paper reproduction tables ================\n");
    for table in datasync_bench::run_all(true) {
        println!("{table}");
    }
    println!("============================================================\n");

    group("experiments");
    bench("e1_dependence_analysis", || {
        std::hint::black_box(datasync_bench::fig2::run());
    });
    bench("e2_scheme_comparison_n24", || {
        std::hint::black_box(datasync_bench::fig3::comparison(24, 4, 8));
    });
    bench("e6_pipeline_n17", || {
        std::hint::black_box(datasync_bench::fig51::run_experiment(17, 4, 24, &[1, 4]));
    });
    bench("e9_barriers_p8", || {
        std::hint::black_box(datasync_bench::fig54::run_experiment(&[8], 6));
    });
}

//! Criterion wrappers around the per-figure experiment harnesses, so
//! `cargo bench` regenerates every table of the paper reproduction and
//! prints it once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Once;
use std::time::Duration;

static PRINT_TABLES: Once = Once::new();

/// Prints all experiment tables once (the primary artifact of
/// `cargo bench`), then times the cheap harnesses.
fn bench_experiments(c: &mut Criterion) {
    PRINT_TABLES.call_once(|| {
        println!("\n================ paper reproduction tables ================\n");
        for table in datasync_bench::run_all(true) {
            println!("{table}");
        }
        println!("============================================================\n");
    });

    let mut g = c.benchmark_group("experiments");
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    g.sample_size(10);

    g.bench_function("e1_dependence_analysis", |b| b.iter(datasync_bench::fig2::run));
    g.bench_function("e2_scheme_comparison_n24", |b| {
        b.iter(|| datasync_bench::fig3::comparison(24, 4, 8))
    });
    g.bench_function("e6_pipeline_n17", |b| {
        b.iter(|| datasync_bench::fig51::run_experiment(17, 4, 24, &[1, 4]))
    });
    g.bench_function("e9_barriers_p8", |b| {
        b.iter(|| datasync_bench::fig54::run_experiment(&[8], 6))
    });
    g.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);

//! Benchmarks of the Section 5 applications on real threads: relaxation
//! strategies (Fig 5.1) and FFT phase synchronization (Ex 5).

use datasync_bench::harness::{bench, bench_with_setup, group};
use datasync_core::phased::PhaseSync;
use datasync_workloads::fft::parallel_fft;
use datasync_workloads::relaxation::{run_pipelined, run_sequential, run_wavefront, Grid};
use datasync_workloads::Complex;

fn bench_relaxation() {
    let n = 96;
    let threads = 4;
    group(&format!("relaxation_{n}x{n}_p{threads}"));

    bench_with_setup(
        "sequential",
        || Grid::new(n),
        |grid| {
            run_sequential(&grid);
        },
    );
    bench_with_setup(
        "wavefront+barrier",
        || Grid::new(n),
        |grid| {
            run_wavefront(&grid, threads);
        },
    );
    for g_size in [1usize, 4, 16] {
        bench_with_setup(
            &format!("pipelined/{g_size}"),
            || Grid::new(n),
            |grid| {
                run_pipelined(&grid, threads, 8, g_size);
            },
        );
    }
}

fn bench_fft() {
    let n = 1 << 13;
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.013).sin(), (i as f64 * 0.007).cos()))
        .collect();
    group(&format!("fft_{n}pts"));

    for workers in [1usize, 4] {
        for sync in [PhaseSync::Pairwise, PhaseSync::GlobalCounter, PhaseSync::GlobalDissemination]
        {
            bench(&format!("{}/{workers}", sync.name()), || {
                std::hint::black_box(parallel_fft(&x, workers, sync));
            });
        }
    }
}

fn main() {
    bench_relaxation();
    bench_fft();
}

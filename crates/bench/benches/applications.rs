//! Criterion benchmarks of the Section 5 applications on real threads:
//! relaxation strategies (Fig 5.1) and FFT phase synchronization (Ex 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasync_core::phased::PhaseSync;
use datasync_workloads::fft::parallel_fft;
use datasync_workloads::relaxation::{run_pipelined, run_sequential, run_wavefront, Grid};
use datasync_workloads::Complex;
use std::time::Duration;

fn bench_relaxation(c: &mut Criterion) {
    let n = 96;
    let threads = 4;
    let mut g = c.benchmark_group(format!("relaxation_{n}x{n}_p{threads}"));
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    g.sample_size(10);

    g.bench_function("sequential", |b| {
        b.iter_batched(|| Grid::new(n), |grid| run_sequential(&grid), criterion::BatchSize::SmallInput);
    });
    g.bench_function("wavefront+barrier", |b| {
        b.iter_batched(
            || Grid::new(n),
            |grid| run_wavefront(&grid, threads),
            criterion::BatchSize::SmallInput,
        );
    });
    for g_size in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("pipelined", g_size), &g_size, |b, &gs| {
            b.iter_batched(
                || Grid::new(n),
                |grid| run_pipelined(&grid, threads, 8, gs),
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let n = 1 << 13;
    let x: Vec<Complex> =
        (0..n).map(|i| Complex::new((i as f64 * 0.013).sin(), (i as f64 * 0.007).cos())).collect();
    let mut g = c.benchmark_group(format!("fft_{n}pts"));
    g.measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(400));
    g.sample_size(10);

    for workers in [1usize, 4] {
        for sync in [PhaseSync::Pairwise, PhaseSync::GlobalCounter, PhaseSync::GlobalDissemination] {
            g.bench_with_input(
                BenchmarkId::new(sync.name(), workers),
                &workers,
                |b, &w| b.iter(|| parallel_fft(&x, w, sync)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_relaxation, bench_fft);
criterion_main!(benches);

//! Ablation studies over the simulator's design axes: memory
//! organisation, spin-retry interval, self-scheduling chunk size, and
//! the X:P ratio — the knobs DESIGN.md calls out.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::compare::compare_all;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::ProcessOriented;
use datasync_sim::{MachineConfig, MemoryModel, SyncTransport};
use datasync_workloads::barrier_sim::{barrier_workload, BarrierKind};

/// A1: the scheme comparison under banked (Cedar-style) memory — the
/// data bus stops being the universal bottleneck, so scheme differences
/// in *synchronization* cost become visible.
pub fn banked_memory(n: i64, procs: usize, x: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut t = Table::new(
        "A1 / memory model",
        &format!("scheme comparison, bus-held vs 8-bank memory (N={n}, P={procs})"),
        &["memory", "scheme", "makespan", "speedup", "util %", "violations"],
    );
    for (model, label) in
        [(MemoryModel::BusHeld, "bus-held"), (MemoryModel::Banked { banks: 8 }, "8 banks")]
    {
        let base = MachineConfig { memory_model: model, ..MachineConfig::with_processors(procs) };
        for r in compare_all(&nest, &graph, &space, &base, x).expect("simulation failed") {
            t.row(vec![
                label.into(),
                r.scheme,
                r.makespan.to_string(),
                f(r.speedup),
                f(r.utilization * 100.0),
                r.violations.to_string(),
            ]);
        }
    }
    t.note("Banked memory overlaps access latencies; the bus-held model (default) matches a circuit-switched bus where the data path bounds every scheme equally.");
    t
}

/// A2: spin-retry interval — the poll-traffic vs wake-up-latency
/// trade-off of busy-waiting through memory. Measured both with a single
/// skewed waiter (the knob's visible regime) and with all processors
/// contending (where the bus saturates and the knob vanishes).
pub fn spin_retry(episodes: usize, retries: &[u32]) -> Table {
    let mut t = Table::new(
        "A2 / spin retry",
        &format!("memory busy-wait poll interval ({episodes} episodes)"),
        &["waiters", "spin retry (cy)", "makespan", "spin polls", "data tx"],
    );
    for (procs, skew, label) in [(2usize, true, "1 (skewed)"), (8usize, false, "7 (contended)")] {
        for &retry in retries {
            let compute = move |p: usize, _e: usize| {
                if skew && p == 0 {
                    200
                } else {
                    20
                }
            };
            let w = barrier_workload(procs, episodes, BarrierKind::Counter, compute);
            let config = MachineConfig {
                spin_retry: retry,
                sync_transport: SyncTransport::SharedMemory,
                ..MachineConfig::with_processors(procs)
            };
            let out = datasync_sim::run(&config, &w).expect("sim failed");
            t.row(vec![
                label.into(),
                retry.to_string(),
                out.stats.makespan.to_string(),
                out.stats.spin_polls.to_string(),
                out.stats.data_transactions.to_string(),
            ]);
        }
    }
    t.note("With one waiter, tight polling burns bus transactions for earlier wake-up; with many waiters the bus saturates with polls and the interval stops mattering — either way the dedicated sync bus (free local spinning) dissolves the trade-off.");
    t
}

/// A3: X:P ratio grid for the process-oriented scheme.
pub fn x_to_p_grid(n: i64, ps: &[usize], ratios: &[usize]) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let mut t = Table::new(
        "A3 / X:P ratio",
        &format!("process-counter count as a multiple of processors (N={n})"),
        &["P", "X", "X/P", "makespan", "spin cycles"],
    );
    for &p in ps {
        for &ratio in ratios {
            let x = (p * ratio).max(1);
            let compiled = ProcessOriented::new(x).compile(&nest, &graph, &space);
            let out = compiled.run(&MachineConfig::with_processors(p)).expect("simulation failed");
            assert!(compiled.validate(&out).is_empty());
            t.row(vec![
                p.to_string(),
                x.to_string(),
                ratio.to_string(),
                out.stats.makespan.to_string(),
                out.stats.total_spin().to_string(),
            ]);
        }
    }
    t.note("Paper (Section 6): 'the proposed scheme works best if the number of PC's equals a power of 2 and is a small multiple of the number of processors' — beyond X = 2P the returns vanish.");
    t
}

/// A4: self-scheduling dispatch cost vs chunking on the simulator.
pub fn dispatch_cost(n: i64, procs: usize, costs: &[u32]) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let compiled = ProcessOriented::new(2 * procs).compile(&nest, &graph, &space);
    let mut t = Table::new(
        "A4 / dispatch cost",
        &format!("self-scheduling claim cost (N={n}, P={procs})"),
        &["dispatch latency (cy)", "makespan", "util %"],
    );
    for &c in costs {
        let config = MachineConfig { dispatch_latency: c, ..MachineConfig::with_processors(procs) };
        let out = compiled.run(&config).expect("simulation failed");
        t.row(vec![
            c.to_string(),
            out.stats.makespan.to_string(),
            f(out.stats.utilization() * 100.0),
        ]);
    }
    t.note("Dynamic self-scheduling (Tang & Yew, the paper's [23]/[24]) costs one claim per iteration; the scheme tolerates it because waits and claims overlap.");
    t
}

/// A5: self-scheduling order (the paper's reference [23]): dynamic
/// claiming vs static cyclic vs static blocked assignment of the same
/// process-oriented programs.
pub fn schedule_order(n: i64, procs: usize, x: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let compiled = ProcessOriented::new(x).compile(&nest, &graph, &space);
    let mut t = Table::new(
        "A5 / schedule order",
        &format!("iteration-to-processor assignment (N={n}, P={procs}, X={x})"),
        &["assignment", "makespan", "spin cycles", "util %", "violations"],
    );
    let config = MachineConfig::with_processors(procs);
    let variants: Vec<(&str, datasync_sim::Workload)> = vec![
        ("dynamic self-scheduling", compiled.workload.clone()),
        (
            "static cyclic",
            datasync_sim::Workload::static_cyclic(compiled.workload.programs.clone(), procs),
        ),
        (
            "static blocked",
            datasync_sim::Workload::static_blocked(compiled.workload.programs.clone(), procs),
        ),
    ];
    for (label, workload) in variants {
        let variant = datasync_schemes::CompiledLoop { workload, ..compiled.clone() };
        let out = variant.run(&config).expect("simulation failed");
        t.row(vec![
            label.into(),
            out.stats.makespan.to_string(),
            out.stats.total_spin().to_string(),
            f(out.stats.utilization() * 100.0),
            variant.validate(&out).len().to_string(),
        ]);
    }
    t.note("Paper (Section 6, citing [23]): scheduling order changes how long processes busy-wait. Blocked assignment makes every processor's first iteration depend on its predecessor's last — near-serial execution; cyclic matches dynamic claiming.");
    t
}

/// A6: unroll-factor sweep — the compiler-side G-grouping (Fig 5.1.b):
/// unrolling shrinks per-element sync frequency at the cost of larger
/// sequential chunks.
pub fn unroll_sweep(n: i64, procs: usize, factors: &[u32]) -> Table {
    let mut t = Table::new(
        "A6 / unroll factor",
        &format!("process-oriented sync ops vs unroll factor (N={n}, P={procs})"),
        &["factor", "iterations", "steps/iter", "broadcasts", "makespan", "violations"],
    );
    for &factor in factors {
        let nest = datasync_loopir::transform::unroll(&fig21_loop(n), factor);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let compiled = ProcessOriented::new(2 * procs).compile(&nest, &graph, &space);
        let out = compiled.run(&MachineConfig::with_processors(procs)).expect("simulation failed");
        let plan_steps = datasync_loopir::plan::SyncPlan::build(
            &nest,
            &datasync_loopir::covering::reduce(&nest, &graph).linearized(&space),
        )
        .n_steps();
        t.row(vec![
            factor.to_string(),
            space.count().to_string(),
            plan_steps.to_string(),
            out.stats.sync_broadcasts.to_string(),
            out.stats.makespan.to_string(),
            compiled.validate(&out).len().to_string(),
        ]);
    }
    t.note("Fig 5.1.b's G-grouping, done by the compiler: each unrolled iteration synchronizes once per source statement but covers `factor` original iterations, so total broadcasts fall roughly as 1/factor.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn banked_memory_helps_every_scheme() {
        let t = super::banked_memory(24, 4, 8);
        assert_eq!(t.rows.len(), 12);
        // For each scheme, banked harms nothing (usually helps).
        for scheme_row in t.rows.iter().filter(|r| r[0] == "bus-held") {
            let banked = t
                .rows
                .iter()
                .find(|r| r[0] == "8 banks" && r[1] == scheme_row[1])
                .expect("matching banked row");
            let held: u64 = scheme_row[2].parse().unwrap();
            let bank: u64 = banked[2].parse().unwrap();
            assert!(bank <= held, "{}: banked {bank} worse than held {held}", scheme_row[1]);
        }
    }

    #[test]
    fn tighter_polling_costs_more_polls_for_a_single_waiter() {
        let t = super::spin_retry(6, &[1, 16]);
        let polls = |waiters: &str, retry: &str| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(waiters) && r[1] == retry).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(
            polls("1", "1") > polls("1", "16"),
            "retry 1 must poll more than retry 16 for a lone waiter"
        );
    }

    #[test]
    fn x_grid_runs_clean() {
        let t = super::x_to_p_grid(24, &[2, 4], &[1, 2]);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn blocked_assignment_serializes() {
        let t = super::schedule_order(32, 4, 8);
        let get = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[1].parse().unwrap()
        };
        assert!(get("static blocked") > get("dynamic"), "blocked must be slower");
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0", "{} violated", r[0]);
        }
    }

    #[test]
    fn unrolling_reduces_broadcasts() {
        let t = super::unroll_sweep(48, 4, &[1, 4]);
        let b: Vec<u64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(b[1] < b[0], "unroll 4 must broadcast less: {b:?}");
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }

    #[test]
    fn dispatch_cost_monotone() {
        let t = super::dispatch_cost(24, 4, &[0, 16]);
        let m0: u64 = t.rows[0][1].parse().unwrap();
        let m16: u64 = t.rows[1][1].parse().unwrap();
        assert!(m0 <= m16);
    }
}

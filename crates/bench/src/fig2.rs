//! E1 / Fig 2.1 — the running example's dependence graph.

use crate::table::Table;
use datasync_loopir::analysis::analyze;
use datasync_loopir::covering::reduce;
use datasync_loopir::workpatterns::fig21_loop;

/// Reproduces Fig 2.1.b: every dependence of the example loop with its
/// kind and distance, plus the covering reduction.
pub fn run() -> Table {
    let nest = fig21_loop(100);
    let graph = analyze(&nest);
    let reduced = reduce(&nest, &graph);
    let mut t = Table::new(
        "E1 / Fig 2.1",
        "dependence graph of the running example",
        &["dependence", "kind", "distance", "after covering"],
    );
    for d in graph.deps() {
        let kept = reduced.deps().contains(d);
        t.row(vec![
            format!("{} -> {}", d.src, d.dst),
            d.kind.to_string(),
            format!("{}", d.linear_distance(&nest)),
            if kept { "kept".into() } else { "covered".into() },
        ]);
    }
    t.note("Paper: flow S1->S2 (2), S1->S3 (1), S4->S5 (1); anti S2->S4 (1), S3->S4 (2); output S1->S4 (3).");
    t.note("S1->S4 is covered by S1->S3 + S3->S4 (Section 2.1); pairwise testing also finds S1->S5 (4), covered by S1->S4 + S4->S5.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn reproduces_paper_graph() {
        let t = super::run();
        assert_eq!(t.rows.len(), 7);
        let covered: Vec<&Vec<String>> = t.rows.iter().filter(|r| r[3] == "covered").collect();
        assert_eq!(covered.len(), 2);
        assert!(t.rows.iter().any(|r| r[0] == "S1 -> S2" && r[2] == "2" && r[1] == "flow"));
    }
}

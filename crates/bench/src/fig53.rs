//! E8 / Fig 5.3 — dependence sources inside branches: every path must
//! bring the synchronization variable forward.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::example3_branches;
use datasync_schemes::compare::report_for;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{ProcessOriented, StatementOriented};
use datasync_sim::MachineConfig;

/// Runs Example 3's branchy loop under the process- and
/// statement-oriented schemes and reports the compensating-update cost.
pub fn run_experiment(n: i64, procs: usize) -> Table {
    let nest = example3_branches(n, 4);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);

    let mut t = Table::new(
        "E8 / Fig 5.3",
        &format!("sources in branches (N={n}, P={procs}): compensating updates on every path"),
        &["scheme", "sync vars", "makespan", "broadcasts", "util %", "violations"],
    );
    let schemes: Vec<Box<dyn Scheme>> =
        vec![Box::new(ProcessOriented::new(2 * procs)), Box::new(StatementOriented::new())];
    for s in schemes {
        let r =
            report_for(s.as_ref(), &nest, &graph, &space, &base, None).expect("simulation failed");
        t.row(vec![
            r.scheme,
            r.sync_vars.to_string(),
            r.makespan.to_string(),
            r.sync_broadcasts.to_string(),
            f(r.utilization * 100.0),
            r.violations.to_string(),
        ]);
    }
    t.note("Paper rule: 'if a synchronization primitive changes a synchronization variable in one path, the synchronization variable must also be changed in all other paths' — arms without the source mark/advance at entry, and transfer_PC guarantees the handoff on every path.");
    t.note("The process-oriented scheme needs one PC per process regardless of how many sources hide in branches; the statement-oriented scheme pays one Advance per SC per iteration on every path.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_schemes_correct_pc_needs_fewer_vars() {
        let t = super::run_experiment(48, 4);
        assert_eq!(t.rows.len(), 2);
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0", "{} violated", r[0]);
        }
    }
}

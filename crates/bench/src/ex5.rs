//! E10 / Example 5 — phase-structured computation (FFT): pairwise
//! synchronization vs a global barrier per stage.

use crate::table::{f, Table};
use datasync_core::phased::PhaseSync;
use datasync_sim::{run, MachineConfig, SyncTransport};
use datasync_workloads::barrier_sim::{
    barrier_violations, barrier_workload, pairwise_violations, pairwise_workload, BarrierKind,
};
use datasync_workloads::fft::{max_error, parallel_fft, sequential_fft};
use datasync_workloads::Complex;
use std::time::Instant;

/// Simulator comparison: `phases` phases with skewed compute; pairwise
/// partner sync vs global barriers.
pub fn sim_experiment(procs: usize, phases: usize, skew: u32) -> Table {
    let compute = move |p: usize, e: usize| 20 + (((p * 13 + e * 5) % 8) as u32 * skew);
    let mut t = Table::new(
        "E10a / Ex 5 (sim)",
        &format!("phase-structured computation (P={procs}, {phases} phases, skew {skew})"),
        &["sync", "makespan", "cycles/phase", "spin cycles", "violations"],
    );
    {
        let w = pairwise_workload(procs, phases, compute);
        let out = run(&MachineConfig::with_processors(procs), &w).expect("sim failed");
        t.row(vec![
            "pairwise (PC, Example 5)".into(),
            out.stats.makespan.to_string(),
            f(out.stats.makespan as f64 / phases as f64),
            out.stats.total_spin().to_string(),
            pairwise_violations(&out.trace, procs, phases).to_string(),
        ]);
    }
    for (kind, transport, label) in [
        (BarrierKind::Butterfly, SyncTransport::DedicatedBus, "global butterfly barrier"),
        (BarrierKind::Counter, SyncTransport::SharedMemory, "global counter barrier (hot-spot)"),
    ] {
        let w = barrier_workload(procs, phases, kind, compute);
        let out = run(&MachineConfig::with_processors(procs).transport(transport), &w)
            .expect("sim failed");
        t.row(vec![
            label.into(),
            out.stats.makespan.to_string(),
            f(out.stats.makespan as f64 / phases as f64),
            out.stats.total_spin().to_string(),
            barrier_violations(&out.trace, procs, phases).to_string(),
        ]);
    }
    t.note("Paper: 'since communication only takes place between two processors in each stage, there is no need for a global barrier as in [7]' — pairwise waiting absorbs skew that a barrier serializes.");
    t
}

/// Real-thread wall-clock FFT comparison.
pub fn fft_experiment(n: usize, workers: &[usize]) -> Table {
    let x: Vec<Complex> = (0..n)
        .map(|i| {
            let ti = i as f64;
            Complex::new((ti * 0.031).sin() + 0.3 * (ti * 0.37).cos(), (ti * 0.011).sin())
        })
        .collect();
    let reference = sequential_fft(&x);

    let mut t = Table::new(
        "E10b / Ex 5 (threads)",
        &format!("parallel FFT wall-clock, n = {n} points"),
        &["workers", "sync", "time (ms)", "max error vs sequential"],
    );
    for &w in workers {
        for sync in [PhaseSync::Pairwise, PhaseSync::GlobalDissemination, PhaseSync::GlobalCounter]
        {
            // Warm-up + best-of-3 to de-noise.
            let mut best = f64::INFINITY;
            let mut err = 0.0;
            for _ in 0..3 {
                let t0 = Instant::now();
                let out = parallel_fft(&x, w, sync);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                best = best.min(dt);
                err = max_error(&out, &reference);
            }
            t.row(vec![
                w.to_string(),
                sync.name().into(),
                format!("{best:.2}"),
                format!("{err:.1e}"),
            ]);
        }
    }
    t.note("All policies must agree bit-for-bit with the sequential FFT (error 0).");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn pairwise_beats_barriers_under_skew() {
        let t = super::sim_experiment(8, 10, 12);
        let get = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[1].parse().unwrap()
        };
        let pw = get("pairwise");
        let bf = get("global butterfly");
        let ctr = get("global counter");
        assert!(pw <= bf, "pairwise {pw} vs butterfly {bf}");
        assert!(bf < ctr, "butterfly {bf} vs counter {ctr}");
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }

    #[test]
    fn fft_table_has_zero_error() {
        let t = super::fft_experiment(1024, &[1, 4]);
        for r in &t.rows {
            assert!(r[3].starts_with("0.0e0") || r[3] == "0e0", "error {} for {:?}", r[3], r);
        }
    }
}

//! The parallel sweep runner: fans independent experiments across cores.
//!
//! Every experiment in this crate is a pure function of its parameters
//! (the simulator draws randomness only from seeds carried in the
//! config), so whole tables — and the individual runs inside a sweep —
//! can execute concurrently without changing a single byte of output.
//! Both helpers delegate to [`datasync_core::par`], which hands results
//! back in **input order** and degrades to serial execution on one core,
//! under `DATASYNC_THREADS=1`, or when nested inside another parallel
//! region.

use crate::table::Table;
use datasync_core::par;

/// A deferred experiment: builds one table when called.
pub type TableJob = Box<dyn FnOnce() -> Table + Send>;

/// Runs a batch of independent table-producing jobs in parallel and
/// returns the tables in input order (identical to calling each job in
/// sequence).
pub fn run_tables(jobs: Vec<TableJob>) -> Vec<Table> {
    par::par_map(jobs, |job| job())
}

/// Maps `f` over sweep inputs in parallel with deterministic output
/// order — the generic helper for per-point simulation sweeps.
pub fn runs<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par::par_map(inputs, f)
}

/// [`runs`] pinned to one worker — the serial baseline the perf
/// self-benchmark compares against.
pub fn runs_serial<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par::par_map_threads(1, inputs, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_keep_input_order() {
        let jobs: Vec<TableJob> = (0..6)
            .map(|i| {
                Box::new(move || {
                    let mut t = Table::new(&format!("T{i}"), "order probe", &["v"]);
                    t.row(vec![i.to_string()]);
                    t
                }) as TableJob
            })
            .collect();
        let tables = run_tables(jobs);
        for (i, t) in tables.iter().enumerate() {
            assert_eq!(t.id, format!("T{i}"));
            assert_eq!(t.rows[0][0], i.to_string());
        }
    }

    #[test]
    fn runs_match_serial() {
        let inputs: Vec<u64> = (0..40).collect();
        let f = |x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(7);
        assert_eq!(runs(inputs.clone(), f), runs_serial(inputs, f));
    }
}

//! R1 — scheme degradation under deterministic fault injection.
//!
//! Sweeps every synchronization scheme across every fault class (plus
//! combined chaos) at increasing intensity, and reports the four-way
//! outcome classification together with the slowdown faults impose on
//! runs that still complete. The paper's schemes guard *ordering*, so
//! bounded delivery faults may cost cycles but must never produce a
//! dependence-order violation or a wedge.

use crate::table::Table;
use datasync_schemes::robustness::{sweep, Outcome, Tally};
use datasync_sim::MachineConfig;

/// Runs the degradation sweep and formats it as a table: one row per
/// scheme x fault class, one outcome column per intensity, plus the
/// completed-run slowdown at the highest intensity relative to the
/// fault-free column.
pub fn degradation(n: i64, procs: usize, intensities: &[u8], seed: u64) -> Table {
    let base = MachineConfig { max_cycles: 3_000_000, ..MachineConfig::with_processors(procs) };
    let matrix = sweep(n, &base, intensities, seed);
    let mut headers: Vec<String> = vec!["scheme".into(), "fault".into()];
    headers.extend(matrix.intensities.iter().map(|i| format!("{i}%")));
    headers.push("slowdown".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "R1 / robustness",
        &format!(
            "scheme degradation under fault injection (Fig 2.1 loop, N={n}, P={procs}, seed {seed})"
        ),
        &header_refs,
    );
    for row in &matrix.rows {
        let mut cells = vec![row.scheme.clone(), row.fault.clone()];
        cells.extend(row.outcomes.iter().map(Outcome::cell));
        let slowdown = match (row.outcomes.first(), row.outcomes.last()) {
            (
                Some(Outcome::Completed { makespan: base, .. }),
                Some(Outcome::Completed { makespan: worst, .. }),
            ) if *base > 0 => format!("{:.2}x", *worst as f64 / *base as f64),
            _ => "-".into(),
        };
        cells.push(slowdown);
        t.row(cells);
    }
    let tally = Tally::of(&matrix);
    t.note(format!(
        "{} runs: {} ok, {} deadlocked, {} timed out, {} order violations",
        tally.total(),
        tally.ok,
        tally.deadlock,
        tally.timeout,
        tally.violated
    ));
    t.note(
        "claim: bounded faults (capped redeliveries, stale windows, stalls) cost cycles \
         but never break dependence order — VIOLATED must not appear",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_table_shape() {
        let t = degradation(10, 4, &[0, 50], 77);
        // 5 schemes x 7 fault rows.
        assert_eq!(t.rows.len(), 35);
        assert_eq!(t.headers.len(), 5); // scheme, fault, 0%, 50%, slowdown
                                        // Fault-free column all ok; no violations anywhere.
        for row in &t.rows {
            assert!(
                row[2].starts_with("ok"),
                "{}/{} not ok fault-free: {}",
                row[0],
                row[1],
                row[2]
            );
            assert!(!row[3].contains("VIOLATED"), "{}/{}: {}", row[0], row[1], row[3]);
        }
    }

    #[test]
    fn slowdown_reported_for_completed_rows() {
        let t = degradation(10, 4, &[0, 60], 3);
        assert!(
            t.rows.iter().any(|r| r.last().map(|s| s.ends_with('x')).unwrap_or(false)),
            "at least some rows complete at 60% and report a slowdown"
        );
    }
}

//! R1 — scheme degradation under deterministic fault injection.
//!
//! Sweeps every synchronization scheme across every fault class (plus
//! combined chaos) at increasing intensity, and reports the seven-way
//! outcome classification together with the slowdown faults impose on
//! runs that still complete. The paper's schemes guard *ordering*, so
//! bounded delivery faults may cost cycles but must never produce a
//! dependence-order violation — and the two unbounded classes
//! (broadcast loss, which drops wakeups forever, and processor
//! fail-stop, which removes a participant), both of which wedge schemes
//! with recovery off, must be fully healed by the self-healing ladder
//! with recovery on: repaired in place, reconfigured onto the survivor
//! quorum, or degraded to the conservative fallback. The
//! [`json_report`] captures that before/after pair machine-readably.

use crate::table::Table;
use datasync_schemes::robustness::{sweep, Matrix, Outcome, Tally};
use datasync_sim::{MachineConfig, RecoveryPolicy};

fn run_matrix(
    n: i64,
    procs: usize,
    intensities: &[u8],
    seed: u64,
    recovery: RecoveryPolicy,
) -> Matrix {
    let base =
        MachineConfig { max_cycles: 3_000_000, recovery, ..MachineConfig::with_processors(procs) };
    sweep(n, &base, intensities, seed)
}

/// Runs the degradation sweep with the full self-healing ladder armed
/// (the CLI default) and formats it as a table; see
/// [`degradation_with`].
pub fn degradation(n: i64, procs: usize, intensities: &[u8], seed: u64) -> Table {
    degradation_with(n, procs, intensities, seed, RecoveryPolicy::Full)
}

/// Runs the degradation sweep under `recovery` and formats it as a
/// table: one row per scheme x fault class, one outcome column per
/// intensity, plus the completed-run slowdown at the highest intensity
/// relative to the fault-free column.
pub fn degradation_with(
    n: i64,
    procs: usize,
    intensities: &[u8],
    seed: u64,
    recovery: RecoveryPolicy,
) -> Table {
    let matrix = run_matrix(n, procs, intensities, seed, recovery);
    let mut headers: Vec<String> = vec!["scheme".into(), "fault".into()];
    headers.extend(matrix.intensities.iter().map(|i| format!("{i}%")));
    headers.push("slowdown".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "R1 / robustness",
        &format!(
            "scheme degradation under fault injection (Fig 2.1 loop, N={n}, P={procs}, \
             seed {seed}, recovery {recovery})"
        ),
        &header_refs,
    );
    for row in &matrix.rows {
        let mut cells = vec![row.scheme.clone(), row.fault.clone()];
        cells.extend(row.outcomes.iter().map(Outcome::cell));
        let slowdown = match (row.outcomes.first(), row.outcomes.last()) {
            (
                Some(Outcome::Completed { makespan: base, .. }),
                Some(Outcome::Completed { makespan: worst, .. }),
            ) if *base > 0 => format!("{:.2}x", *worst as f64 / *base as f64),
            _ => "-".into(),
        };
        cells.push(slowdown);
        t.row(cells);
    }
    let tally = Tally::of(&matrix);
    t.note(format!(
        "{} runs: {} ok, {} recovered, {} reconfigured, {} degraded, {} deadlocked, \
         {} timed out, {} order violations",
        tally.total(),
        tally.ok,
        tally.recovered,
        tally.reconfigured,
        tally.degraded,
        tally.deadlock,
        tally.timeout,
        tally.violated
    ));
    t.note(
        "claim: bounded faults (capped redeliveries, stale windows, stalls) cost cycles \
         but never break dependence order — VIOLATED must not appear; the unbounded \
         classes (broadcast loss, processor fail-stop) wedge schemes with recovery off \
         and are fully healed (ok / recovered / RECONF / DEGRADED, never DEADLOCK / \
         TIMEOUT) with recovery on",
    );
    t
}

/// The before/after robustness report as a JSON document: the same sweep
/// with the self-healing ladder disarmed (`recovery_off`) and fully
/// armed (`recovery_on`), each as a complete matrix with per-cell labels
/// and the outcome tally. This is the machine-readable artifact behind
/// the claim that recovery shifts every DEADLOCK/TIMEOUT cell to
/// ok/recovered/degraded; CI archives it as `BENCH_robustness.json`.
pub fn json_report(n: i64, procs: usize, intensities: &[u8], seed: u64) -> String {
    let off = run_matrix(n, procs, intensities, seed, RecoveryPolicy::Off);
    let on = run_matrix(n, procs, intensities, seed, RecoveryPolicy::Full);
    let indent = |doc: String| doc.trim_end().replace('\n', "\n  ");
    format!(
        "{{\n  \"experiment\": \"robustness degradation matrix\",\n  \
         \"loop\": \"fig21\",\n  \"n\": {n},\n  \"procs\": {procs},\n  \
         \"seed\": {seed},\n  \"recovery_off\": {},\n  \"recovery_on\": {}\n}}\n",
        indent(off.to_json()),
        indent(on.to_json())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_table_shape() {
        let t = degradation(10, 4, &[0, 50], 77);
        // 5 schemes x 9 fault rows (8 classes + chaos).
        assert_eq!(t.rows.len(), 45);
        assert_eq!(t.headers.len(), 5); // scheme, fault, 0%, 50%, slowdown
                                        // Fault-free column all ok; with the ladder armed no
                                        // cell may violate, deadlock, or time out.
        for row in &t.rows {
            assert!(
                row[2].starts_with("ok"),
                "{}/{} not ok fault-free: {}",
                row[0],
                row[1],
                row[2]
            );
            let cell = &row[3];
            assert!(
                !cell.contains("VIOLATED")
                    && !cell.contains("DEADLOCK")
                    && !cell.contains("TIMEOUT"),
                "{}/{}: {cell}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn recovery_off_table_shows_the_wedge() {
        let t = degradation_with(10, 4, &[0, 50], 77, RecoveryPolicy::Off);
        assert_eq!(t.rows.len(), 45);
        let loss_cells: Vec<&String> =
            t.rows.iter().filter(|r| r[1] == "bcast-loss").map(|r| &r[3]).collect();
        assert!(
            loss_cells.iter().any(|c| c.contains("DEADLOCK") || c.contains("TIMEOUT")),
            "50% broadcast loss must wedge some scheme with recovery off: {loss_cells:?}"
        );
        assert!(
            !t.rows.iter().any(|r| r[3].contains("recovered") || r[3].contains("DEGRADED")),
            "no self-healing may occur with recovery off"
        );
    }

    #[test]
    fn slowdown_reported_for_completed_rows() {
        let t = degradation(10, 4, &[0, 60], 3);
        assert!(
            t.rows.iter().any(|r| r.last().map(|s| s.ends_with('x')).unwrap_or(false)),
            "at least some rows complete at 60% and report a slowdown"
        );
    }

    #[test]
    fn json_report_carries_the_before_after_pair() {
        let json = json_report(8, 4, &[0, 50], 7);
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"recovery_off\""));
        assert!(json.contains("\"recovery_on\""));
        // The pair tells the story: wedges before, none after.
        let on_half = json.split("\"recovery_on\"").nth(1).unwrap();
        assert!(on_half.contains("\"deadlock\": 0"), "{on_half}");
        assert!(on_half.contains("\"timeout\": 0"), "{on_half}");
        let off_half = json
            .split("\"recovery_off\"")
            .nth(1)
            .unwrap()
            .split("\"recovery_on\"")
            .next()
            .unwrap();
        assert!(!off_half.contains("\"deadlock\": 0"), "{off_half}");
    }
}

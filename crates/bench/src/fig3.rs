//! E2 / E3 / E12 — the Section 3 scheme comparison on the running
//! example: synchronization activity (Fig 3.1, Fig 3.2) and storage /
//! initialization scaling.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::compare::compare_all;
use datasync_sim::MachineConfig;

/// Runs every scheme on Fig 2.1's loop for one `n`.
pub fn comparison(n: i64, procs: usize, x: usize) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);
    let rows = compare_all(&nest, &graph, &space, &base, x).expect("simulation failed");
    let mut t = Table::new(
        "E2-E3 / Fig 3.1-3.2",
        &format!("all schemes on the Fig 2.1 loop (N={n}, P={procs}, X={x})"),
        &[
            "scheme",
            "sync vars",
            "init ops",
            "extra cells",
            "makespan",
            "speedup",
            "util %",
            "data tx",
            "polls",
            "broadcasts",
            "violations",
        ],
    );
    for r in rows {
        t.row(vec![
            r.scheme,
            r.sync_vars.to_string(),
            r.init_ops.to_string(),
            r.extra_cells.to_string(),
            r.makespan.to_string(),
            f(r.speedup),
            f(r.utilization * 100.0),
            r.data_transactions.to_string(),
            r.spin_polls.to_string(),
            r.sync_broadcasts.to_string(),
            r.violations.to_string(),
        ]);
    }
    t.note("Paper: data-oriented schemes need keys per element (storage ~ N) and costly initialization; the instance-based scheme additionally multiplies data cells; SCs scale with source statements; PCs with X only.");
    t
}

/// The E12 storage-scaling table: sync variables vs N per scheme.
pub fn storage_scaling(ns: &[i64], procs: usize, x: usize) -> Table {
    let mut t = Table::new(
        "E12 / Sec 3+6",
        "synchronization-variable storage vs loop length",
        &["scheme", "N=first", "N=mid", "N=last"],
    );
    assert_eq!(ns.len(), 3, "expects three N values");
    let mut per_scheme: Vec<(String, Vec<u64>)> = Vec::new();
    for &n in ns {
        let nest = fig21_loop(n);
        let graph = analyze(&nest);
        let space = IterSpace::of(&nest);
        let base = MachineConfig::with_processors(procs);
        for r in compare_all(&nest, &graph, &space, &base, x).expect("simulation failed") {
            match per_scheme.iter_mut().find(|(s, _)| *s == r.scheme) {
                Some((_, v)) => v.push(r.sync_vars),
                None => per_scheme.push((r.scheme, vec![r.sync_vars])),
            }
        }
    }
    for (scheme, vars) in per_scheme {
        t.row(vec![scheme, vars[0].to_string(), vars[1].to_string(), vars[2].to_string()]);
    }
    t.note(format!("N values: {ns:?}. Keys grow linearly with N; SCs and PCs are constant."));
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn comparison_has_six_schemes_no_violations() {
        let t = super::comparison(24, 4, 8);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0", "{} has violations", r[0]);
        }
    }

    #[test]
    fn storage_scales_as_claimed() {
        let t = super::storage_scaling(&[16, 32, 64], 4, 8);
        let find = |name: &str| -> Vec<u64> {
            t.rows
                .iter()
                .find(|r| r[0].starts_with(name))
                .map(|r| r[1..].iter().map(|c| c.parse().unwrap()).collect())
                .unwrap()
        };
        let keys = find("reference-based");
        assert!(keys[2] > keys[0], "keys must grow with N");
        let pcs = find("process-oriented (X=8, improved)");
        assert_eq!(pcs, vec![8, 8, 8], "PCs independent of N");
        let scs = find("statement-oriented");
        assert_eq!(scs, vec![4, 4, 4], "SCs independent of N");
    }
}

//! Load generator for the sweep service: cached throughput, shed-storm
//! behavior, p99 latency and the crash-resume drill — the
//! machine-readable `BENCH_serve.json` artifact.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = datasync_bench::serve::run(quick);
    print!("{}", report.summary());
    match std::fs::write("BENCH_serve.json", report.to_json()) {
        Ok(()) => println!("wrote BENCH_serve.json"),
        Err(e) => eprintln!("cannot write BENCH_serve.json: {e}"),
    }
}

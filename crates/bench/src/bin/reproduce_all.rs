//! Runs every experiment; `--markdown` emits EXPERIMENTS.md-ready tables,
//! `--quick` shrinks problem sizes.
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let quick = args.iter().any(|a| a == "--quick");
    for table in datasync_bench::run_all(quick) {
        if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}

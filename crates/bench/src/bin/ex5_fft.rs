//! E10: FFT phases — pairwise vs global-barrier synchronization.
fn main() {
    println!("{}", datasync_bench::ex5::sim_experiment(8, 12, 12));
    println!("{}", datasync_bench::ex5::fft_experiment(1 << 14, &[1, 2, 4, 8]));
}

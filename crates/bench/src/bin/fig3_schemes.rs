//! E2/E3/E12: the Section 3 scheme comparison and storage scaling.
fn main() {
    println!("{}", datasync_bench::fig3::comparison(64, 4, 8));
    println!("{}", datasync_bench::fig3::storage_scaling(&[32, 64, 128], 4, 8));
}

//! A1-A4: ablation sweeps over the simulator's design axes.
fn main() {
    println!("{}", datasync_bench::ablations::banked_memory(48, 4, 8));
    println!("{}", datasync_bench::ablations::spin_retry(8, &[1, 2, 4, 8, 16]));
    println!("{}", datasync_bench::ablations::x_to_p_grid(48, &[2, 4, 8], &[1, 2, 4]));
    println!("{}", datasync_bench::ablations::dispatch_cost(48, 4, &[0, 2, 8, 16]));
    println!("{}", datasync_bench::ablations::schedule_order(48, 4, 8));
    println!("{}", datasync_bench::ablations::unroll_sweep(48, 4, &[1, 2, 4, 8]));
}

//! E11: sync-bus traffic and write coalescing.
fn main() {
    println!("{}", datasync_bench::sec6::run_experiment(64, 4));
}

//! E11: sync-bus traffic, write coalescing, the fabric ablation and the
//! cache-coherence ablations — plus the machine-readable
//! `BENCH_fabric.json` artifact.
fn main() {
    println!("{}", datasync_bench::sec6::run_experiment(64, 4));
    println!("{}", datasync_bench::sec6::fabric_ablation(64, 4));
    println!("{}", datasync_bench::sec6::cache_ablation(64, 4));
    println!("{}", datasync_bench::sec6::cache_sweep(64, 4));
    let json = datasync_bench::sec6::fabric_json(64, 4);
    match std::fs::write("BENCH_fabric.json", &json) {
        Ok(()) => println!("wrote BENCH_fabric.json"),
        Err(e) => eprintln!("cannot write BENCH_fabric.json: {e}"),
    }
}

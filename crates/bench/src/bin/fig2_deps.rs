//! E1: prints the Fig 2.1 dependence graph reproduction.
fn main() {
    println!("{}", datasync_bench::fig2::run());
}

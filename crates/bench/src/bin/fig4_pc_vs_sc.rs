//! E4/E5: delay injection and the X sweep.
fn main() {
    println!("{}", datasync_bench::fig4::delay_injection(64, 8, 16, 400));
    println!("{}", datasync_bench::fig4::x_sweep(64, 4, &[1, 2, 4, 8, 16]));
}

//! E8: dependence sources in branches.
fn main() {
    println!("{}", datasync_bench::fig53::run_experiment(64, 4));
}

//! E9: butterfly vs counter barrier, hot-spot processor sweep.
fn main() {
    println!("{}", datasync_bench::fig54::run_experiment(&[2, 4, 8, 16, 32], 8));
}

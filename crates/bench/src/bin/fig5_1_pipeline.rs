//! E6: wavefront vs asynchronous pipelining with a G sweep.
fn main() {
    println!("{}", datasync_bench::fig51::run_experiment(33, 4, 24, &[1, 2, 4, 8]));
    println!("{}", datasync_bench::fig51::p_sweep(33, 24, &[1, 2, 4, 8, 16]));
}

//! R1: scheme degradation matrix under deterministic fault injection.
fn main() {
    println!("{}", datasync_bench::robustness::degradation(24, 4, &[0, 25, 50, 75], 1989));
}

//! R1: scheme degradation matrix under deterministic fault injection —
//! the before/after recovery pair, plus the machine-readable
//! `BENCH_robustness.json` artifact.

use datasync_sim::RecoveryPolicy;

fn main() {
    let (n, procs, intensities, seed) = (24, 4, [0u8, 25, 50, 75], 1989);
    println!("== recovery off (the wedge) ==");
    println!(
        "{}",
        datasync_bench::robustness::degradation_with(
            n,
            procs,
            &intensities,
            seed,
            RecoveryPolicy::Off
        )
    );
    println!("== recovery on (the self-healing ladder) ==");
    println!("{}", datasync_bench::robustness::degradation(n, procs, &intensities, seed));
    let json = datasync_bench::robustness::json_report(n, procs, &intensities, seed);
    match std::fs::write("BENCH_robustness.json", &json) {
        Ok(()) => println!("wrote BENCH_robustness.json"),
        Err(e) => eprintln!("cannot write BENCH_robustness.json: {e}"),
    }
}

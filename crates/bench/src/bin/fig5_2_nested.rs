//! E7: nested Doacross loops — linearized pids vs boundary checks.
fn main() {
    println!("{}", datasync_bench::fig52::run_experiment(8, 10, 4));
}

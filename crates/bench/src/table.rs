//! Plain-text result tables for the experiment harnesses.

use std::fmt;

/// One experiment's result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment id, e.g. `"E6 / Fig 5.1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper claim, observed shape).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch in {}", self.id);
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for r in &self.rows {
            let _ = writeln!(out, "| {} |", r.join(" | "));
        }
        for n in &self.notes {
            let _ = writeln!(out, "\n> {n}");
        }
        out
    }
}

impl fmt::Display for Table {
    /// Fixed-width text rendering for terminals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:>w$} ", c, w = widths[i])?;
                if i + 1 < cells.len() {
                    write!(f, "|")?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().map(|w| w + 3).sum();
        writeln!(f, "{}", "-".repeat(total.saturating_sub(1)))?;
        for r in &self.rows {
            line(f, r)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("shape holds");
        let text = t.to_string();
        assert!(text.contains("E0"));
        assert!(text.contains("shape holds"));
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        Table::new("E0", "demo", &["a", "b"]).row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1.234), "1.23");
    }
}

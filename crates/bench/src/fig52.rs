//! E7 / Fig 5.2 — multiply-nested Doacross loops: implicit coalescing
//! with linearized pids vs data-oriented boundary handling.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::example2_nested;
use datasync_schemes::compare::report_for;
use datasync_schemes::scheme::Scheme;
use datasync_schemes::{InstanceBased, ProcessOriented, ReferenceBased};
use datasync_sim::MachineConfig;

/// Runs Example 2's doubly-nested loop under the process-oriented scheme
/// (implicit coalescing, no boundary tests) and the data-oriented schemes
/// with and without the `O(r*d)` boundary-check charge.
pub fn run_experiment(n: i64, m: i64, procs: usize) -> Table {
    let nest = example2_nested(n, m, 4);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);

    let mut t = Table::new(
        "E7 / Fig 5.2",
        &format!(
            "doubly-nested Doacross (N={n}, M={m}, P={procs}): linearized pids vs boundary checks"
        ),
        &["scheme", "boundary charge", "makespan", "sync vars", "util %", "violations"],
    );
    let mut add = |scheme: &dyn Scheme, charge: &str| {
        let r = report_for(scheme, &nest, &graph, &space, &base, None).expect("simulation failed");
        t.row(vec![
            r.scheme,
            charge.into(),
            r.makespan.to_string(),
            r.sync_vars.to_string(),
            f(r.utilization * 100.0),
            r.violations.to_string(),
        ]);
    };
    add(&ProcessOriented::new(2 * procs), "none (lpid coalescing)");
    add(&ReferenceBased::new(), "O(r*d)/iter");
    add(&ReferenceBased { boundary_checks: false }, "ablation: none");
    add(&InstanceBased::new(), "O(r*d)/iter");
    add(&InstanceBased { boundary_checks: false }, "ablation: none");
    t.note("Paper: linearized pids let the nest run as a singly-nested loop 'without worrying about loop boundaries'; data-oriented schemes must test boundaries explicitly at O(r*d) per iteration even after linearization.");
    t.note("The extra conservative dependences of implicit coalescing (dashed arcs of Fig 5.2.c) are included in the PC scheme's distances.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn process_oriented_needs_fewest_vars_and_no_charge() {
        let t = super::run_experiment(6, 8, 4);
        assert_eq!(t.rows.len(), 5);
        let po_vars: u64 = t.rows[0][3].parse().unwrap();
        let rb_vars: u64 = t.rows[1][3].parse().unwrap();
        assert!(po_vars < rb_vars, "PCs ({po_vars}) must undercut keys ({rb_vars})");
        // The boundary charge costs the data-oriented schemes cycles.
        let rb_with: u64 = t.rows[1][2].parse().unwrap();
        let rb_without: u64 = t.rows[2][2].parse().unwrap();
        assert!(rb_with >= rb_without);
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }
}

//! Experiment harnesses regenerating every figure and claim of the paper.
//!
//! One module per figure/claim; every module returns a [`table::Table`]
//! so the binaries in `src/bin/` can print terminal or markdown output,
//! and the module tests assert the *shape* of each result (who wins, how
//! things scale) without pinning absolute cycle counts.
//!
//! | Module | Experiment |
//! |---|---|
//! | [`fig2`] | E1 — Fig 2.1 dependence graph + covering |
//! | [`fig3`] | E2/E3/E12 — Section 3 scheme comparison and storage scaling |
//! | [`fig4`] | E4/E5 — statement-oriented serialization vs PCs; X sweep |
//! | [`fig51`] | E6 — wavefront vs asynchronous pipelining; G sweep |
//! | [`fig52`] | E7 — nested loops: linearized pids vs boundary checks |
//! | [`fig53`] | E8 — dependence sources in branches |
//! | [`fig54`] | E9 — butterfly vs counter barrier (hot-spot sweep) |
//! | [`ex5`] | E10 — FFT phases: pairwise vs global barrier (sim + threads) |
//! | [`sec6`] | E11 — sync-bus traffic and write coalescing |
//! | [`ablations`] | A1-A4 — memory model, spin retry, X:P ratio, dispatch cost |
//! | [`robustness`] | R1 — scheme degradation under deterministic fault injection |
//! | [`chaos`] | R2 — seeded chaos fuzzing with shrinking reproducers |
//! | [`perf`] | Self-benchmark — fast-forward kernel and sweep-runner speedups |
//! | [`scale`] | P-scaling curve — kernel throughput at P = 8 → 1024 |
//! | [`serve`] | Sweep-service load generator — cached throughput, shed storm, crash-resume drill |
//!
//! [`run_all`] fans the experiments across cores via [`sweep`]; every
//! experiment is a pure function of its parameters, so the parallel run
//! produces byte-identical tables in the same order as a serial one.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablations;
pub mod chaos;
pub mod ex5;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig51;
pub mod fig52;
pub mod fig53;
pub mod fig54;
pub mod harness;
pub mod perf;
pub mod robustness;
pub mod scale;
pub mod sec6;
pub mod serve;
pub mod sweep;
pub mod table;

use sweep::TableJob;
use table::Table;

/// Runs every experiment at its default (paper-shape) parameters.
///
/// `quick` shrinks problem sizes for smoke runs.
pub fn run_all(quick: bool) -> Vec<Table> {
    let (n, relax_n, fft_n) = if quick { (24, 9, 1 << 10) } else { (64, 33, 1 << 14) };
    let jobs: Vec<TableJob> = vec![
        Box::new(fig2::run),
        Box::new(move || fig3::comparison(n, 4, 8)),
        Box::new(move || fig3::storage_scaling(&[n / 2, n, n * 2], 4, 8)),
        Box::new(move || fig4::delay_injection(n, 8, n as u64 / 4, 400)),
        Box::new(move || fig4::x_sweep(n, 4, &[1, 2, 4, 8, 16])),
        Box::new(move || fig51::run_experiment(relax_n, 4, 24, &[1, 2, 4, 8])),
        Box::new(move || fig51::p_sweep(relax_n, 24, &[1, 2, 4, 8])),
        Box::new(|| fig52::run_experiment(8, 10, 4)),
        Box::new(move || fig53::run_experiment(n, 4)),
        Box::new(|| fig54::run_experiment(&[2, 4, 8, 16, 32], 8)),
        Box::new(|| ex5::sim_experiment(8, 12, 12)),
        Box::new(move || ex5::fft_experiment(fft_n, &[1, 2, 4, 8])),
        Box::new(move || sec6::run_experiment(n, 4)),
        Box::new(move || sec6::fabric_ablation(n, 4)),
        Box::new(move || sec6::cache_ablation(n, 4)),
        Box::new(move || sec6::cache_sweep(n, 4)),
        Box::new(move || ablations::banked_memory(n, 4, 8)),
        Box::new(|| ablations::spin_retry(8, &[1, 2, 4, 8, 16])),
        Box::new(move || ablations::x_to_p_grid(n, &[2, 4, 8], &[1, 2, 4])),
        Box::new(move || ablations::dispatch_cost(n, 4, &[0, 2, 8, 16])),
        Box::new(move || ablations::schedule_order(n, 4, 8)),
        Box::new(move || ablations::unroll_sweep(n, 4, &[1, 2, 4, 8])),
        Box::new(move || {
            robustness::degradation(if quick { 10 } else { 24 }, 4, &[0, 25, 50, 75], 1989)
        }),
    ];
    sweep::run_tables(jobs)
}

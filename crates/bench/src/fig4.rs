//! E4 / E5 — statement-oriented serialization vs the process-oriented
//! scheme (Figs 3.2 and 4.1-4.3), with delay injection and an `X` sweep.

use crate::table::{f, Table};
use datasync_loopir::analysis::analyze;
use datasync_loopir::space::IterSpace;
use datasync_loopir::workpatterns::fig21_loop;
use datasync_schemes::compare::report_for;
use datasync_schemes::scheme::{CostFn, Scheme};
use datasync_schemes::{ProcessOriented, StatementOriented};
use datasync_sim::MachineConfig;

/// Delay-injection experiment: one slow iteration (`slow_pid`, cost
/// multiplier) in the Fig 2.1 loop. In the statement-oriented scheme the
/// sequential `Advance` handoff stalls every later iteration behind it;
/// the process-oriented scheme only delays true dependents.
pub fn delay_injection(n: i64, procs: usize, slow_pid: u64, slow_cost: u32) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);
    let cost: CostFn<'_> = &move |_s, pid| if pid == slow_pid { slow_cost } else { 4 };

    let schemes: Vec<Box<dyn Scheme>> = vec![
        Box::new(StatementOriented::new()),
        Box::new(ProcessOriented::basic(2 * procs)),
        Box::new(ProcessOriented::new(2 * procs)),
    ];
    let mut t = Table::new(
        "E4-E5 / Fig 3.2 vs 4.1",
        &format!(
            "delay injection: iteration {slow_pid} costs {slow_cost} cycles/stmt (others 4); N={n}, P={procs}"
        ),
        &["scheme", "makespan", "spin cycles", "util %", "violations"],
    );
    for s in schemes {
        let r = report_for(s.as_ref(), &nest, &graph, &space, &base, Some(cost))
            .expect("simulation failed");
        t.row(vec![
            r.scheme,
            r.makespan.to_string(),
            r.spin.to_string(),
            f(r.utilization * 100.0),
            r.violations.to_string(),
        ]);
    }
    t.note("Paper (Section 4): 'If for some reason one process delays its release of the SC, all later processes will be affected' — the statement-oriented makespan absorbs the delay serially; the PC scheme localizes it.");
    t
}

/// The `X` sweep of the folding trade-off: fewer counters mean more
/// ownership waiting (processes `i` and `i+X` share `PC[i mod X]`).
pub fn x_sweep(n: i64, procs: usize, xs: &[usize]) -> Table {
    let nest = fig21_loop(n);
    let graph = analyze(&nest);
    let space = IterSpace::of(&nest);
    let base = MachineConfig::with_processors(procs);
    let mut t = Table::new(
        "E5 / Sec 4+6",
        &format!("process-counter folding: X sweep (N={n}, P={procs})"),
        &["X", "primitives", "makespan", "spin cycles", "broadcasts", "violations"],
    );
    for &x in xs {
        for improved in [false, true] {
            let s = if improved { ProcessOriented::new(x) } else { ProcessOriented::basic(x) };
            let r = report_for(&s, &nest, &graph, &space, &base, None).expect("simulation failed");
            t.row(vec![
                x.to_string(),
                if improved { "improved".into() } else { "basic".into() },
                r.makespan.to_string(),
                r.spin.to_string(),
                r.sync_broadcasts.to_string(),
                r.violations.to_string(),
            ]);
        }
    }
    t.note("Paper (Section 6): the scheme works best when X is a power of two and a small multiple of the processor count; the improved primitives never wait before intermediate marks.");
    t
}

#[cfg(test)]
mod tests {
    #[test]
    fn statement_oriented_absorbs_delay_worst() {
        let t = super::delay_injection(40, 8, 10, 400);
        let makespan = |name: &str| -> u64 {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[1].parse().unwrap()
        };
        let so = makespan("statement-oriented");
        let po = makespan("process-oriented (X=16, improved)");
        assert!(po < so, "process-oriented {po} must beat statement-oriented {so} under skew");
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }

    #[test]
    fn x_sweep_monotone_enough() {
        let t = super::x_sweep(48, 4, &[1, 4, 16]);
        assert_eq!(t.rows.len(), 6);
        let get = |x: &str, prim: &str| -> u64 {
            t.rows.iter().find(|r| r[0] == x && r[1] == prim).unwrap()[2].parse().unwrap()
        };
        // Generous X should not be slower than the fully folded X=1.
        assert!(get("16", "improved") <= get("1", "improved"));
    }
}

//! E9 / Fig 5.4 — butterfly barrier vs centralized counter barrier:
//! the hot-spot effect over a processor sweep.

use crate::table::{f, Table};
use datasync_sim::{run, MachineConfig, SyncTransport};
use datasync_workloads::barrier_sim::{barrier_violations, barrier_workload, BarrierKind};

/// One barrier configuration's measurements.
fn measure(
    procs: usize,
    episodes: usize,
    kind: BarrierKind,
    transport: SyncTransport,
) -> (u64, u64, u64, usize) {
    let w = barrier_workload(procs, episodes, kind, |p, e| 20 + ((p * 7 + e * 3) % 8) as u32);
    let out =
        run(&MachineConfig::with_processors(procs).transport(transport), &w).expect("sim failed");
    let violations = barrier_violations(&out.trace, procs, episodes);
    (out.stats.makespan, out.stats.spin_polls, out.stats.data_transactions, violations)
}

/// The processor sweep: counter-on-memory (the hot spot), counter over
/// the sync bus, and the butterfly on both transports.
pub fn run_experiment(procs: &[usize], episodes: usize) -> Table {
    let mut t = Table::new(
        "E9 / Fig 5.4",
        &format!("barrier latency sweep ({episodes} episodes, skewed compute)"),
        &["P", "barrier", "transport", "makespan", "cycles/episode", "spin polls", "violations"],
    );
    for &p in procs {
        for (kind, transport) in [
            (BarrierKind::Counter, SyncTransport::SharedMemory),
            (BarrierKind::Counter, SyncTransport::DedicatedBus),
            (BarrierKind::Butterfly, SyncTransport::DedicatedBus),
        ] {
            let (makespan, polls, _tx, violations) = measure(p, episodes, kind, transport);
            t.row(vec![
                p.to_string(),
                kind.name().into(),
                format!("{transport:?}"),
                makespan.to_string(),
                f(makespan as f64 / episodes as f64),
                polls.to_string(),
                violations.to_string(),
            ]);
        }
    }
    t.note("Paper (Example 4, citing Brooks [6]): the butterfly removes the hot-spot effect and 'performs better than a counter-based barrier even in a small bus-based system', needing no atomic operation.");
    t.note("Counter-on-memory polls the shared counter across the data bus: traffic and latency grow superlinearly with P.");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn butterfly_beats_hotspot_counter_at_scale() {
        let t = run_experiment(&[4, 16], 6);
        let find = |p: &str, barrier: &str, transport: &str| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0] == p && r[1] == barrier && r[2].contains(transport))
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(find("16", "butterfly", "Dedicated") < find("16", "counter", "SharedMemory"));
        // The hot-spot grows faster than the butterfly with P.
        let growth_counter = find("16", "counter", "SharedMemory") as f64
            / find("4", "counter", "SharedMemory") as f64;
        let growth_butterfly = find("16", "butterfly", "Dedicated") as f64
            / find("4", "butterfly", "Dedicated") as f64;
        assert!(
            growth_counter > growth_butterfly,
            "counter growth {growth_counter:.2} should exceed butterfly {growth_butterfly:.2}"
        );
        for r in &t.rows {
            assert_eq!(r.last().unwrap(), "0");
        }
    }
}

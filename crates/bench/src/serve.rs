//! Load generator for the sweep service: the `BENCH_serve.json`
//! artifact behind `serve_bench`.
//!
//! Four phases against in-process servers (raw `TcpStream` clients, one
//! request per connection — the service speaks `Connection: close`
//! HTTP/1.1):
//!
//! 1. **cold** — a grid the cache has never seen; every cell computes.
//! 2. **warm** — the same grid resubmitted repeatedly; every cell must
//!    come from the memo cache, and the best repeat's throughput is the
//!    headline cells/sec figure (min-of-N wall time: the honest floor
//!    claim on a host with noisy vCPU phases).
//! 3. **storm** — a `queue_cap = 1` server held busy by one slow sweep
//!    while a loop hammers it: sheds must come back as 429 +
//!    `Retry-After`, never as a wedge.
//! 4. **resume** — the warm server is drained, a new server replays its
//!    journal, and the grid is resubmitted: zero recomputation and a
//!    byte-identical aggregate hash.

use datasync_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

/// Throughput measurement for one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Cells streamed back.
    pub cells: u64,
    /// Wall-clock seconds (best repeat for the warm phase).
    pub wall_seconds: f64,
    /// Cells per wall-clock second.
    pub cells_per_sec: f64,
}

/// Results of one load-generator run (`BENCH_serve.json`).
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Grid description.
    pub workload: String,
    /// Cold-cache phase: every cell computes.
    pub cold: PhaseStats,
    /// Warm-cache phase: every cell is a memo hit (best of N repeats).
    pub warm: PhaseStats,
    /// Cache hit rate observed on the final warm repeat (must be 1.0).
    pub warm_hit_rate: f64,
    /// Requests fired at the storm server.
    pub storm_requests: u64,
    /// Of those, 429 sheds (the rest streamed normally).
    pub storm_shed: u64,
    /// p99 request latency in microseconds, from the server's `/stats`.
    pub p99_latency_us: u64,
    /// Cells recomputed after the crash-resume drill (must be 0).
    pub resume_recomputed: u64,
    /// Whether the resumed aggregate hash matched the cold run's.
    pub resume_hash_matches: bool,
}

impl ServeBenchReport {
    /// Hand-rolled JSON rendering for `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let phase = |p: &PhaseStats| {
            format!(
                "{{\"cells\": {}, \"wall_seconds\": {:.6}, \"cells_per_sec\": {:.0}}}",
                p.cells, p.wall_seconds, p.cells_per_sec
            )
        };
        format!(
            "{{\n  \"schema_version\": 1,\n  \"workload\": \"{}\",\n  \"cold\": {},\n  \
             \"warm\": {},\n  \"warm_hit_rate\": {:.3},\n  \"storm_requests\": {},\n  \
             \"storm_shed\": {},\n  \"p99_latency_us\": {},\n  \"resume_recomputed\": {},\n  \
             \"resume_hash_matches\": {}\n}}\n",
            self.workload,
            phase(&self.cold),
            phase(&self.warm),
            self.warm_hit_rate,
            self.storm_requests,
            self.storm_shed,
            self.p99_latency_us,
            self.resume_recomputed,
            self.resume_hash_matches
        )
    }

    /// Human-readable phase summary.
    pub fn summary(&self) -> String {
        format!(
            "serve load generator: {}\n\
             cold:   {:>8.0} cells/sec ({} cells in {:.3}s)\n\
             warm:   {:>8.0} cells/sec ({} cells, hit rate {:.0}%, best of N)\n\
             storm:  {} of {} requests shed with 429 (rest streamed)\n\
             p99:    {} us per request\n\
             resume: {} cells recomputed, aggregate hash {}\n",
            self.workload,
            self.cold.cells_per_sec,
            self.cold.cells,
            self.cold.wall_seconds,
            self.warm.cells_per_sec,
            self.warm.cells,
            self.warm_hit_rate * 100.0,
            self.storm_shed,
            self.storm_requests,
            self.p99_latency_us,
            self.resume_recomputed,
            if self.resume_hash_matches { "matches" } else { "DIVERGED" }
        )
    }
}

/// One raw HTTP/1.1 request; returns the full response (head + body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send request");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

/// Extracts `"key":<u64>` from the response's summary line.
fn summary_u64(response: &str, key: &str) -> u64 {
    response
        .lines()
        .last()
        .and_then(|l| l.split(&format!("\"{key}\":")).nth(1))
        .and_then(|rest| {
            rest.chars().take_while(char::is_ascii_digit).collect::<String>().parse().ok()
        })
        .unwrap_or(u64::MAX)
}

/// Extracts the 16-hex aggregate hash from the summary line.
fn aggregate_hash(response: &str) -> String {
    response
        .lines()
        .last()
        .and_then(|l| l.split("\"aggregate_hash\":\"").nth(1))
        .map(|rest| rest.chars().take(16).collect())
        .unwrap_or_default()
}

fn temp_dir(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("datasync-serve-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Runs the load generator. `quick` shrinks the grid and repeat counts
/// for smoke runs; the full run sizes the warm phase to demonstrate the
/// >= 1000 cells/sec cached-throughput claim.
///
/// # Panics
///
/// Panics if a server fails to start or a phase's invariant (all-cached
/// warm repeats, zero-recompute resume) is violated — a broken service
/// must fail the bench, not report garbage numbers.
pub fn run(quick: bool) -> ServeBenchReport {
    let (iters_axis, seeds, warm_repeats) = if quick {
        ((4..12).collect::<Vec<i64>>(), 1u64, 3usize)
    } else {
        ((4..36).collect::<Vec<i64>>(), 4, 8)
    };
    let schemes = ["process", "reference", "instance", "statement"];
    let iters: Vec<String> = iters_axis.iter().map(ToString::to_string).collect();
    let grid_cells = schemes.len() as u64 * iters_axis.len() as u64 * seeds;
    let seeds_json: Vec<String> = (0..seeds).map(|s| (100 + s).to_string()).collect();
    // One request per seed keeps request latency bounded while the grid
    // stays big enough to measure.
    let bodies: Vec<String> = seeds_json
        .iter()
        .map(|seed| {
            format!(
                "{{\"schemes\": [{}], \"iterations\": [{}], \"seed\": {seed}}}",
                schemes.iter().map(|s| format!("\"{s}\"")).collect::<Vec<_>>().join(", "),
                iters.join(", ")
            )
        })
        .collect();
    let workload = format!(
        "{} schemes x {} iteration counts x {} seeds = {} cells",
        schemes.len(),
        iters_axis.len(),
        seeds,
        grid_cells
    );

    let state = temp_dir("main");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: state.clone(),
        ..ServeConfig::default()
    };
    let handle = Server::spawn(cfg.clone()).expect("bench server");
    let addr = handle.addr();

    // Phase 1: cold.
    let started = Instant::now();
    let mut cold_hashes = Vec::new();
    for body in &bodies {
        let resp = request(addr, "POST", "/sweep", body);
        assert!(resp.starts_with("HTTP/1.1 200"), "cold sweep failed: {resp}");
        cold_hashes.push(aggregate_hash(&resp));
    }
    let cold_wall = started.elapsed().as_secs_f64();
    let cold = PhaseStats {
        cells: grid_cells,
        wall_seconds: cold_wall,
        cells_per_sec: grid_cells as f64 / cold_wall,
    };

    // Phase 2: warm — best of N repeats (min wall time), all cache hits.
    let mut best_wall = f64::INFINITY;
    let mut warm_hit_rate = 0.0;
    for _ in 0..warm_repeats {
        let started = Instant::now();
        let mut cached = 0u64;
        for body in &bodies {
            let resp = request(addr, "POST", "/sweep", body);
            assert_eq!(summary_u64(&resp, "computed"), 0, "warm repeat recomputed: {resp}");
            cached += summary_u64(&resp, "cached");
        }
        let wall = started.elapsed().as_secs_f64();
        best_wall = best_wall.min(wall);
        warm_hit_rate = cached as f64 / grid_cells as f64;
    }
    let warm = PhaseStats {
        cells: grid_cells,
        wall_seconds: best_wall,
        cells_per_sec: grid_cells as f64 / best_wall,
    };
    let stats = request(addr, "GET", "/stats", "");
    let p99_latency_us = summary_u64(&stats, "p99_latency_us");
    handle.stop();

    // Phase 3: storm against a queue_cap = 1 server.
    let storm_state = temp_dir("storm");
    let storm = Server::spawn(ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: storm_state.clone(),
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .expect("storm server");
    let storm_addr = storm.addr();
    let holder = std::thread::spawn(move || {
        request(storm_addr, "POST", "/sweep", "{\"iterations\": [80], \"processors\": [8]}")
    });
    let storm_requests = if quick { 20u64 } else { 60 };
    let mut storm_shed = 0u64;
    for i in 0..storm_requests {
        let resp =
            request(storm_addr, "POST", "/sweep", &format!("{{\"iterations\": [{}]}}", 4 + i % 8));
        if resp.starts_with("HTTP/1.1 429") {
            assert!(resp.contains("Retry-After"), "shed without Retry-After: {resp}");
            storm_shed += 1;
        } else {
            assert!(resp.starts_with("HTTP/1.1 200"), "storm neither shed nor served: {resp}");
        }
    }
    let held = holder.join().expect("holder thread");
    assert!(held.starts_with("HTTP/1.1 200"), "held sweep must still stream: {held}");
    storm.stop();
    let _ = std::fs::remove_dir_all(&storm_state);

    // Phase 4: resume — a fresh server over the same journal recomputes
    // nothing and reproduces the cold aggregate hashes byte-exactly.
    let resumed = Server::spawn(cfg).expect("resume server");
    let mut resume_recomputed = 0u64;
    let mut resume_hash_matches = true;
    for (body, cold_hash) in bodies.iter().zip(&cold_hashes) {
        let resp = request(resumed.addr(), "POST", "/sweep", body);
        resume_recomputed += summary_u64(&resp, "computed");
        resume_hash_matches &= aggregate_hash(&resp) == *cold_hash;
    }
    resumed.stop();
    let _ = std::fs::remove_dir_all(&state);

    ServeBenchReport {
        workload,
        cold,
        warm,
        warm_hit_rate,
        storm_requests,
        storm_shed,
        p99_latency_us,
        resume_recomputed,
        resume_hash_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_run_holds_every_service_invariant() {
        let r = run(true);
        assert_eq!(r.warm_hit_rate, 1.0, "warm repeats must be pure cache hits");
        assert_eq!(r.resume_recomputed, 0, "resume must recompute nothing");
        assert!(r.resume_hash_matches, "resumed aggregates must match cold bytes");
        assert!(r.cold.cells_per_sec > 0.0);
        assert!(
            r.warm.cells_per_sec > r.cold.cells_per_sec,
            "cache hits must beat cold compute: warm {} vs cold {}",
            r.warm.cells_per_sec,
            r.cold.cells_per_sec
        );
        let json = r.to_json();
        for key in [
            "\"schema_version\"",
            "\"cold\"",
            "\"warm\"",
            "\"warm_hit_rate\"",
            "\"storm_shed\"",
            "\"p99_latency_us\"",
            "\"resume_recomputed\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let s = r.summary();
        assert!(s.contains("resume: 0 cells recomputed"), "{s}");
    }

    #[test]
    fn serve_reproducers_replay_through_the_chaos_harness() {
        // The service hand-writes its quarantine reproducers in the
        // chaos-fuzzer format (the dependency arrow points bench ->
        // serve, so serve cannot call ChaosCase::to_json itself); this
        // cross-check pins the two serializations together.
        use crate::chaos::{run_case, ChaosCase};
        use datasync_serve::spec::CellSpec;
        for (fault_pct, seed) in [(0u32, 1u64), (35, 13), (60, 99)] {
            let spec = CellSpec { fault_pct, seed, ..CellSpec::default() };
            let doc = datasync_serve::runner::chaos_reproducer(&spec);
            let case = ChaosCase::from_json(&doc).expect("serve reproducers parse as chaos cases");
            assert_eq!(case.scheme, spec.scheme);
            assert_eq!(case.iterations, spec.iterations);
            assert_eq!(case.processors, spec.processors);
            run_case(&case).expect("replayed cell holds machine invariants");
        }
    }
}
